"""Figure 9 (hot cache): number of keywords swept, frequencies constant.

Each query has one small list (the panel's |S1|) plus (k-1) lists of the
largest frequency.  Paper shape: IL grows mildly with k (2·(k-1) lookups
per S1 node), Scan Eager and Stack pay for every node of every large list,
so their time ≈ (k-1) × large-list cost; IL's win shrinks as |S1| grows.
"""

import pytest

from conftest import ALGORITHMS, FIG9_PANELS, KEYWORD_COUNTS, figure_points


@pytest.mark.parametrize("panel", FIG9_PANELS)
@pytest.mark.parametrize("x", KEYWORD_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig09_hot(benchmark, runner, point_store, panel, x, algorithm):
    point = next(p for p in figure_points("fig09", panel) if p.x == x)
    measurement = benchmark.pedantic(
        lambda: runner.run_point(point, algorithm, mode="disk-hot"),
        rounds=1,
        iterations=1,
    )
    point_store.record("fig09", panel, x, algorithm, measurement)
