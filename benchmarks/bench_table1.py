"""Table 1: complexity summary — measured operation counts vs the analytic
formulas.

The paper's Table 1 gives, per algorithm, the main-memory complexity, the
number of disk accesses and the number of match operations.  We regenerate
its *evidence*: for a sweep of |S1| against a fixed large list, the
measured counters must scale exactly as the formulas predict —

* IL:    match ops ≤ 2·(k-1)·|S1|,  independent of |S2|;
* Scan:  cursor advances ≤ Σ|Si|  (every cursor is forward-only);
* Stack: nodes merged = Σ|Si|     (the sort-merge touches everything).

The assertions make the bound part of the test; the recorded measurements
feed the ops table printed at session end.
"""

import pytest

from conftest import ALGORITHMS, LARGE
from repro.workloads.queries import QueryPoint
from repro.workloads.datasets import keyword_name

PANELS = (10, 100, 1000)


def _point(small: int) -> QueryPoint:
    query = (keyword_name(small, 0), keyword_name(LARGE, 0))
    return QueryPoint(x=small, queries=(query,))


@pytest.mark.parametrize("small", PANELS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table1_operation_counts(benchmark, runner, point_store, small, algorithm):
    point = _point(small)
    measurement = benchmark.pedantic(
        lambda: runner.run_point(point, algorithm, mode="memory"),
        rounds=3,
        iterations=1,
    )
    counters = measurement.counters
    k = 2
    total = small + LARGE
    if algorithm == "il":
        assert counters.match_ops <= 2 * (k - 1) * small
        assert counters.nodes_merged == 0
    elif algorithm == "scan":
        assert counters.match_ops <= 2 * (k - 1) * small
        assert counters.cursor_advances <= total
    else:
        # Nodes hosting both keywords merge into one masked entry, so the
        # count is Σ|Si| minus the (small) co-occurrence overlap.
        assert total - small <= counters.nodes_merged <= total
    point_store.record("table1", small, point.x, algorithm, measurement)


@pytest.mark.parametrize("algorithm", ("il", "scan"))
def test_table1_il_ops_independent_of_large_list(runner, algorithm):
    """IL's match-op count must not change when |S2| grows 100×."""
    from repro.workloads.runner import Measurement

    small_kw = keyword_name(10, 0)
    counts = []
    for large in (1000, LARGE):
        point = QueryPoint(x=large, queries=((small_kw, keyword_name(large, 0)),))
        m = runner.run_point(point, algorithm, mode="memory")
        counts.append(m.counters.match_ops)
    assert counts[0] == counts[1]


def test_table1_disk_access_scaling(runner):
    """Disk accesses: IL O(k·|S1|) vs Scan/Stack Θ(Σ|Si|/B) (conclusions)."""
    point = _point(10)
    il = runner.run_point(point, "il", mode="disk-cold")
    scan = runner.run_point(point, "scan", mode="disk-cold")
    stack = runner.run_point(point, "stack", mode="disk-cold")
    k, s1 = 2, 10
    assert il.page_reads <= 2 * k * s1 + 4
    # The big list dominates the scans: they must read many more pages
    # than IL at this skew.
    assert scan.page_reads > 2 * il.page_reads
    assert stack.page_reads >= scan.page_reads
