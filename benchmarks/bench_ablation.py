"""Ablations for the design choices DESIGN.md calls out.

* **Buffering (b)** — the paper's memory-bounded IL processes S1 in blocks
  of b and notes "the smaller b is, the faster the algorithm produces the
  first SLCA": we measure time-to-first-answer as a function of b.
* **Dewey codec** — level-table bit packing (the paper's scheme) vs the
  order-preserving varint: index size on disk and query latency.
* **Page size** — cold-cache page reads for a full-list scan across page
  sizes (the B of Θ(|S|/B)).
* **Internal-page pinning** — the paper's disk analysis assumes non-leaf
  B+tree nodes are cached; unpinning them shows what the assumption buys.
"""

import time

import pytest

from repro.core.counters import OpCounters
from repro.core.indexed_lookup import eager_slca, indexed_lookup_blocked
from repro.index.builder import build_index
from repro.index.inverted import DiskKeywordIndex
from repro.workloads.datasets import PlantedCorpus, keyword_name

SMALL, BIG = 1000, 10000
QUERY = (keyword_name(SMALL, 0), keyword_name(BIG, 0))


@pytest.fixture(scope="module")
def ablation_corpus():
    return PlantedCorpus.for_frequencies([(SMALL, 1), (BIG, 1)], seed=77)


@pytest.fixture(scope="module")
def ablation_index(ablation_corpus, tmp_path_factory):
    target = tmp_path_factory.mktemp("ablation") / "idx"
    build_index(ablation_corpus.lists, target, level_table=ablation_corpus.level_table())
    with DiskKeywordIndex(target) as index:
        yield index


class TestBufferSize:
    @pytest.mark.parametrize("block_size", (1, 10, 100, SMALL))
    def test_time_to_first_answer(self, benchmark, ablation_index, block_size):
        def first_block():
            counters = OpCounters()
            sources = ablation_index.sources_for(QUERY, "indexed", counters)
            stream = indexed_lookup_blocked(sources, block_size, counters)
            return next(stream, [])

        first = benchmark.pedantic(first_block, rounds=5, iterations=1)
        assert first, "expected at least one SLCA in the first block"

    def test_all_block_sizes_agree(self, ablation_index):
        answers = {}
        for block_size in (1, 7, 100, SMALL):
            sources = ablation_index.sources_for(QUERY, "indexed", OpCounters())
            blocks = indexed_lookup_blocked(sources, block_size)
            answers[block_size] = [n for blk in blocks for n in blk]
        assert len({tuple(v) for v in answers.values()}) == 1


class TestCodec:
    @pytest.fixture(scope="class")
    def both_indexes(self, ablation_corpus, tmp_path_factory):
        root = tmp_path_factory.mktemp("codec")
        sizes = {}
        indexes = {}
        for codec in ("packed", "varint"):
            target = root / codec
            report = build_index(
                ablation_corpus.lists,
                target,
                codec=codec,
                level_table=ablation_corpus.level_table(),
            )
            sizes[codec] = report.bytes_on_disk
            indexes[codec] = DiskKeywordIndex(target)
        yield indexes, sizes
        for index in indexes.values():
            index.close()

    def test_packed_index_not_larger(self, both_indexes):
        _, sizes = both_indexes
        assert sizes["packed"] <= sizes["varint"]

    @pytest.mark.parametrize("codec", ("packed", "varint"))
    def test_query_latency_per_codec(self, benchmark, both_indexes, codec):
        indexes, _ = both_indexes
        index = indexes[codec]

        def run():
            counters = OpCounters()
            return list(eager_slca(index.sources_for(QUERY, "indexed", counters), counters))

        results = benchmark.pedantic(run, rounds=5, iterations=1)
        assert results

    def test_codecs_agree_on_answers(self, both_indexes):
        indexes, _ = both_indexes
        answers = {
            codec: list(eager_slca(index.sources_for(QUERY, "indexed", OpCounters())))
            for codec, index in indexes.items()
        }
        assert answers["packed"] == answers["varint"]


class TestPageSize:
    @pytest.mark.parametrize("page_size", (1024, 4096, 16384))
    def test_cold_scan_reads_shrink_with_page_size(
        self, benchmark, ablation_corpus, tmp_path_factory, page_size
    ):
        target = tmp_path_factory.mktemp(f"ps{page_size}") / "idx"
        build_index(
            ablation_corpus.lists,
            target,
            page_size=page_size,
            level_table=ablation_corpus.level_table(),
        )
        with DiskKeywordIndex(target) as index:
            def run():
                index.make_cold()
                before = index.io_snapshot()
                counters = OpCounters()
                list(eager_slca(index.sources_for(QUERY, "scan", counters), counters))
                return index.pager.stats.delta(before)

            delta = benchmark.pedantic(run, rounds=3, iterations=1)
            # Θ(|S|/B): with ~5-byte postings the big list occupies about
            # BIG * 6 / page_size leaf pages.
            assert delta.reads <= (BIG * 10) // page_size + 12


class TestPinning:
    def test_unpinned_cold_lookups_pay_for_the_descent(
        self, ablation_corpus, tmp_path_factory
    ):
        target = tmp_path_factory.mktemp("pin") / "idx"
        build_index(
            ablation_corpus.lists, target, level_table=ablation_corpus.level_table()
        )

        def cold_reads(pin_internal):
            with DiskKeywordIndex(target, pin_internal=pin_internal) as index:
                index.make_cold()
                before = index.io_snapshot()
                counters = OpCounters()
                list(
                    eager_slca(
                        index.sources_for(QUERY, "indexed", counters), counters
                    )
                )
                return index.pager.stats.delta(before).reads

        pinned = cold_reads(True)
        unpinned = cold_reads(False)
        assert unpinned > pinned
