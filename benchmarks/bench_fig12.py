"""Figure 12 (cold cache): the Figure 9 sweep with an empty buffer pool.

One small list plus (k-1) large lists, k swept.  Cold, Scan and Stack must
physically read every large list — (k-1)·Θ(|S|/B) page misses — while IL
pays O(k·|S1|) lookups against pinned-internal B+trees.
"""

import pytest

from conftest import ALGORITHMS, FIG9_PANELS, KEYWORD_COUNTS, figure_points


@pytest.mark.parametrize("panel", FIG9_PANELS)
@pytest.mark.parametrize("x", KEYWORD_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig12_cold(benchmark, runner, point_store, panel, x, algorithm):
    point = next(p for p in figure_points("fig12", panel) if p.x == x)
    measurement = benchmark.pedantic(
        lambda: runner.run_point(point, algorithm, mode="disk-cold"),
        rounds=1,
        iterations=1,
    )
    point_store.record("fig12", panel, x, algorithm, measurement)
