"""Index construction: build throughput and on-disk footprint.

The paper reports its experiments over an index built once from 83 MB of
DBLP; this bench characterizes our builder — bulk-load throughput
(postings/second) as corpus size grows, the effect of page size on index
footprint, and the space split between the two B+tree layouts (the
posting-per-key IL tree vs. the packed scan blocks).
"""

import pytest

from repro.index.builder import build_index
from repro.workloads.datasets import PlantedCorpus

SIZES = (1_000, 10_000, 100_000)


@pytest.fixture(scope="module")
def corpora():
    return {
        size: PlantedCorpus.for_frequencies([(size, 1), (max(10, size // 10), 1)], seed=3)
        for size in SIZES
    }


@pytest.mark.parametrize("size", SIZES)
def test_build_throughput(benchmark, corpora, tmp_path_factory, size):
    corpus = corpora[size]
    counter = {"round": 0}

    def build():
        target = tmp_path_factory.mktemp(f"build{size}") / str(counter["round"])
        counter["round"] += 1
        return build_index(
            corpus.lists, target, level_table=corpus.level_table()
        )

    report = benchmark.pedantic(build, rounds=2, iterations=1)
    assert report.postings == corpus.total_postings
    # Footprint sanity: bounded bytes per posting (two layouts + metadata).
    assert report.bytes_on_disk / report.postings < 64


@pytest.mark.parametrize("page_size", (1024, 4096, 16384))
def test_footprint_vs_page_size(corpora, tmp_path_factory, page_size):
    corpus = corpora[10_000]
    target = tmp_path_factory.mktemp(f"fp{page_size}") / "idx"
    report = build_index(
        corpus.lists, target, page_size=page_size, level_table=corpus.level_table()
    )
    # Larger pages amortize headers: bytes/posting must stay in the same
    # ballpark across a 16x page-size sweep (no pathological blow-up).
    per_posting = report.bytes_on_disk / report.postings
    assert per_posting < 96
    assert report.il_height >= report.scan_height
