"""Semantics comparison: SLCA vs ELCA vs all-LCA on the same workload.

Positions the paper's SLCA semantics between its two neighbours: XRANK's
Exclusive LCA (computed by the sort-merge stack, extension module) and the
paper's Section 5 all-LCA (computed by Algorithm 3 over IL).  The cost
profiles differ fundamentally —

* SLCA (IL):       O(k·|S1|·d·log|S|), independent of Σ|Si|;
* all-LCA (Alg 3): SLCA + O(k·d·|slca|) extra lookups — still skew-proof;
* ELCA (stack):    Θ(Σ|Si|) — it must merge every posting.

The assertions pin the containment chain SLCA ⊆ ELCA ⊆ LCA at scale.
"""

import pytest

from conftest import LARGE
from repro.core import find_all_lcas, stack_elca
from repro.core.counters import OpCounters
from repro.core.indexed_lookup import eager_slca
from repro.workloads.datasets import keyword_name

PANELS = (10, 1000)


def _keywords(small):
    return (keyword_name(small, 0), keyword_name(LARGE, 0))


def _sources(runner, small, counters):
    return runner._disk_index.sources_for(_keywords(small), "indexed", counters)


@pytest.mark.parametrize("small", PANELS)
@pytest.mark.parametrize("semantics", ("slca", "elca", "all-lca"))
def test_semantics_cost(benchmark, runner, small, semantics):
    runner._ensure_disk()

    def run_slca():
        counters = OpCounters()
        return set(eager_slca(_sources(runner, small, counters), counters))

    def run_elca():
        counters = OpCounters()
        lists = [runner._disk_index.scan(kw) for kw in _keywords(small)]
        return set(stack_elca(lists, counters))

    def run_all_lca():
        counters = OpCounters()
        return set(find_all_lcas(_sources(runner, small, counters), counters))

    runs = {"slca": run_slca, "elca": run_elca, "all-lca": run_all_lca}
    result = benchmark.pedantic(runs[semantics], rounds=2, iterations=1)
    assert result or small > LARGE  # planted workloads always intersect


@pytest.mark.parametrize("small", PANELS)
def test_semantics_containment_at_scale(runner, small):
    runner._ensure_disk()
    counters = OpCounters()
    slcas = set(eager_slca(_sources(runner, small, counters), counters))
    lists = [runner._disk_index.scan(kw) for kw in _keywords(small)]
    elcas = set(stack_elca(lists, OpCounters()))
    lcas = set(find_all_lcas(_sources(runner, small, OpCounters()), OpCounters()))
    assert slcas <= elcas <= lcas
    # The huge list never dominates the answer count: answers are driven by
    # the small list's size.
    assert len(slcas) <= small
