"""Figure 11 (cold cache): the Figure 8 sweep with an empty buffer pool.

Reported time = measured CPU + modeled I/O (counted page misses charged by
the 2005-disk cost model).  Paper shape: IL's page accesses stay O(k·|S1|)
— flat in |S2| — while Scan/Stack read the large list's Θ(|S2|/B) leaf
blocks, so the curves diverge exactly as in the hot case but with the
crossover shifted (at similar sizes, sequential scans win cold).
"""

import pytest

from conftest import ALGORITHMS, FIG8_PANELS, LADDER, figure_points


@pytest.mark.parametrize("panel", FIG8_PANELS)
@pytest.mark.parametrize("x", LADDER)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11_cold(benchmark, runner, point_store, panel, x, algorithm):
    point = next(p for p in figure_points("fig11", panel) if p.x == x)
    measurement = benchmark.pedantic(
        lambda: runner.run_point(point, algorithm, mode="disk-cold"),
        rounds=3,
        iterations=1,
    )
    point_store.record("fig11", panel, x, algorithm, measurement)
