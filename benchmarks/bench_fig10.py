"""Figure 10 (hot cache): number of keywords swept, all lists equal-sized.

The regime where the paper recommends Scan Eager: with no frequency skew,
IL's per-lookup log factor buys nothing, and the cursor-based Scan Eager
"loses only by a small margin" is inverted — here Scan Eager is the best
variant and IL trails slightly; Stack pays its per-node stack maintenance.
"""

import pytest

from conftest import ALGORITHMS, FIG10_PANELS, KEYWORD_COUNTS, figure_points


@pytest.mark.parametrize("panel", FIG10_PANELS)
@pytest.mark.parametrize("x", KEYWORD_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig10_hot(benchmark, runner, point_store, panel, x, algorithm):
    point = next(p for p in figure_points("fig10", panel) if p.x == x)
    measurement = benchmark.pedantic(
        lambda: runner.run_point(point, algorithm, mode="disk-hot"),
        rounds=3,
        iterations=1,
    )
    point_store.record("fig10", panel, x, algorithm, measurement)
