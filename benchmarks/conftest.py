"""Shared infrastructure for the figure/table benchmarks.

One planted corpus and one disk index are built per session, sized for the
union of every figure's keyword needs (frequencies 10 … 100 000, the
paper's ladder).  Each benchmark measures one (panel, x, algorithm) point
and records its :class:`Measurement`; at session end the recorded points
are assembled into the paper's per-panel tables and printed in the
terminal summary, so ``pytest benchmarks/ --benchmark-only`` emits both
pytest-benchmark timings and the figure series.

Scale control: set ``XK_BENCH_SCALE=quick`` to cap the ladder at 10 000
(roughly 10× faster; same shapes, smaller spread).
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Dict, List, Tuple

import pytest

from repro.workloads.datasets import PlantedCorpus
from repro.workloads.queries import (
    FREQUENCY_LADDER,
    fig8_points,
    fig9_points,
    fig10_points,
    needed_frequencies,
)
from repro.workloads.report import io_table, ops_table, sweep_table
from repro.workloads.runner import ExperimentRunner, Measurement

QUICK = os.environ.get("XK_BENCH_SCALE", "full") == "quick"

#: The swept frequency ladder (paper: 10 … 100 000).
LADDER: Tuple[int, ...] = FREQUENCY_LADDER[:4] if QUICK else FREQUENCY_LADDER
#: The largest list size, used by Figures 9/12 as the "large" frequency.
LARGE: int = LADDER[-1]
#: Small-list panels of Figures 8/11.
FIG8_PANELS: Tuple[int, ...] = (10, 100, 1000)
#: Small-list panels of Figures 9/12 and equal-size panels of Figures 10/13.
FIG9_PANELS: Tuple[int, ...] = (10, 1000)
FIG10_PANELS: Tuple[int, ...] = (10, 1000, 10000)
KEYWORD_COUNTS: Tuple[int, ...] = (2, 3, 4, 5)

ALGORITHMS = ("il", "scan", "stack")


def figure_points(figure: str, panel: int):
    """The query points of one figure panel (hot/cold share points)."""
    if figure in ("fig08", "fig11"):
        return fig8_points(panel, large_frequencies=LADDER, variants=1)
    if figure in ("fig09", "fig12"):
        return fig9_points(panel, large_frequency=LARGE, keyword_counts=KEYWORD_COUNTS, variants=1)
    if figure in ("fig10", "fig13"):
        return fig10_points(panel, keyword_counts=KEYWORD_COUNTS, variants=1)
    raise ValueError(figure)


def _all_points():
    points = []
    for panel in FIG8_PANELS:
        points.extend(figure_points("fig08", panel))
    for panel in FIG9_PANELS:
        points.extend(figure_points("fig09", panel))
    for panel in FIG10_PANELS:
        points.extend(figure_points("fig10", panel))
    return points


@pytest.fixture(scope="session")
def corpus() -> PlantedCorpus:
    needed = needed_frequencies(_all_points())
    return PlantedCorpus.for_frequencies(needed, seed=2005)


@pytest.fixture(scope="session")
def runner(corpus):
    with ExperimentRunner(corpus) as r:
        r._ensure_disk()  # build the index once, up front
        yield r


class PointStore:
    """Collects per-point measurements for the end-of-run figure tables."""

    def __init__(self):
        self._data: Dict[Tuple[str, int], Dict[int, Dict[str, Measurement]]] = (
            defaultdict(lambda: defaultdict(dict))
        )

    def record(self, figure: str, panel: int, x: int, algorithm: str, m: Measurement):
        self._data[(figure, panel)][x][algorithm] = m

    def tables(self) -> List[str]:
        titles = {
            "fig08": "Figure 8 (hot cache): k=2, small |S1|={panel}, large |S2| swept",
            "fig09": "Figure 9 (hot cache): |S1|={panel} plus (k-1) lists of "
                     f"{LARGE}, k swept",
            "fig10": "Figure 10 (hot cache): k lists, all of size {panel}, k swept",
            "fig11": "Figure 11 (cold cache): k=2, small |S1|={panel}, large |S2| swept",
            "fig12": "Figure 12 (cold cache): |S1|={panel} plus (k-1) lists of "
                     f"{LARGE}, k swept",
            "fig13": "Figure 13 (cold cache): k lists, all of size {panel}, k swept",
            "table1": "Table 1 evidence: operation counts, |S1|={panel}",
            "alllca": "Section 5: all-LCA vs SLCA, |S1|={panel}",
        }
        out: List[str] = []
        for (figure, panel), sweep in sorted(self._data.items()):
            title = titles.get(figure, figure).format(panel=panel)
            x_label = "#keywords" if figure in ("fig09", "fig10", "fig12", "fig13") else "large |S|"
            algorithms = [a for a in ALGORITHMS if all(a in v for v in sweep.values())]
            if not algorithms:
                algorithms = sorted({a for v in sweep.values() for a in v})
            out.append(sweep_table(title, x_label, sweep, algorithms))
            if figure in ("fig11", "fig12", "fig13"):
                out.append(io_table(f"{title} — page accesses", x_label, sweep, algorithms))
            if figure == "table1":
                out.append(ops_table(f"{title} — breakdown", x_label, sweep, algorithms))
        return out


@pytest.fixture(scope="session")
def point_store():
    return PointStore()


@pytest.fixture(scope="session", autouse=True)
def _publish_store(point_store, request):
    yield
    request.config._xk_point_store = point_store


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    store = getattr(config, "_xk_point_store", None)
    if store is None:
        return
    tables = store.tables()
    if not tables:
        return
    terminalreporter.section("XKSearch figure reproduction (paper series)")
    for table in tables:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
