"""Figure 8 (hot cache): two keywords, small list fixed, large list swept.

Paper shape: Indexed Lookup Eager's response time is nearly flat in the
large list's size (it performs O(|S1|) logarithmic lookups), while Scan
Eager and Stack grow linearly — at |S2|/|S1| = 10^4 the gap is orders of
magnitude.  Panels (b)-(d) of the figure fix |S1| at 10, 100 and 1000.
"""

import pytest

from conftest import ALGORITHMS, FIG8_PANELS, LADDER, figure_points


@pytest.mark.parametrize("panel", FIG8_PANELS)
@pytest.mark.parametrize("x", LADDER)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig08_hot(benchmark, runner, point_store, panel, x, algorithm):
    point = next(p for p in figure_points("fig08", panel) if p.x == x)
    measurement = benchmark.pedantic(
        lambda: runner.run_point(point, algorithm, mode="disk-hot"),
        rounds=3,
        iterations=1,
    )
    point_store.record("fig08", panel, x, algorithm, measurement)
