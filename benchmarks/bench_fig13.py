"""Figure 13 (cold cache): the Figure 10 sweep with an empty buffer pool.

All lists equal-sized.  Cold and skew-free, every algorithm must read the
same postings; Scan Eager's purely sequential block reads make it the best
variant, with IL paying extra random lookups — the paper's stated
trade-off for similar frequencies.
"""

import pytest

from conftest import ALGORITHMS, FIG10_PANELS, KEYWORD_COUNTS, figure_points


@pytest.mark.parametrize("panel", FIG10_PANELS)
@pytest.mark.parametrize("x", KEYWORD_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig13_cold(benchmark, runner, point_store, panel, x, algorithm):
    point = next(p for p in figure_points("fig13", panel) if p.x == x)
    measurement = benchmark.pedantic(
        lambda: runner.run_point(point, algorithm, mode="disk-cold"),
        rounds=3,
        iterations=1,
    )
    point_store.record("fig13", panel, x, algorithm, measurement)
