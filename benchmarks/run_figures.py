#!/usr/bin/env python3
"""Regenerate every experiment figure of the paper as plain-text tables.

Standalone companion to the pytest benchmarks: runs the complete sweeps of
Figures 8-13 (all panels, hot and cold cache) plus the Table 1 operation
evidence, and prints one table per panel in the same series layout the
paper plots.  Absolute times are CPython on the synthetic corpus — the
*shape* (who wins, by what factor, where the crossovers fall) is the
reproduction target.

Usage:
    python benchmarks/run_figures.py                  # everything
    python benchmarks/run_figures.py --figure 8 11    # only Figs 8 and 11
    python benchmarks/run_figures.py --variants 5     # more queries/point
    python benchmarks/run_figures.py --max-frequency 10000   # quick mode
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Sequence

from repro.workloads.datasets import PlantedCorpus
from repro.workloads.queries import (
    FREQUENCY_LADDER,
    fig8_points,
    fig9_points,
    fig10_points,
    needed_frequencies,
)
from repro.workloads.report import io_table, ops_table, sweep_csv, sweep_table
from repro.workloads.runner import ExperimentRunner

ALGORITHMS = ("il", "scan", "stack")

FIG8_PANELS = (10, 100, 1000)
FIG9_PANELS = (10, 100, 1000, 10000)
FIG10_PANELS = (10, 100, 1000, 10000)
KEYWORD_COUNTS = (2, 3, 4, 5)


def build_plan(args) -> List[tuple]:
    """(figure label, panel, points, mode) for every requested table."""
    ladder = tuple(f for f in FREQUENCY_LADDER if f <= args.max_frequency)
    large = ladder[-1]
    fig9_panels = tuple(p for p in FIG9_PANELS if p <= large)
    fig10_panels = tuple(p for p in FIG10_PANELS if p <= large)
    plan = []
    for panel in FIG8_PANELS:
        points = fig8_points(panel, large_frequencies=ladder, variants=args.variants)
        plan.append(("8", panel, points, "disk-hot"))
        plan.append(("11", panel, points, "disk-cold"))
    for panel in fig9_panels:
        points = fig9_points(
            panel, large_frequency=large, keyword_counts=KEYWORD_COUNTS,
            variants=args.variants,
        )
        plan.append(("9", panel, points, "disk-hot"))
        plan.append(("12", panel, points, "disk-cold"))
    for panel in fig10_panels:
        points = fig10_points(panel, keyword_counts=KEYWORD_COUNTS, variants=args.variants)
        plan.append(("10", panel, points, "disk-hot"))
        plan.append(("13", panel, points, "disk-cold"))
    if args.figures:
        wanted = set(args.figures)
        plan = [entry for entry in plan if entry[0] in wanted]
    return plan


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--figure", dest="figures", nargs="*", default=None,
        help="figure numbers to run (default: all of 8-13)",
    )
    parser.add_argument(
        "--variants", type=int, default=2,
        help="independent queries per point to average (paper used 40)",
    )
    parser.add_argument(
        "--max-frequency", type=int, default=100000,
        help="cap the frequency ladder (10000 gives a fast dry run)",
    )
    parser.add_argument(
        "--csv", default=None, metavar="DIR",
        help="also write one CSV per panel into DIR (for plotting)",
    )
    parser.add_argument("--seed", type=int, default=2005)
    args = parser.parse_args(argv)

    plan = build_plan(args)
    if not plan:
        print("nothing to run — check --figure values (8..13)", file=sys.stderr)
        return 1

    all_points = [point for _, _, points, _ in plan for point in points]
    needed = needed_frequencies(all_points)
    print(f"planting corpus for frequencies {dict(needed)} (seed {args.seed}) ...")
    started = time.perf_counter()
    corpus = PlantedCorpus.for_frequencies(needed, seed=args.seed)
    print(
        f"  {corpus.total_postings} postings over {corpus.shape.slots} slots "
        f"in {time.perf_counter() - started:.1f}s"
    )

    with ExperimentRunner(corpus) as runner:
        started = time.perf_counter()
        runner._ensure_disk()
        print(
            f"disk index built in {time.perf_counter() - started:.1f}s "
            f"({runner._disk_index.pager.num_pages} pages)\n"
        )
        for figure, panel, points, mode in plan:
            x_label = "#keywords" if figure in ("9", "10", "12", "13") else "large |S|"
            cache = "hot cache" if mode == "disk-hot" else "cold cache"
            title = f"Figure {figure} ({cache}), panel |S|={panel}"
            started = time.perf_counter()
            sweep = runner.run_points(points, ALGORITHMS, mode=mode)
            elapsed = time.perf_counter() - started
            print(sweep_table(title, x_label, sweep))
            if args.csv:
                import os

                os.makedirs(args.csv, exist_ok=True)
                cache = "hot" if mode == "disk-hot" else "cold"
                csv_name = f"fig{figure}_panel{panel}_{cache}.csv"
                with open(os.path.join(args.csv, csv_name), "w", encoding="utf-8") as fh:
                    fh.write(sweep_csv(x_label, sweep))
            if mode == "disk-cold":
                print()
                print(io_table(f"{title} — page accesses", x_label, sweep))
            print()
            print(ops_table(f"{title} — operation counts", x_label, sweep))
            print(f"[swept in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
