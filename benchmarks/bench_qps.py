"""Serving-layer throughput benchmark: Zipf-skewed replay over HTTP.

Real keyword workloads are heavily skewed — the same popular keyword
combinations recur — which is exactly what the serving layer's result
cache exploits.  This benchmark measures that end to end:

1. build a planted corpus (equal-frequency keyword pairs, so planning
   picks Scan Eager and every miss pays a real multi-millisecond scan),
2. start the **threaded** demo server in-process,
3. replay a Zipf-distributed sequence of queries from N client threads
   against ``/api/search``, once with the result cache disabled and once
   with it enabled (same process, same index, warmed buffer pool),
4. replay the cache-off workload again at several **process-pool** sizes
   (1/2/4/8 forked workers over mmap'd indexes — the "past the GIL"
   path; pools are created before the server thread starts, because
   forking a threaded process is unsafe).  Parallel efficiency is
   bounded by ``os.cpu_count()``, which the report records,
5. measure the posting layer: packed segment vs B+tree lm/rm probes,
   the single-descent ``neighbors`` vs two separate descents, and the
   cache-miss replay with segments on vs off (``posting_segments``
   section of the report),
6. measure the SLO engine's whole-process cost: the same cached replay
   with and without a live :class:`SLOEngine` (burn-rate evaluation
   thread) plus a timed :class:`SnapshotShipper`, paired per round
   (``slo_overhead`` section of the report),
7. measure the cross-process observability stack: the cache-miss replay
   over a dedicated worker pool, with and without a heartbeating
   :class:`FleetCollector` (snapshot round-trips steal idle workers)
   plus the parent's continuous :class:`SamplingProfiler`, paired per
   round (``fleet_obs`` section; the full run fails above
   ``--max-fleet-overhead``, default 3%),
8. measure the robustness stack's request-path cost: the cache-miss
   replay with and without end-to-end deadlines (a generous
   server-default budget bound and checkpointed on every request), an
   :class:`AdmissionGate` on the connection path, and checksum-verified
   storage reads, paired per round (``robustness_overhead`` section;
   the full run fails above ``--max-robustness-overhead``, default 3%),
9. report QPS, p50/p99 latency and the cache hit rate, and write
   ``BENCH_qps.json`` so later PRs can track the trajectory.

Run::

    PYTHONPATH=src python benchmarks/bench_qps.py            # full
    PYTHONPATH=src python benchmarks/bench_qps.py --smoke    # CI-sized

The full run fails (exit 1) if the cache does not deliver the expected
>= 2x QPS on this workload; ``--smoke`` only exercises the path.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import random
import statistics
import sys
import tempfile
import threading
import time
import urllib.parse
import urllib.request

from repro.errors import PoolError
from repro.index.builder import build_index
from repro.obs.export import JsonlFileSink, SnapshotShipper, TraceExporter
from repro.obs.fleet import FleetCollector
from repro.obs.metrics import set_instrumentation_enabled
from repro.obs.profiling import SamplingProfiler
from repro.obs.slo import SLOEngine
from repro.obs.tracing import Tracer
from repro.robustness.admission import AdmissionGate
from repro.workloads.datasets import PlantedCorpus, keyword_name
from repro.xksearch.cache import QueryCache
from repro.xksearch.parallel import WorkerPool
from repro.xksearch.server import ServerMetrics, make_server
from repro.xksearch.system import XKSearch


def build_query_pool(frequency: int, variants: int, distinct: int):
    """Distinct two-keyword queries over the planted keywords."""
    names = [keyword_name(frequency, v) for v in range(variants)]
    pool = [f"{a} {b}" for a, b in itertools.combinations(names, 2)]
    if len(pool) < distinct:
        raise SystemExit(
            f"only {len(pool)} distinct pairs from {variants} variants; "
            f"need {distinct} (raise --variants)"
        )
    return pool[:distinct]


def zipf_sequence(pool, total: int, skew: float, seed: int):
    """A Zipf(skew)-distributed replay sequence over the query pool."""
    rng = random.Random(seed)
    weights = [1.0 / (rank ** skew) for rank in range(1, len(pool) + 1)]
    return rng.choices(pool, weights=weights, k=total)


def replay(base_url: str, sequence, threads: int):
    """Fire the sequence from N client threads; returns (wall_s, latencies_ms).

    The sequence is dealt round-robin so every thread sees the same query
    mix; each request is one HTTP GET against ``/api/search``.
    """
    shards = [sequence[i::threads] for i in range(threads)]
    latencies = [[] for _ in range(threads)]
    errors = []

    def client(shard, out):
        for query in shard:
            url = f"{base_url}/api/search?q={urllib.parse.quote(query)}"
            started = time.perf_counter()
            try:
                with urllib.request.urlopen(url, timeout=60) as response:
                    response.read()
            except Exception as exc:  # pragma: no cover - diagnostics only
                errors.append(f"{query}: {exc}")
                continue
            out.append((time.perf_counter() - started) * 1000)

    workers = [
        threading.Thread(target=client, args=(shard, out), daemon=True)
        for shard, out in zip(shards, latencies)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    if errors:
        raise SystemExit(f"{len(errors)} request(s) failed; first: {errors[0]}")
    return wall, sorted(lat for out in latencies for lat in out)


def percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def phase_report(name: str, wall: float, latencies) -> dict:
    report = {
        "requests": len(latencies),
        "wall_s": round(wall, 3),
        "qps": round(len(latencies) / wall, 1),
        "p50_ms": round(percentile(latencies, 0.50), 3),
        "p99_ms": round(percentile(latencies, 0.99), 3),
        "mean_ms": round(sum(latencies) / len(latencies), 3),
    }
    print(
        f"  {name:9s}  {report['qps']:8.1f} qps   "
        f"p50 {report['p50_ms']:8.3f} ms   p99 {report['p99_ms']:8.3f} ms"
    )
    return report


def bench_posting_segments(index_dir: str, warm_pool, sequence, args) -> dict:
    """Posting-layer phase: packed segments vs B+tree, micro and end to end.

    Three measurements, reported as the ``posting_segments`` section:

    * ``lm_rm_micro`` — the IL probe pattern (``lm(x)`` + ``rm(x)`` per
      candidate, near-ascending) against one planted keyword list,
      through :class:`PackedListSource` vs :class:`DiskIndexedSource`;
    * ``neighbors_micro`` — the single-descent
      :meth:`~repro.storage.bptree.BPlusTree.neighbors` vs the two
      separate ``floor_entry``/``ceiling_entry`` descents it replaced;
    * ``end_to_end`` — the cache-miss replay against two live servers
      (segments on vs off), paired per round so load drift cancels.
    """
    from repro.core.counters import OpCounters
    from repro.index.inverted import DiskKeywordIndex
    from repro.storage.records import posting_key

    print("posting segments:")
    keyword = keyword_name(args.frequency, 0)
    report = {}
    with DiskKeywordIndex(index_dir) as on, DiskKeywordIndex(
        index_dir, use_segments=False
    ) as off:
        assert on.posting_tier() == "segment", "segments not active after build"
        nodes = list(off.scan(keyword))
        target_ops = 20_000 if args.smoke else 100_000
        repeat = max(1, target_ops // max(1, len(nodes)))

        def time_probes(source):
            started = time.perf_counter()
            for _ in range(repeat):
                for v in nodes:
                    source.lm(v)
                    source.rm(v)
            return time.perf_counter() - started

        seg_s = time_probes(on.sources_for([keyword], "indexed")[0])
        bpt_s = time_probes(off.sources_for([keyword], "indexed")[0])
        probes = repeat * len(nodes)
        report["lm_rm_micro"] = {
            "keyword_frequency": len(nodes),
            "probes": probes,
            "segment_probes_per_s": round(probes / seg_s, 1),
            "bptree_probes_per_s": round(probes / bpt_s, 1),
            "speedup": round(bpt_s / seg_s, 2) if seg_s else None,
        }
        print(
            f"  lm/rm     {probes / seg_s:10.0f} probes/s segments   "
            f"{probes / bpt_s:10.0f} probes/s b+tree   "
            f"{bpt_s / seg_s:5.2f}x"
        )

        probe_keys = [posting_key(keyword, off.codec.encode(v)) for v in nodes]
        tree = off.il_tree
        started = time.perf_counter()
        for _ in range(repeat):
            for key in probe_keys:
                tree.neighbors(key)
        single_s = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(repeat):
            for key in probe_keys:
                tree.floor_entry(key)
                tree.ceiling_entry(key)
        double_s = time.perf_counter() - started
        report["neighbors_micro"] = {
            "probes": probes,
            "neighbors_probes_per_s": round(probes / single_s, 1),
            "two_descents_probes_per_s": round(probes / double_s, 1),
            "speedup": round(double_s / single_s, 2) if single_s else None,
        }
        print(
            f"  neighbors {probes / single_s:10.0f} probes/s single    "
            f"{probes / double_s:10.0f} probes/s twice    "
            f"{double_s / single_s:5.2f}x"
        )

    # End to end: the same cache-miss workload against two live servers.
    rounds = 1 if args.smoke else 3
    with XKSearch.open(index_dir, load_document=False) as sys_on, XKSearch.open(
        index_dir, load_document=False, use_segments=False
    ) as sys_off:
        servers = []
        bases = []
        for system in (sys_on, sys_off):
            server = make_server(
                system, port=0, max_workers=args.workers, metrics=ServerMetrics()
            )
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            servers.append((server, thread))
            host, port = server.server_address
            bases.append(f"http://{host}:{port}")
        try:
            for base in bases:
                replay(base, warm_pool, args.threads)  # warm, unmeasured
            qps = {"on": [], "off": []}
            for _ in range(rounds):
                for key, base in zip(("on", "off"), bases):
                    wall, latencies = replay(base, sequence, args.threads)
                    qps[key].append(len(latencies) / wall)
        finally:
            for server, thread in servers:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)
    speedups = sorted(a / b for a, b in zip(qps["on"], qps["off"]) if b)
    speedup = round(statistics.median(speedups), 2) if speedups else None
    report["end_to_end"] = {
        "rounds": rounds,
        "qps_segments_on": round(statistics.median(qps["on"]), 1),
        "qps_segments_off": round(statistics.median(qps["off"]), 1),
        "speedup": speedup,
        "speedup_rounds": [round(s, 2) for s in speedups],
    }
    print(
        f"  cache-miss QPS: {report['end_to_end']['qps_segments_on']:.1f} segments on, "
        f"{report['end_to_end']['qps_segments_off']:.1f} off "
        f"({speedup:.2f}x, {rounds} paired round(s))"
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument("--requests", type=int, default=None, help="replay length")
    parser.add_argument("--threads", type=int, default=None, help="client threads")
    parser.add_argument("--workers", type=int, default=None, help="server worker cap")
    parser.add_argument("--frequency", type=int, default=None, help="keyword list size")
    parser.add_argument("--variants", type=int, default=None, help="planted keywords")
    parser.add_argument("--distinct", type=int, default=None, help="distinct queries")
    parser.add_argument("--zipf", type=float, default=1.1, help="Zipf exponent")
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--cache-size", type=int, default=1024)
    parser.add_argument(
        "--scale-procs",
        default=None,
        help="comma-separated process-pool sizes for the scaling phase "
        "(default: 1,2,4,8 full / 1,2 smoke; empty string skips it)",
    )
    parser.add_argument("--out", default="BENCH_qps.json", help="JSON report path")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail below this cache-on/off QPS ratio (default: 2.0 full, off for --smoke)",
    )
    parser.add_argument(
        "--max-fleet-overhead",
        type=float,
        default=None,
        help="fail above this fleet-observability overhead %% "
        "(default: 3.0 full, off for --smoke)",
    )
    parser.add_argument(
        "--max-robustness-overhead",
        type=float,
        default=None,
        help="fail above this robustness-stack overhead %% "
        "(default: 3.0 full, off for --smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        defaults = dict(requests=150, threads=4, workers=4, frequency=200, variants=6, distinct=10)
    else:
        defaults = dict(requests=600, threads=8, workers=8, frequency=3000, variants=10, distinct=40)
    for key, value in defaults.items():
        if getattr(args, key) is None:
            setattr(args, key, value)
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 0.0 if args.smoke else 2.0
    max_fleet_overhead = args.max_fleet_overhead
    if max_fleet_overhead is None:
        max_fleet_overhead = float("inf") if args.smoke else 3.0
    max_robustness_overhead = args.max_robustness_overhead
    if max_robustness_overhead is None:
        max_robustness_overhead = float("inf") if args.smoke else 3.0
    if args.scale_procs is None:
        args.scale_procs = "1,2" if args.smoke else "1,2,4,8"
    proc_counts = [int(n) for n in args.scale_procs.split(",") if n.strip()]

    pool = build_query_pool(args.frequency, args.variants, args.distinct)
    sequence = zipf_sequence(pool, args.requests, args.zipf, args.seed)

    print(
        f"workload: {args.requests} requests over {len(pool)} distinct queries "
        f"(Zipf s={args.zipf}), keyword lists of {args.frequency}, "
        f"{args.threads} client threads"
    )
    corpus = PlantedCorpus.for_frequencies([(args.frequency, args.variants)], seed=args.seed)
    with tempfile.TemporaryDirectory(prefix="xk_qps_") as tmp:
        index_dir = f"{tmp}/idx"
        started = time.perf_counter()
        build_index(corpus.lists, index_dir, level_table=corpus.level_table())
        print(f"index built in {time.perf_counter() - started:.1f}s at {index_dir}")

        with XKSearch.open(index_dir, load_document=False) as system:
            # Worker pools for the scaling phase fork NOW, before any
            # server thread exists (fork from a threaded process can clone
            # held locks into the children).
            proc_pools = {}
            scaling_note = None
            for count in proc_counts:
                try:
                    proc_pools[count] = WorkerPool(index_dir, workers=count)
                except PoolError as exc:
                    scaling_note = f"process pool unavailable: {exc}"
                    proc_pools = {}
                    break
            # A dedicated pool for the fleet-observability phase, with the
            # worker-side continuous profiler on — also forked before the
            # server thread exists.
            fleet_note = None
            fleet_pool = None
            try:
                fleet_pool = WorkerPool(index_dir, workers=2, profile_hz=100.0)
            except PoolError as exc:
                fleet_note = f"process pool unavailable: {exc}"
            metrics = ServerMetrics()
            server = make_server(
                system, port=0, max_workers=args.workers, metrics=metrics
            )
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            host, port = server.server_address
            base_url = f"http://{host}:{port}"
            try:
                # Warm the buffer pool (unmeasured) so both phases run hot
                # and the only difference is the result cache.
                replay(base_url, pool, args.threads)

                system.engine.cache = None
                wall_off, lat_off = replay(base_url, sequence, args.threads)
                off = phase_report("cache off", wall_off, lat_off)

                # Process-pool scaling: the same cache-off workload with
                # execution dispatched to 1/2/4/8 forked workers.  The
                # ceiling is os.cpu_count() — on a 1-core box the phase
                # measures dispatch overhead, not parallelism.
                scaling = {}
                for count, worker_pool in proc_pools.items():
                    system.engine.attach_pool(worker_pool)
                    try:
                        wall_n, lat_n = replay(base_url, sequence, args.threads)
                    finally:
                        system.engine.detach_pool()
                    scaling[str(count)] = phase_report(
                        f"{count} procs", wall_n, lat_n
                    )
                    scaling[str(count)]["pool"] = worker_pool.stats_dict()
                for worker_pool in proc_pools.values():
                    worker_pool.close()

                cache = QueryCache(result_capacity=args.cache_size)
                system.engine.cache = cache
                wall_on, lat_on = replay(base_url, sequence, args.threads)
                on = phase_report("cache on", wall_on, lat_on)
                cache_stats = cache.stats()
                on["hit_rate"] = round(cache_stats["results"]["hit_rate"], 4)

                # Instrumentation overhead phases, same warmed, cached
                # configuration (the highest-QPS shape, so per-request
                # counter cost is most visible): metrics/counters off,
                # metrics on, and metrics + 1% span tracing with a JSONL
                # trace exporter (a production-typical sample rate; sampled
                # traces materialize a full profile and a histogram
                # exemplar, so their cost scales with the rate).
                #
                # The three configurations are interleaved over several
                # rounds, and the guarded overhead numbers are the MEDIAN
                # of PER-ROUND PAIRED ratios: within one round the
                # off/on/export replays run back-to-back, so the slow
                # load drift of a shared box hits all three roughly
                # equally and cancels in the ratio.  (Comparing best-of
                # across rounds pairs an "off" from a quiet round with an
                # "on" from a busy one — on a 1-CPU box that produced
                # ±20% phantom "overhead" either direction.)  Each
                # configuration's median and min/max spread is also
                # reported, so the CI guard tests a number whose
                # stability is itself measured.  Dedicated warmup rounds
                # run first: the first replay after a configuration flip
                # pays one-time costs (metric-family allocation,
                # code-path warmup) that used to leak into the
                # measurement as negative "overhead".
                handler = server.RequestHandlerClass
                exporter = TraceExporter(JsonlFileSink(f"{tmp}/traces.jsonl"))
                saved_tracer = handler.tracer
                instr_rounds = 1 if args.smoke else 5
                warmup_rounds = 1 if args.smoke else 2
                rounds = {"off": [], "on": [], "export": []}

                def measure(key, wall, lat):
                    rounds[key].append((wall, len(lat)))

                try:
                    for round_no in range(warmup_rounds + instr_rounds):
                        warmup = round_no < warmup_rounds
                        set_instrumentation_enabled(False)
                        try:
                            result = replay(base_url, sequence, args.threads)
                        finally:
                            set_instrumentation_enabled(True)
                        if not warmup:
                            measure("off", *result)
                        result = replay(base_url, sequence, args.threads)
                        if not warmup:
                            measure("on", *result)
                        handler.tracer = Tracer(sample_rate=0.01)
                        handler.exporter = exporter
                        try:
                            result = replay(base_url, sequence, args.threads)
                        finally:
                            handler.exporter = None
                            handler.tracer = saved_tracer
                        if not warmup:
                            measure("export", *result)
                finally:
                    exporter.close()

                round_qps = {
                    key: [n / wall for wall, n in rounds[key]] for key in rounds
                }

                def summarize(key):
                    qps = sorted(round_qps[key])
                    median_qps = statistics.median(qps)
                    spread_pct = (
                        round((qps[-1] - qps[0]) / median_qps * 100, 2)
                        if median_qps
                        else 0.0
                    )
                    print(
                        f"  instr {key:7s} best {qps[-1]:8.1f} qps   "
                        f"median {median_qps:8.1f} qps   spread {spread_pct:5.2f}%"
                    )
                    return {
                        "qps": round(median_qps, 1),
                        "qps_best": round(qps[-1], 1),
                        "spread_pct": spread_pct,
                        "rounds": [round(v, 1) for v in qps],
                    }

                def paired_pct(base_key, other_key):
                    # Per-round paired overheads; drift cancels within a
                    # round because the two replays ran back-to-back.
                    return [
                        round((base - other) / base * 100, 2)
                        for base, other in zip(
                            round_qps[base_key], round_qps[other_key]
                        )
                        if base
                    ]

                instr_off = summarize("off")
                instr_on = summarize("on")
                export_on = summarize("export")
                export_stats = exporter.stats.as_dict()

                # SLO engine + snapshot shipping overhead: the evaluation
                # thread, ring-window recording and timed full-registry
                # snapshots all run off the request path, so this phase
                # measures their whole cost as background contention —
                # paired per round like the instrumentation phases.
                slo_round_count = 1 if args.smoke else 3
                slo_rounds = {"off": [], "on": []}
                for _ in range(slo_round_count):
                    wall_b, lat_b = replay(base_url, sequence, args.threads)
                    slo_rounds["off"].append((wall_b, len(lat_b)))
                    slo_shipper = SnapshotShipper(
                        sink=JsonlFileSink(f"{tmp}/snapshots.jsonl"),
                        interval=1.0,
                    )
                    slo_engine = SLOEngine(
                        eval_interval=0.5, exporter=slo_shipper
                    ).start()
                    try:
                        wall_s, lat_s = replay(base_url, sequence, args.threads)
                    finally:
                        slo_engine.close()
                        slo_shipper.close()
                    slo_rounds["on"].append((wall_s, len(lat_s)))
                slo_qps = {
                    key: [n / wall for wall, n in slo_rounds[key]]
                    for key in slo_rounds
                }
                slo_overhead_rounds = [
                    round((base - live) / base * 100, 2)
                    for base, live in zip(slo_qps["off"], slo_qps["on"])
                    if base
                ]

                # Robustness-stack overhead: the cache-miss replay with
                # every request-path protection live at once — a generous
                # server-default deadline (bound + admission-checked +
                # stride-checkpointed inside the algorithm loops), the
                # admission gate's enter/decide/note_latency accounting
                # (limits set sky-high so nothing actually sheds), and
                # checksum-verified storage reads (a second XKSearch over
                # the same files with per-block CRC verification on).
                # Paired per round like the phases above; cache off so
                # every request actually executes against storage.
                robust_round_count = 1 if args.smoke else 3
                robust_rounds = {"off": [], "on": []}
                robust_gate = AdmissionGate(
                    soft_limit=1_000_000, hard_limit=2_000_000
                )
                system_verify = XKSearch.open(
                    index_dir, load_document=False, verify_checksums=True
                )
                system.engine.cache = None
                try:
                    handler.system = system_verify
                    replay(base_url, pool, args.threads)  # warm, unmeasured
                    handler.system = system
                    for _ in range(robust_round_count):
                        wall_b, lat_b = replay(base_url, sequence, args.threads)
                        robust_rounds["off"].append((wall_b, len(lat_b)))
                        handler.system = system_verify
                        handler.gate = robust_gate
                        handler.default_timeout_ms = 30_000.0
                        server.admission_gate = robust_gate
                        try:
                            wall_r, lat_r = replay(
                                base_url, sequence, args.threads
                            )
                        finally:
                            handler.system = system
                            handler.gate = None
                            handler.default_timeout_ms = None
                            server.admission_gate = None
                        robust_rounds["on"].append((wall_r, len(lat_r)))
                finally:
                    system_verify.close()
                    system.engine.cache = cache
                robust_gate_stats = robust_gate.stats_dict()
                assert robust_gate_stats["shed"] == 0, robust_gate_stats
                robust_qps = {
                    key: [n / wall for wall, n in robust_rounds[key]]
                    for key in robust_rounds
                }
                robustness_overhead_rounds = [
                    round((base - live) / base * 100, 2)
                    for base, live in zip(robust_qps["off"], robust_qps["on"])
                    if base
                ]

                # Cross-process observability overhead: the cache-miss
                # replay dispatched to a dedicated 2-worker pool, once
                # bare and once with the whole fleet stack live — a
                # heartbeating FleetCollector (each heartbeat's snapshot
                # round-trip briefly steals idle workers from dispatch)
                # plus the parent's thread-sampling profiler.  Worker-side
                # samplers (profile_hz=100) run in BOTH phases — they
                # start with the fork and cannot be toggled from here —
                # so the pair isolates the parent-side collection cost.
                fleet_rounds = {"off": [], "on": []}
                fleet_meta = {}
                fleet_round_count = 1 if args.smoke else 3
                if fleet_pool is not None:
                    system.engine.cache = None  # force pooled execution
                    system.engine.attach_pool(fleet_pool)
                    try:
                        replay(base_url, pool, args.threads)  # warm, unmeasured
                        for _ in range(fleet_round_count):
                            wall_b, lat_b = replay(base_url, sequence, args.threads)
                            fleet_rounds["off"].append((wall_b, len(lat_b)))
                            fleet = FleetCollector(
                                fleet_pool, heartbeat_s=0.5
                            ).start()
                            profiler = SamplingProfiler(hz=100.0).start()
                            try:
                                wall_f, lat_f = replay(
                                    base_url, sequence, args.threads
                                )
                            finally:
                                fleet.close()  # stop the heartbeat thread
                                fleet.poll()  # one last, un-raced snapshot
                                fleet_meta = {
                                    "heartbeats": fleet.heartbeats,
                                    "parent_profile_samples": profiler.totals()[
                                        "samples"
                                    ],
                                    "worker_profile_samples": sum(
                                        entry["profile"].get("samples", 0)
                                        for entry in fleet.statz_dict()[
                                            "workers"
                                        ].values()
                                    ),
                                }
                                profiler.close()
                            fleet_rounds["on"].append((wall_f, len(lat_f)))
                    finally:
                        system.engine.detach_pool()
                        system.engine.cache = cache
                fleet_qps = {
                    key: [n / wall for wall, n in fleet_rounds[key]]
                    for key in fleet_rounds
                }
                fleet_overhead_rounds = [
                    round((base - live) / base * 100, 2)
                    for base, live in zip(fleet_qps["off"], fleet_qps["on"])
                    if base
                ]

                with urllib.request.urlopen(f"{base_url}/statz", timeout=10) as resp:
                    statz = json.loads(resp.read())
            finally:
                for worker_pool in proc_pools.values():
                    worker_pool.close()  # idempotent; normally closed above
                if fleet_pool is not None:
                    fleet_pool.close()
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)

        # Posting layer: packed segments vs B+tree (needs the index dir,
        # so it runs inside the tempdir but after the main server stopped).
        posting_segments = bench_posting_segments(index_dir, pool, sequence, args)

    speedup = round(on["qps"] / off["qps"], 2) if off["qps"] else float("inf")
    print(
        f"  speedup   {speedup:.2f}x QPS with cache "
        f"(hit rate {on['hit_rate']:.1%}, server saw {statz['server']['requests']} requests)"
    )
    cpus = os.cpu_count() or 1
    proc_speedup = None
    if scaling:
        lowest, highest = str(min(proc_counts)), str(max(proc_counts))
        if lowest in scaling and highest in scaling and scaling[lowest]["qps"]:
            proc_speedup = round(scaling[highest]["qps"] / scaling[lowest]["qps"], 2)
            print(
                f"  proc scaling: {proc_speedup:.2f}x QPS at {highest} workers vs "
                f"{lowest} ({cpus} CPU core(s) available — parallel speedup is "
                f"bounded by cores)"
            )
    elif scaling_note:
        print(f"  proc scaling skipped: {scaling_note}")
    overhead_rounds = paired_pct("off", "on")
    overhead_pct = (
        round(statistics.median(overhead_rounds), 2) if overhead_rounds else 0.0
    )
    print(
        f"  instrumentation overhead: {overhead_pct:+.2f}% QPS "
        f"(median of {len(overhead_rounds)} paired rounds {overhead_rounds}; "
        f"{instr_off['qps']:.1f} qps off -> {instr_on['qps']:.1f} qps on by medians)"
    )
    export_rounds = paired_pct("on", "export")
    export_overhead_pct = (
        round(statistics.median(export_rounds), 2) if export_rounds else 0.0
    )
    total_rounds = paired_pct("off", "export")
    total_overhead_pct = (
        round(statistics.median(total_rounds), 2) if total_rounds else 0.0
    )
    print(
        f"  export+exemplar overhead: {export_overhead_pct:+.2f}% QPS "
        f"(total vs bare: {total_overhead_pct:+.2f}%, paired rounds {total_rounds}; "
        f"{export_stats['sent']}/{export_stats['submitted']} traces exported, "
        f"{export_stats['dropped_total']} dropped)"
    )
    slo_overhead_pct = (
        round(statistics.median(slo_overhead_rounds), 2)
        if slo_overhead_rounds
        else 0.0
    )
    slo_qps_off = round(statistics.median(slo_qps["off"]), 1)
    slo_qps_on = round(statistics.median(slo_qps["on"]), 1)
    print(
        f"  slo+snapshot overhead: {slo_overhead_pct:+.2f}% QPS "
        f"(paired rounds {slo_overhead_rounds}; "
        f"{slo_qps_off:.1f} qps bare -> {slo_qps_on:.1f} qps with evaluation "
        f"+ shipping by medians)"
    )
    robustness_overhead_pct = (
        round(statistics.median(robustness_overhead_rounds), 2)
        if robustness_overhead_rounds
        else 0.0
    )
    robust_qps_off = (
        round(statistics.median(robust_qps["off"]), 1) if robust_qps["off"] else 0.0
    )
    robust_qps_on = (
        round(statistics.median(robust_qps["on"]), 1) if robust_qps["on"] else 0.0
    )
    print(
        f"  robustness overhead: {robustness_overhead_pct:+.2f}% QPS "
        f"(paired rounds {robustness_overhead_rounds}; "
        f"{robust_qps_off:.1f} qps bare -> {robust_qps_on:.1f} qps with "
        f"deadlines + admission gate + checksum verification by medians; "
        f"{robust_gate_stats['admitted']} admitted, 0 shed)"
    )
    fleet_overhead_pct = (
        round(statistics.median(fleet_overhead_rounds), 2)
        if fleet_overhead_rounds
        else 0.0
    )
    fleet_qps_off = (
        round(statistics.median(fleet_qps["off"]), 1) if fleet_qps["off"] else 0.0
    )
    fleet_qps_on = (
        round(statistics.median(fleet_qps["on"]), 1) if fleet_qps["on"] else 0.0
    )
    if fleet_overhead_rounds:
        print(
            f"  fleet obs overhead: {fleet_overhead_pct:+.2f}% QPS "
            f"(paired rounds {fleet_overhead_rounds}; "
            f"{fleet_qps_off:.1f} qps bare -> {fleet_qps_on:.1f} qps with "
            f"heartbeat collection + profiler by medians; "
            f"{fleet_meta.get('heartbeats', 0)} heartbeats, "
            f"{fleet_meta.get('parent_profile_samples', 0)} parent / "
            f"{fleet_meta.get('worker_profile_samples', 0)} worker samples)"
        )
    elif fleet_note:
        print(f"  fleet obs phase skipped: {fleet_note}")

    report = {
        "benchmark": "bench_qps",
        "workload": {
            "requests": args.requests,
            "distinct_queries": len(pool),
            "zipf_exponent": args.zipf,
            "keyword_frequency": args.frequency,
            "client_threads": args.threads,
            "server_workers": args.workers,
            "cache_size": args.cache_size,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "cache_off": off,
        "cache_on": on,
        "speedup_qps": speedup,
        "posting_segments": posting_segments,
        "scaling_procs": {
            "cpus": cpus,
            "phases": scaling,
            "speedup_max_vs_1": proc_speedup,
            "note": scaling_note,
        },
        "instrumentation": {
            "rounds": instr_rounds,
            "warmup_rounds": warmup_rounds,
            "qps_instr_off": instr_off["qps"],
            "qps_instr_on": instr_on["qps"],
            "overhead_pct": overhead_pct,
            "overhead_pct_rounds": overhead_rounds,
            "spread_pct": {
                "instr_off": instr_off["spread_pct"],
                "instr_on": instr_on["spread_pct"],
                "export_on": export_on["spread_pct"],
            },
            "qps_export_on": export_on["qps"],
            "export_overhead_pct": export_overhead_pct,
            "total_overhead_pct": total_overhead_pct,
            "total_overhead_pct_rounds": total_rounds,
            "export": export_stats,
        },
        "slo_overhead": {
            "rounds": len(slo_overhead_rounds),
            "qps_slo_off": slo_qps_off,
            "qps_slo_on": slo_qps_on,
            "overhead_pct": slo_overhead_pct,
            "overhead_pct_rounds": slo_overhead_rounds,
        },
        "robustness_overhead": {
            "rounds": len(robustness_overhead_rounds),
            "qps_robust_off": robust_qps_off,
            "qps_robust_on": robust_qps_on,
            "overhead_pct": robustness_overhead_pct,
            "overhead_pct_rounds": robustness_overhead_rounds,
            "default_timeout_ms": 30_000.0,
            "admitted": robust_gate_stats["admitted"],
        },
        "fleet_obs": {
            "enabled": bool(fleet_overhead_rounds),
            "rounds": len(fleet_overhead_rounds),
            "workers": 2,
            "heartbeat_s": 0.5,
            "profile_hz": 100.0,
            "qps_obs_off": fleet_qps_off,
            "qps_obs_on": fleet_qps_on,
            "total_overhead_pct": fleet_overhead_pct,
            "overhead_pct_rounds": fleet_overhead_rounds,
            **fleet_meta,
            "note": fleet_note,
        },
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required {min_speedup:.2f}x")
        return 1
    if fleet_overhead_rounds and fleet_overhead_pct > max_fleet_overhead:
        print(
            f"FAIL: fleet observability overhead {fleet_overhead_pct:+.2f}% "
            f"above allowed {max_fleet_overhead:.2f}%"
        )
        return 1
    if (
        robustness_overhead_rounds
        and robustness_overhead_pct > max_robustness_overhead
    ):
        print(
            f"FAIL: robustness overhead {robustness_overhead_pct:+.2f}% "
            f"above allowed {max_robustness_overhead:.2f}%"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
