"""Section 5: the all-LCA extension (Algorithm 3).

The paper extends IL to return every LCA with O(k·d·|slca|) extra match
lookups on top of the SLCA computation — crucially *without* scanning the
large keyword lists.  We measure all-LCA against plain SLCA on the skewed
workload and assert both the containment relation and the cost bound.
"""

import pytest

from conftest import LARGE
from repro.core import find_all_lcas
from repro.core.counters import OpCounters
from repro.core.indexed_lookup import eager_slca
from repro.workloads.datasets import keyword_name
from repro.workloads.queries import QueryPoint
from repro.workloads.runner import Measurement

PANELS = (10, 1000)


def _sources(runner, small, counters):
    keywords = (keyword_name(small, 0), keyword_name(LARGE, 0))
    return runner._disk_index.sources_for(keywords, "indexed", counters)


@pytest.mark.parametrize("small", PANELS)
def test_all_lca_over_disk_index(benchmark, runner, point_store, small):
    runner._ensure_disk()

    def run():
        counters = OpCounters()
        results = list(find_all_lcas(_sources(runner, small, counters), counters))
        return results, counters

    (lcas, counters) = benchmark.pedantic(run, rounds=3, iterations=1)
    slca_counters = OpCounters()
    slcas = list(eager_slca(_sources(runner, small, slca_counters), slca_counters))
    assert set(slcas) <= set(lcas)
    assert len(lcas) == len(set(lcas))
    # Cost bound: the extra lookups beyond the SLCA pass are at most
    # 2·k per checked ancestor, and at most d ancestors exist per SLCA.
    k, depth = 2, 6
    extra = counters.match_ops - slca_counters.match_ops
    assert extra <= 2 * k * depth * max(1, len(slcas))
    point_store.record(
        "alllca",
        small,
        small,
        "il",
        Measurement("il", "memory", wall_ms=0.0, n_results=len(lcas), counters=counters),
    )


@pytest.mark.parametrize("small", PANELS)
def test_all_lca_avoids_scanning_large_list(runner, small):
    """Algorithm 3 must not degenerate into a scan of the 100k list."""
    counters = OpCounters()
    list(find_all_lcas(_sources(runner, small, counters), counters))
    assert counters.cursor_advances == 0
    assert counters.match_ops < 40 * small + 200
