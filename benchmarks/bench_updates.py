"""Index-maintenance throughput (extension: incremental updates).

Measures posting-insert throughput into a populated disk index and the
cost of the per-keyword scan-block rewrite that keeps sequential scans
valid, plus the invariant that queries after an update batch agree with a
fresh rebuild.
"""

import pytest

from repro.core import eager_slca
from repro.core.counters import OpCounters
from repro.index.builder import build_index
from repro.index.inverted import DiskKeywordIndex
from repro.index.updates import IndexUpdater
from repro.workloads.datasets import CorpusShape, PlantedCorpus


@pytest.fixture()
def update_target(tmp_path):
    corpus = PlantedCorpus.for_frequencies([(1000, 1), (5000, 1)], seed=17)
    target = tmp_path / "idx"
    build_index(corpus.lists, target, level_table=corpus.level_table())
    return target, corpus


def _fresh_slots(shape: CorpusShape, used, count):
    slots = []
    probe = 0
    used_set = set(used)
    while len(slots) < count:
        dewey = shape.slot_dewey(probe)
        if dewey not in used_set:
            slots.append(dewey)
        probe += 1
    return slots


@pytest.mark.parametrize("batch", (10, 100, 1000))
def test_insert_batch_throughput(benchmark, update_target, batch):
    target, corpus = update_target
    keyword = "xk1000_0"
    fresh = _fresh_slots(corpus.shape, corpus.lists[keyword], batch)
    state = {"round": 0}

    def insert_batch():
        # Distinct keyword per round so rounds do not collide.
        name = f"bulkkw{state['round']}"
        state["round"] += 1
        with IndexUpdater(target) as updater:
            return updater.add_postings({name: [(d, "") for d in fresh]})

    added = benchmark.pedantic(insert_batch, rounds=2, iterations=1)
    assert added == batch


def test_updated_index_equals_rebuilt_index(update_target, tmp_path):
    target, corpus = update_target
    keyword = "xk1000_0"
    fresh = _fresh_slots(corpus.shape, corpus.lists[keyword], 250)
    with IndexUpdater(target) as updater:
        updater.add_postings({keyword: [(d, "") for d in fresh]})

    merged = dict(corpus.lists)
    merged[keyword] = sorted(set(merged[keyword]) | set(fresh))
    rebuilt_dir = tmp_path / "rebuilt"
    build_index(merged, rebuilt_dir, level_table=corpus.level_table())

    query = (keyword, "xk5000_0")
    with DiskKeywordIndex(target) as updated, DiskKeywordIndex(rebuilt_dir) as rebuilt:
        assert updated.keyword_list(keyword) == rebuilt.keyword_list(keyword)
        got = list(eager_slca(updated.sources_for(query, "indexed", OpCounters())))
        want = list(eager_slca(rebuilt.sources_for(query, "indexed", OpCounters())))
        assert got == want
        # The scan path agrees too (block rewrite preserved order).
        got_scan = list(eager_slca(updated.sources_for(query, "scan", OpCounters())))
        assert got_scan == want
