"""CI chaos drill: fault injection against a live pooled server.

Builds a small planted index, starts the demo server backed by a
2-process worker pool, and drives every failure mode the robustness
layer claims to absorb (docs/ROBUSTNESS.md), asserting exact metric
accounting after each:

* **worker crashes** — the ``kill-worker`` fault point makes each
  original worker ``os._exit(1)`` mid-task; every request must still
  return the byte-identical answer via in-thread fallback, with exactly
  one ``xks_pool_fallback_total`` and one ``xks_pool_worker_deaths_total``
  increment per death, and the pool must respawn back to full size;
* **storage corruption** — a bit flipped inside a posting block of the
  packed segments is detected by the per-block CRC on a
  ``--verify-checksums`` server, counted once in
  ``xks_corruption_detected_total{tier="segment"}``, the segment tier is
  quarantined, and every answer is re-served byte-identical from the
  B+tree tier; ``xksearch fsck`` flags the same corruption (exit 1);
* **overload** — with the admission gate pushed past its hard limit,
  requests shed with ``429`` + ``Retry-After`` (one gate ``shed``
  increment each) and flow again the moment pressure releases;
* **deadlines** — the ``expired-deadline`` fault point and a
  microscopic client budget both produce ``504`` with a phase and a
  trace id, counted in ``xks_deadline_exceeded_total{phase}``;
* **drain** — an idle server drains to zero in-flight requests.

Run::

    PYTHONPATH=src python scripts/ci_chaos.py
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

from repro.index.builder import build_index
from repro.index.segments import SegmentReader, segments_path
from repro.obs.metrics import get_registry
from repro.robustness import faultinject
from repro.robustness.admission import AdmissionGate
from repro.xksearch.cli import main as cli_main
from repro.xksearch.server import ServerMetrics, make_server
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import dblp_like_tree, plant_keywords

QUERIES = ("xkrare+xkbig", "xkmid+xkbig", "xkrare+xkmid")


def build(target) -> None:
    tree = dblp_like_tree(7, venues=3, years_per_venue=3, papers_per_year=8)
    plant_keywords(tree, {"xkrare": 4, "xkmid": 18, "xkbig": 50}, seed=11)
    build_index(tree, target, page_size=1024)


def counter_value(name, **labels) -> float:
    metric = get_registry().get_metric(name)
    if metric is None:
        return 0.0
    if labels:
        return metric.labels(**labels).value
    return sum(child.value for _, child in metric.items())


def fetch_json(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def fetch_ids(base, query):
    status, _, payload = fetch_json(f"{base}/api/search?q={query}")
    assert status == 200, (query, status, payload)
    return payload["ids"]


@contextlib.contextmanager
def serving(system, **kwargs):
    server = make_server(system, port=0, metrics=ServerMetrics(), **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    try:
        yield f"http://{host}:{port}", server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def reference_answers(index_dir) -> dict:
    with XKSearch.open(index_dir, load_document=False) as reference, serving(
        reference
    ) as (base, _):
        return {q: fetch_ids(base, q) for q in QUERIES}


def check_worker_crash(index_dir, reference) -> None:
    """Both pool workers are killed mid-task by fault injection; every
    request still answers, with exact fallback/death/respawn accounting."""
    import multiprocessing

    from repro.xksearch.parallel import WorkerPool

    if "fork" not in multiprocessing.get_all_start_methods():
        print("worker crash SKIPPED: no fork start method")
        return

    deaths_before = counter_value("xks_pool_worker_deaths_total")
    fallback_before = counter_value("xks_pool_fallback_total")
    # Armed before the fork so both original workers inherit the plan
    # (one kill each); disarmed before respawns so replacements are
    # healthy.
    faultinject.arm("kill-worker:times=1")
    pool = WorkerPool(index_dir, workers=2)
    faultinject.reset_plan()
    try:
        with XKSearch.open(index_dir, load_document=False) as system:
            system.engine.attach_pool(pool)
            with serving(system) as (base, _):
                served = 0
                deadline = time.monotonic() + 30.0
                # Round-robin queries until both armed workers have died;
                # every single response must match the reference.
                while pool.respawns < 2:
                    assert time.monotonic() < deadline, (
                        f"armed workers never crashed (respawns={pool.respawns})"
                    )
                    query = QUERIES[served % len(QUERIES)]
                    assert fetch_ids(base, query) == reference[query], query
                    served += 1
                for query in QUERIES:  # the respawned pool keeps serving
                    assert fetch_ids(base, query) == reference[query], query
                    served += 1
    finally:
        pool.close()

    deaths = counter_value("xks_pool_worker_deaths_total") - deaths_before
    fallbacks = counter_value("xks_pool_fallback_total") - fallback_before
    assert deaths == 2, f"expected exactly 2 worker deaths, saw {deaths}"
    assert fallbacks == 2, f"expected exactly 2 fallbacks, saw {fallbacks}"
    print(
        f"worker crash OK: {served} requests all byte-identical across 2 "
        f"injected worker kills, 2 fallbacks, pool respawned to full size"
    )


def check_corruption_reanswer(index_dir, reference) -> None:
    """A flipped bit in a segment posting block: detected once, segment
    tier quarantined, every answer re-served byte-identical from the
    B+trees; fsck flags the same corruption."""
    path = segments_path(index_dir)
    with SegmentReader(path) as reader:
        start = reader.skip_table("xkrare").starts[0]
    with open(path, "r+b") as fh:
        fh.seek(start)
        byte = fh.read(1)[0]
        fh.seek(start)
        fh.write(bytes([byte ^ 0x40]))

    before = counter_value("xks_corruption_detected_total", tier="segment")
    with XKSearch.open(
        index_dir, load_document=False, verify_checksums=True
    ) as system:
        assert system.index.segments_active(), "segments not active at open"
        with serving(system) as (base, _):
            for query in QUERIES:
                assert fetch_ids(base, query) == reference[query], query
        assert not system.index.segments_active(), (
            "corrupt segment tier was not quarantined"
        )
    detected = (
        counter_value("xks_corruption_detected_total", tier="segment") - before
    )
    assert detected == 1, f"expected exactly 1 corruption event, saw {detected}"

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = cli_main(["fsck", str(index_dir)])
    assert code == 1, f"fsck exited {code} on a corrupt index"
    assert "segment block" in stdout.getvalue(), stdout.getvalue()
    print(
        f"corruption OK: {len(QUERIES)} queries byte-identical from the "
        f"B+tree tier after quarantine, 1 corruption event, fsck caught it"
    )


def check_admission_shed(index_dir, reference) -> None:
    """Past the hard watermark every request sheds 429 + Retry-After;
    releasing the pressure restores service immediately."""
    gate = AdmissionGate(soft_limit=2, hard_limit=4)
    with XKSearch.open(index_dir, load_document=False) as system, serving(
        system, gate=gate
    ) as (base, server):
        shed_before = gate.stats_dict()["shed"]
        for _ in range(5):  # saturate: accounting past the hard limit
            gate.enter()
        try:
            for _ in range(3):
                status, headers, payload = fetch_json(
                    f"{base}/api/search?q={QUERIES[0]}"
                )
                assert status == 429, (status, payload)
                assert payload["reason"] == "hard_limit", payload
                assert headers["Retry-After"] == str(gate.retry_after_s)
        finally:
            for _ in range(5):
                gate.exit()
        shed = gate.stats_dict()["shed"] - shed_before
        assert shed == 3, f"expected exactly 3 shed requests, saw {shed}"
        assert fetch_ids(base, QUERIES[0]) == reference[QUERIES[0]], (
            "service did not recover after pressure released"
        )
        assert server.drain(timeout_s=2.0) == 0, "idle server failed to drain"
    print("overload OK: 3 requests shed 429+Retry-After, recovered, drained")


def check_deadline(index_dir) -> None:
    """Expired budgets 504 with a phase, counted exactly once each."""
    with XKSearch.open(index_dir, load_document=False) as system, serving(
        system
    ) as (base, _):
        before = counter_value("xks_deadline_exceeded_total", phase="admission")
        faultinject.arm("expired-deadline:times=1")
        try:
            status, _, payload = fetch_json(
                f"{base}/api/search?q={QUERIES[0]}&timeout_ms=5000"
            )
        finally:
            faultinject.reset_plan()
        assert status == 504, (status, payload)
        assert payload["phase"] == "admission", payload
        assert payload["trace_id"], payload
        status, _, payload = fetch_json(
            f"{base}/api/search?q={QUERIES[0]}",
            headers={"X-Deadline-Ms": "0.001"},
        )
        assert status == 504, (status, payload)
        expired = (
            counter_value("xks_deadline_exceeded_total", phase="admission")
            - before
        )
        assert expired == 2, f"expected exactly 2 expiries, saw {expired}"
        # A generous budget changes nothing about the answer.
        status, _, payload = fetch_json(
            f"{base}/api/search?q={QUERIES[0]}&timeout_ms=30000"
        )
        assert status == 200 and payload["ids"], payload
    print("deadline OK: fault + tiny budget both 504'd, counted exactly twice")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="xk_chaos_") as tmp:
        index_dir = f"{tmp}/idx"
        build(index_dir)
        reference = reference_answers(index_dir)
        assert all(reference.values()), f"empty reference answers: {reference}"
        check_worker_crash(index_dir, reference)
        check_admission_shed(index_dir, reference)
        check_deadline(index_dir)
        # Last: this phase corrupts the index files.
        check_corruption_reanswer(index_dir, reference)
    print("chaos drill passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
