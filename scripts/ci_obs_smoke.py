"""CI smoke test for the observability surface.

Builds a tiny index, starts the demo server in-process, exercises the
search API, then asserts that:

* ``GET /metrics`` returns Prometheus-text-format output that a strict
  line grammar accepts, and that the core metric families (server,
  engine, cache, buffer pool, pager, B+tree) are all present;
* one CLI ``search --explain`` invocation prints the answer line plus a
  valid JSON profile with phases, counters and an algorithm.

Run::

    PYTHONPATH=src python scripts/ci_obs_smoke.py
"""

from __future__ import annotations

import contextlib
import io
import json
import re
import sys
import tempfile
import threading
import urllib.request

from repro.xksearch.cache import QueryCache
from repro.xksearch.cli import main as cli_main
from repro.xksearch.server import ServerMetrics, make_server
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import school_tree

# One exposition line: "name{labels} value" or a # HELP / # TYPE comment.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\")*\})?"
    r" (\+Inf|-Inf|-?[0-9.e+-]+)$"
)
_COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")

CORE_METRICS = (
    "xks_http_requests_total",
    "xks_http_request_ms_bucket",
    "xks_queries_total",
    "xks_algo_ops_total",
    "xks_query_cache_hits_total",
    "xks_buffer_pool_hits_total",
    "xks_pager_reads_total",
    "xks_bptree_node_reads_total",
    "xks_index_generation",
)


def check_metrics_endpoint(index_dir: str) -> None:
    with XKSearch.open(index_dir, cache=QueryCache()) as system:
        server = make_server(system, port=0, metrics=ServerMetrics())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        base = f"http://{host}:{port}"
        try:
            for query in ("John+Ben", "John+Ben", "class+smith"):
                with urllib.request.urlopen(
                    f"{base}/api/search?q={query}", timeout=10
                ) as resp:
                    json.loads(resp.read())
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
                content_type = resp.headers["Content-Type"]
                body = resp.read().decode("utf-8")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    assert content_type.startswith("text/plain"), content_type
    assert body.endswith("\n"), "exposition must end with a newline"
    for line in body.rstrip("\n").split("\n"):
        assert _SAMPLE_LINE.match(line) or _COMMENT_LINE.match(line), (
            f"unparseable exposition line: {line!r}"
        )
    for name in CORE_METRICS:
        assert name in body, f"missing core metric {name}"
    print(f"/metrics OK: {len(body.splitlines())} lines, all core metrics present")


def check_cli_explain(index_dir: str) -> None:
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = cli_main(["search", index_dir, "John Ben", "--explain"])
    assert code == 0, f"explain CLI exited {code}"
    lines = stdout.getvalue().splitlines()
    assert lines and "SLCA answer(s)" in lines[0], lines[:1]
    profile = json.loads("\n".join(lines[1:]))
    assert profile["algorithm"] in ("il", "scan", "stack")
    assert [phase["name"] for phase in profile["phases"]]
    assert profile["counters"]["lca_ops"] >= 0
    print(
        f"--explain OK: {lines[0]} "
        f"(phases: {[phase['name'] for phase in profile['phases']]})"
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="xk_obs_smoke_") as tmp:
        index_dir = f"{tmp}/idx"
        XKSearch.build(school_tree(), index_dir).close()
        check_metrics_endpoint(index_dir)
        check_cli_explain(index_dir)
    print("observability smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
