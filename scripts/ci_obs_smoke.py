"""CI smoke test for the observability surface.

Builds a tiny index, starts the demo server in-process, exercises the
search API, then asserts that:

* ``GET /metrics`` returns Prometheus-text-format output that a strict
  line grammar (including optional OpenMetrics exemplar suffixes)
  accepts, and that the core metric families (server, engine, cache,
  buffer pool, pager, B+tree) are all present — with band/algorithm
  labels and an exemplar on the execution histogram;
* a server run with a JSONL trace exporter attached exports exactly the
  traces it served: every exported trace id matches an ``X-Trace-Id``
  response header (the artifact is kept via ``--trace-out`` for upload);
* one CLI ``search --explain`` invocation prints the answer line plus a
  valid JSON profile with phases, counters and an algorithm;
* a server backed by a 2-process worker pool returns answers identical
  to the in-thread server, ``/metrics`` carries per-worker
  ``xks_pool_tasks_total`` labels, and — after every worker is killed —
  requests still succeed in-thread with the fallback counter raised
  (skipped where ``fork`` is unavailable);
* the packed posting segments answer byte-identically to the B+tree
  tier (all three algorithms, SLCA and ELCA; in-thread and over a
  2-process pool sharing a posting-block cache), the segment metrics
  appear on ``/metrics``, and a mid-run :class:`IndexUpdater` bump
  invalidates segment readers in every worker before the rebuilt
  segments take over;
* an SLO drill with seconds-scale burn windows and injected execution
  latency walks a fast-burn alert through ``ok → firing`` on
  ``/alertz`` (mirrored in ``xks_alert_state``), resolves it on
  recovery, and ships the snapshots plus both alert transition records
  to a JSONL sink with exact ``submitted == sent + dropped`` accounting;
* a 2-process pooled server is *fleet-exact*: ``xks_queries_total`` on
  ``/metrics`` grows by exactly the number of served queries (worker
  deltas replayed into the parent registry), every exported trace for a
  pooled query carries a worker-attributed span subtree, the
  :class:`FleetCollector` rollup reports both workers up, and
  ``/debug/pprof`` serves live folded stacks (skipped without ``fork``);
* the committed full-run ``BENCH_qps.json`` (``--bench-report``) keeps
  total instrumentation overhead within ``--max-overhead-pct`` (skipped
  with a notice when the report is absent).

Run::

    PYTHONPATH=src python scripts/ci_obs_smoke.py
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import re
import shutil
import sys
import tempfile
import threading
import urllib.parse
import urllib.request

from repro.obs.export import JsonlFileSink, TraceExporter
from repro.obs.tracing import Tracer
from repro.xksearch.cache import QueryCache
from repro.xksearch.cli import main as cli_main
from repro.xksearch.server import ServerMetrics, make_server
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import school_tree

# One exposition line: "name{labels} value", optionally followed by an
# OpenMetrics exemplar ("# {labels} value [timestamp]"), or a # HELP /
# # TYPE comment.
_LABELS = (
    r"\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\")*\}"
)
_NUMBER = r"(\+Inf|-Inf|NaN|-?[0-9.e+-]+)"
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    rf"({_LABELS})?"
    rf" {_NUMBER}"
    rf"( # {_LABELS} {_NUMBER}( {_NUMBER})?)?$"
)
_COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")

CORE_METRICS = (
    "xks_http_requests_total",
    "xks_http_request_ms_bucket",
    "xks_queries_total",
    "xks_query_exec_ms_bucket",
    "xks_algo_ops_total",
    "xks_query_cache_hits_total",
    "xks_buffer_pool_hits_total",
    "xks_pager_reads_total",
    "xks_bptree_node_reads_total",
    "xks_index_generation",
)


def check_metrics_endpoint(index_dir: str) -> None:
    forced_trace_id = "f005ba1100c0ffee"
    with XKSearch.open(index_dir, cache=QueryCache()) as system:
        server = make_server(system, port=0, metrics=ServerMetrics())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        base = f"http://{host}:{port}"
        try:
            for query in ("John+Ben", "John+Ben", "class+smith"):
                with urllib.request.urlopen(
                    f"{base}/api/search?q={query}", timeout=10
                ) as resp:
                    json.loads(resp.read())
            # A traced request (explicit X-Trace-Id) must leave an exemplar
            # on the execution histogram.
            request = urllib.request.Request(
                f"{base}/api/search?q=John+Smith",
                headers={"X-Trace-Id": forced_trace_id},
            )
            with urllib.request.urlopen(request, timeout=10) as resp:
                json.loads(resp.read())
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
                content_type = resp.headers["Content-Type"]
                body = resp.read().decode("utf-8")
            with urllib.request.urlopen(f"{base}/debug/slow", timeout=10) as resp:
                slow = json.loads(resp.read())
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    assert content_type.startswith("text/plain"), content_type
    assert body.endswith("\n"), "exposition must end with a newline"
    for line in body.rstrip("\n").split("\n"):
        assert _SAMPLE_LINE.match(line) or _COMMENT_LINE.match(line), (
            f"unparseable exposition line: {line!r}"
        )
    for name in CORE_METRICS:
        assert name in body, f"missing core metric {name}"
    exec_lines = [
        line for line in body.splitlines() if line.startswith("xks_query_exec_ms_bucket")
    ]
    assert exec_lines and all(
        'band="' in line and 'algorithm="' in line for line in exec_lines
    ), "xks_query_exec_ms must carry band and algorithm labels"
    exemplar_lines = [line for line in exec_lines if f'trace_id="{forced_trace_id}"' in line]
    assert exemplar_lines, "traced request left no exemplar on xks_query_exec_ms"
    # The exemplar's trace id must resolve via /debug/slow's exemplar echo.
    assert any(
        entry["trace_id"] == forced_trace_id for entry in slow.get("exemplars", [])
    ), f"exemplar trace id absent from /debug/slow: {slow.get('exemplars')}"
    print(
        f"/metrics OK: {len(body.splitlines())} lines, all core metrics present, "
        f"banded exec histogram with resolvable exemplar"
    )


def check_export_pipeline(index_dir: str, trace_out: str = None) -> None:
    """Serve with a JSONL trace exporter; exported ids must match served ids."""
    trace_path = os.path.join(index_dir, "..", "traces.jsonl")
    exporter = TraceExporter(JsonlFileSink(trace_path), flush_interval=0.05)
    served_ids = []
    with XKSearch.open(index_dir, cache=QueryCache()) as system:
        server = make_server(
            system,
            port=0,
            metrics=ServerMetrics(),
            tracer=Tracer(sample_rate=1.0),
            exporter=exporter,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        base = f"http://{host}:{port}"
        try:
            for i, query in enumerate(("John+Ben", "class+smith", "John+Smith")):
                request = urllib.request.Request(
                    f"{base}/api/search?q={query}",
                    headers={"X-Trace-Id": f"{i:016x}"},
                )
                with urllib.request.urlopen(request, timeout=10) as resp:
                    json.loads(resp.read())
                    served_ids.append(resp.headers["X-Trace-Id"])
        finally:
            server.shutdown()
            server.server_close()  # closes the exporter (flush-on-shutdown)
            thread.join(timeout=5)

    with open(trace_path, encoding="utf-8") as fh:
        exported = [json.loads(line) for line in fh]
    exported_ids = [record["trace_id"] for record in exported]
    assert sorted(exported_ids) == sorted(served_ids), (
        f"exported {exported_ids} != served {served_ids}"
    )
    stats = exporter.stats.as_dict()
    assert stats["submitted"] == stats["sent"] + stats["dropped_total"], stats
    assert all(record["kind"] == "trace" for record in exported)
    if trace_out:
        shutil.copyfile(trace_path, trace_out)
    print(
        f"export OK: {len(exported)} traces exported, ids match X-Trace-Id headers"
        + (f", artifact at {trace_out}" if trace_out else "")
    )


def check_parallel_smoke(index_dir: str) -> None:
    """Serve over a 2-process pool: identical answers, per-worker metrics,
    and in-thread fallback after every worker dies."""
    import multiprocessing

    from repro.xksearch.parallel import WorkerPool
    from repro.xksearch.shared_cache import SharedResultCache

    if "fork" not in multiprocessing.get_all_start_methods():
        print("parallel smoke SKIPPED: no fork start method")
        return

    # All keywords exist in school_tree, so no plan is empty and every
    # request reaches the pool (empty plans short-circuit in-thread).
    queries = ("John+Ben", "class+john", "ben+sue", "databases+search")

    def serve_and_fetch(system, base_actions):
        server = make_server(system, port=0, metrics=ServerMetrics())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        base = f"http://{host}:{port}"
        try:
            return base_actions(base)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def fetch_ids(base, query):
        with urllib.request.urlopen(f"{base}/api/search?q={query}", timeout=10) as resp:
            return json.loads(resp.read())["ids"]

    # Reference answers from a plain in-thread server.
    with XKSearch.open(index_dir) as system:
        reference = serve_and_fetch(
            system, lambda base: {q: fetch_ids(base, q) for q in queries}
        )

    # Pool and shared cache fork BEFORE the server thread starts.  The
    # parent engine runs cache-less so every request — including the
    # post-crash ones — actually reaches the pool dispatch path.
    shared = SharedResultCache()
    pool = WorkerPool(index_dir, workers=2, shared_cache=shared, max_respawns=0)
    try:
        with XKSearch.open(index_dir) as system:
            system.engine.attach_pool(pool)

            def actions(base):
                # Sequential distinct queries round-robin the idle queue,
                # so both workers execute at least one task.
                answers = {q: fetch_ids(base, q) for q in queries}
                with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
                    metrics_body = resp.read().decode("utf-8")
                # Crash injection: kill every worker, then keep serving.
                for handle in list(pool._workers):
                    handle.process.kill()
                    handle.process.join(timeout=5)
                after_crash = {q: fetch_ids(base, q) for q in queries}
                with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
                    metrics_after = resp.read().decode("utf-8")
                return answers, metrics_body, after_crash, metrics_after

            answers, metrics_body, after_crash, metrics_after = serve_and_fetch(
                system, actions
            )
    finally:
        pool.close()
        shared.close()

    assert answers == reference, f"pooled {answers} != in-thread {reference}"
    assert after_crash == reference, (
        f"fallback answers {after_crash} != in-thread {reference}"
    )
    for worker in ("0", "1"):
        assert f'xks_pool_tasks_total{{worker="{worker}"}}' in metrics_body, (
            f"no per-worker tasks metric for worker {worker}"
        )
    assert "xks_pool_fallback_total" in metrics_after, (
        "pool crash produced no xks_pool_fallback_total"
    )
    print(
        f"parallel smoke OK: {len(queries)} queries byte-identical over 2 "
        f"proc workers, per-worker metrics present, crash fell back in-thread"
    )


def check_slo_alerting(index_dir: str) -> None:
    """SLO drill: injected latency must walk a fast-burn alert through
    ``ok → firing`` on ``/alertz`` (mirrored in ``xks_alert_state``),
    recovery must resolve it, and the snapshot pipeline must deliver the
    metrics snapshots and both alert transition records to the JSONL sink
    with exact accounting."""
    from repro.obs.export import SnapshotShipper
    from repro.obs.slo import BurnRule, SLOEngine, WindowPolicy, parse_slo

    snapshot_path = os.path.join(index_dir, "..", "snapshots.jsonl")
    # Seconds-scale windows so the drill fires and resolves within CI
    # budget; the thresholds are the real 14.4x fast-burn rule.
    policy = WindowPolicy(
        rules=(BurnRule(short_s=1.0, long_s=2.0, max_burn=14.4,
                        severity="fast", for_s=0.2),),
        resolution_s=0.05,
    )
    shipper = SnapshotShipper(
        sink=JsonlFileSink(snapshot_path), interval=0.2, flush_interval=0.05
    )
    slo_engine = SLOEngine(
        slos=[parse_slo("latency:p99<=5ms:name=ci-latency")],
        policy=policy,
        eval_interval=0.05,
        exporter=shipper,
    ).start()

    def fetch_alert_state(base):
        with urllib.request.urlopen(f"{base}/alertz", timeout=10) as resp:
            payload = json.loads(resp.read())
        (block,) = payload["slos"]
        return block["alerts"][0]["state"]

    def drive_until(base, system, delay_ms, want_states, what):
        import time

        system.engine.debug_latency_ms = delay_ms
        deadline = time.monotonic() + 20.0
        state = None
        while time.monotonic() < deadline:
            with urllib.request.urlopen(
                f"{base}/api/search?q=John+Ben", timeout=10
            ) as resp:
                json.loads(resp.read())
            state = fetch_alert_state(base)
            if state in want_states:
                return state
            time.sleep(0.05)
        raise AssertionError(f"alert never became {what}: last state {state!r}")

    # Cache off: every request must actually execute (and feel the
    # injected latency), not replay a cached result.
    with XKSearch.open(index_dir) as system:
        server = make_server(
            system,
            port=0,
            metrics=ServerMetrics(),
            slo_engine=slo_engine,
            shipper=shipper,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        base = f"http://{host}:{port}"
        try:
            drive_until(base, system, 30.0, ("firing",), "firing")
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
                metrics_body = resp.read().decode("utf-8")
            # Recovery: no injected latency, bad events age out of both
            # windows, the alert must leave the firing state.
            final = drive_until(
                base, system, 0.0, ("resolved", "ok"), "resolved"
            )
        finally:
            server.shutdown()
            server.server_close()  # closes the SLO engine, then the shipper
            thread.join(timeout=5)

    assert 'xks_alert_state{alert="ci-latency:fast"} 2' in metrics_body, (
        "firing alert not mirrored in xks_alert_state"
    )
    assert 'xks_slo_error_budget_remaining{slo="ci-latency"}' in metrics_body, (
        "no error budget gauge for the drilled SLO"
    )
    with open(snapshot_path, encoding="utf-8") as fh:
        records = [json.loads(line) for line in fh]
    snapshots = [r for r in records if r["kind"] == "metrics"]
    alerts = [r for r in records if r["kind"] == "alert"]
    assert snapshots, "no metrics snapshots reached the sink"
    transitions = {(r["from"], r["to"]) for r in alerts}
    assert ("pending", "firing") in transitions, f"no firing record: {transitions}"
    assert ("firing", "resolved") in transitions, (
        f"no resolved record: {transitions}"
    )
    stats = shipper.stats.as_dict()
    assert stats["submitted"] == stats["sent"] + stats["dropped_total"], stats
    print(
        f"slo alerting OK: fast-burn alert fired then {final}, "
        f"{len(snapshots)} snapshots + {len(alerts)} alert records shipped, "
        f"accounting exact ({stats['submitted']} submitted)"
    )


def check_segments(index_dir: str) -> None:
    """Packed posting segments: byte-identical answers segments-on vs -off
    (every algorithm, SLCA and ELCA), segment metrics on /metrics, and a
    mid-run index update that invalidates segment readers everywhere —
    including inside forked pool workers."""
    import multiprocessing

    from repro.index.updates import IndexUpdater
    from repro.xksearch.parallel import WorkerPool
    from repro.xksearch.shared_cache import PostingBlockCache

    queries = ("John Ben", "class john", "ben sue", "databases search")

    # Single-thread identity: the segment fast path and the B+tree
    # fallback must agree on every algorithm and both semantics.
    with XKSearch.open(index_dir) as on, XKSearch.open(
        index_dir, use_segments=False
    ) as off:
        assert on.index.posting_tier() == "segment", "segments not active after build"
        assert off.index.posting_tier() == "bptree"
        for query in queries:
            for algorithm in ("il", "scan", "stack"):
                got = list(on.search_ids(query, algorithm=algorithm))
                want = list(off.search_ids(query, algorithm=algorithm))
                assert got == want, (query, algorithm, got, want)
            got = list(on.engine.execute_elca(query))
            want = list(off.engine.execute_elca(query))
            assert got == want, ("elca", query, got, want)

    # The serving surface must expose the segment tier.
    with XKSearch.open(index_dir, cache=QueryCache()) as system:
        server = make_server(system, port=0, metrics=ServerMetrics())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        try:
            with urllib.request.urlopen(
                f"http://{host}:{port}/api/search?q=John+Ben", timeout=10
            ) as resp:
                json.loads(resp.read())
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ) as resp:
                body = resp.read().decode("utf-8")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
    assert "xks_segment_active 1" in body, "xks_segment_active gauge not 1"
    for name in ("xks_segment_keywords", "xks_segment_sources_total"):
        assert name in body, f"missing segment metric {name}"

    if "fork" not in multiprocessing.get_all_start_methods():
        print(
            "segments OK: byte-identical on/off (3 algorithms + ELCA), metrics "
            "present; pool phase SKIPPED (no fork)"
        )
        return

    # Pool phase: workers read segments through the shared posting-block
    # cache; a mid-run IndexUpdater bump must stale every worker's
    # segment reader (answers stay correct via the B+tree fallback, then
    # the rebuilt segments take over).
    def fetch_ids(base, query):
        quoted = urllib.parse.quote(query)
        with urllib.request.urlopen(
            f"{base}/api/search?q={quoted}", timeout=10
        ) as resp:
            return json.loads(resp.read())["ids"]

    posting = PostingBlockCache()
    pool = WorkerPool(index_dir, workers=2, posting_cache=posting)
    try:
        # A QueryCache makes the engine check the index generation before
        # planning, so the post-update query replans against the fresh
        # frequency table (the same protocol the real server uses).
        with XKSearch.open(index_dir, cache=QueryCache()) as system:
            system.engine.attach_pool(pool)
            system.index.attach_posting_cache(posting)
            server = make_server(system, port=0, metrics=ServerMetrics())
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            host, port = server.server_address
            base = f"http://{host}:{port}"
            try:
                pooled = {q: fetch_ids(base, q) for q in queries}
                # Mid-run update: plant "zzz" at every "john" occurrence.
                johns = list(system.index.scan("john"))
                with IndexUpdater(index_dir) as updater:
                    updater.add_postings({"zzz": [(d, "") for d in johns]})
                    # The bump invalidates segments instantly in this process.
                    assert system.index.posting_tier() == "bptree", (
                        "generation bump did not stale the parent's segments"
                    )
                updated = fetch_ids(base, "john zzz")
                with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
                    metrics_body = resp.read().decode("utf-8")
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)
    finally:
        pool.close()
        posting.close()

    # Reference answers from a segment-less in-thread system (post-update
    # for the zzz query, which exercises the rebuilt segments' content).
    def dotted(deweys):
        return [".".join(map(str, d)) for d in deweys]

    with XKSearch.open(index_dir, use_segments=False) as reference:
        for query in queries:
            want = dotted(reference.search_ids(query))
            assert pooled[query] == want, (query, pooled[query], want)
        want = dotted(reference.search_ids("john zzz"))
        assert updated == want, ("john zzz", updated, want)
        assert want, "planted keyword produced no results"
    assert "xks_posting_cache_" in metrics_body, (
        "pooled server exposes no posting-cache metrics"
    )
    print(
        "segments OK: byte-identical on/off (3 algorithms + ELCA), metrics "
        "present, mid-run update invalidated workers and rebuilt segments"
    )


def check_fleet_obs(index_dir: str) -> None:
    """Fleet-exact observability over a 2-process pool: /metrics counts
    every served query exactly, exported traces carry worker spans, the
    fleet rollup sees both workers, and /debug/pprof serves stacks."""
    import multiprocessing
    import time

    from repro.obs.fleet import FleetCollector
    from repro.obs.profiling import SamplingProfiler
    from repro.xksearch.parallel import WorkerPool

    if "fork" not in multiprocessing.get_all_start_methods():
        print("fleet obs SKIPPED: no fork start method")
        return

    queries = ("John+Ben", "class+john", "ben+sue", "databases+search")
    trace_path = os.path.join(index_dir, "..", "fleet_traces.jsonl")
    exporter = TraceExporter(JsonlFileSink(trace_path), flush_interval=0.05)

    def queries_total(body):
        total = 0.0
        for line in body.splitlines():
            if line.startswith("xks_queries_total"):
                total += float(line.split(" # ")[0].rsplit(" ", 1)[1])
        return total

    # Pool forks before the server thread starts; the parent engine runs
    # cache-less so every request reaches the pool dispatch path.
    pool = WorkerPool(index_dir, workers=2)
    fleet = FleetCollector(pool, heartbeat_s=60.0)  # polled manually below
    profiler = SamplingProfiler(hz=100.0).start()
    served_ids = []
    try:
        with XKSearch.open(index_dir) as system:
            system.engine.attach_pool(pool)
            server = make_server(
                system,
                port=0,
                metrics=ServerMetrics(),
                tracer=Tracer(sample_rate=1.0),
                exporter=exporter,
                fleet=fleet,
                profiler=profiler,
            )
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            host, port = server.server_address
            base = f"http://{host}:{port}"
            try:
                with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
                    before = queries_total(resp.read().decode("utf-8"))
                for i, query in enumerate(queries):
                    request = urllib.request.Request(
                        f"{base}/api/search?q={query}",
                        headers={"X-Trace-Id": f"fee1dead{i:08x}"},
                    )
                    with urllib.request.urlopen(request, timeout=10) as resp:
                        json.loads(resp.read())
                        served_ids.append(resp.headers["X-Trace-Id"])
                assert fleet.poll() == 2, "not every worker answered the heartbeat"
                with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
                    metrics_body = resp.read().decode("utf-8")
                # The continuous profiler needs a few ticks to land stacks.
                deadline = time.monotonic() + 10.0
                pprof = {}
                while time.monotonic() < deadline:
                    with urllib.request.urlopen(
                        f"{base}/debug/pprof", timeout=10
                    ) as resp:
                        pprof = json.loads(resp.read())
                    if pprof.get("stacks"):
                        break
                    time.sleep(0.05)
                with urllib.request.urlopen(f"{base}/debug/heap", timeout=10) as resp:
                    heap = json.loads(resp.read())
            finally:
                server.shutdown()
                server.server_close()  # closes exporter, fleet and profiler
                thread.join(timeout=5)
    finally:
        pool.close()

    # Fleet-exact counting: the parent registry grew by exactly the
    # number of served queries — worker-side executions included.
    after = queries_total(metrics_body)
    assert after - before == len(queries), (
        f"xks_queries_total grew by {after - before}, served {len(queries)}"
    )
    for worker in ("0", "1"):
        assert f'xks_worker_up{{worker="{worker}"}} 1' in metrics_body, (
            f"fleet rollup does not report worker {worker} up"
        )
    # Every pooled trace carries a worker-attributed span subtree.
    with open(trace_path, encoding="utf-8") as fh:
        exported = {r["trace_id"]: r for r in map(json.loads, fh)}
    assert sorted(exported) == sorted(served_ids), (
        f"exported {sorted(exported)} != served {sorted(served_ids)}"
    )
    for trace_id in served_ids:
        record = exported[trace_id]
        assert record["attrs"].get("pooled") is True, trace_id
        workers = [c for c in record["children"] if c["name"] == "worker"]
        assert workers, f"trace {trace_id} has no worker span"
        assert all(span["attrs"]["pid"] > 0 for span in workers)
    assert pprof.get("enabled") and pprof.get("stacks"), (
        f"/debug/pprof returned no stacks: {pprof.get('totals')}"
    )
    assert heap["parent"]["tracing"] is False, "heap tracking should be off"
    print(
        f"fleet obs OK: {len(queries)} pooled queries counted exactly on "
        f"/metrics, {len(served_ids)} traces with worker spans, 2 workers "
        f"up, {pprof['totals']['samples']} profiler samples"
    )


def check_overhead_guard(report_path: str, max_overhead_pct: float) -> None:
    """Fail when the committed full-run bench shows excess total overhead."""
    if not os.path.exists(report_path):
        print(f"overhead guard SKIPPED: no {report_path}")
        return
    with open(report_path, encoding="utf-8") as fh:
        report = json.load(fh)
    instr = report.get("instrumentation", {})
    if report.get("workload", {}).get("smoke"):
        print(f"overhead guard SKIPPED: {report_path} is a smoke run (too noisy)")
        return
    overhead = instr.get("total_overhead_pct", instr.get("overhead_pct"))
    assert overhead is not None, f"no overhead figures in {report_path}"
    assert overhead <= max_overhead_pct, (
        f"instrumentation overhead {overhead:+.2f}% exceeds "
        f"{max_overhead_pct:.1f}% budget ({report_path})"
    )
    print(f"overhead guard OK: {overhead:+.2f}% <= {max_overhead_pct:.1f}%")


def check_cli_explain(index_dir: str) -> None:
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = cli_main(["search", index_dir, "John Ben", "--explain"])
    assert code == 0, f"explain CLI exited {code}"
    lines = stdout.getvalue().splitlines()
    assert lines and "SLCA answer(s)" in lines[0], lines[:1]
    profile = json.loads("\n".join(lines[1:]))
    assert profile["algorithm"] in ("il", "scan", "stack")
    assert [phase["name"] for phase in profile["phases"]]
    assert profile["counters"]["lca_ops"] >= 0
    print(
        f"--explain OK: {lines[0]} "
        f"(phases: {[phase['name'] for phase in profile['phases']]})"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-out",
        default=None,
        help="keep the exported JSONL trace stream at this path (CI artifact)",
    )
    parser.add_argument(
        "--bench-report",
        default="BENCH_qps.json",
        help="full-run bench report for the overhead guard (default BENCH_qps.json)",
    )
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=3.0,
        help="fail when total instrumentation overhead exceeds this (%% QPS)",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="xk_obs_smoke_") as tmp:
        index_dir = f"{tmp}/idx"
        XKSearch.build(school_tree(), index_dir).close()
        check_metrics_endpoint(index_dir)
        check_export_pipeline(index_dir, trace_out=args.trace_out)
        check_cli_explain(index_dir)
        check_parallel_smoke(index_dir)
        check_slo_alerting(index_dir)
        check_fleet_obs(index_dir)
        # Last: this phase mutates the index (mid-run update).
        check_segments(index_dir)
    check_overhead_guard(args.bench_report, args.max_overhead_pct)
    print("observability smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
