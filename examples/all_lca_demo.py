#!/usr/bin/env python3
"""SLCA vs all-LCA semantics (Section 5 of the paper).

The SLCA result is the set of *smallest* trees containing every keyword;
the all-LCA result additionally returns every ancestor that is the exact
meeting point of some witness combination.  Algorithm 3 computes the
latter by checking each ancestor of each SLCA with at most two extra
indexed lookups per keyword — without ever scanning the big keyword lists.

This demo contrasts the two result sets on the School example and on a
synthetic corpus, and shows the lookup counts staying small.

Run:  python examples/all_lca_demo.py
"""

from repro import XKSearch
from repro.core import OpCounters, find_all_lcas, indexed_lookup_eager
from repro.core.sources import SortedListSource
from repro.xmltree.generate import dblp_like_tree, plant_keywords, school_tree


def show_school() -> None:
    school = school_tree()
    system = XKSearch.from_tree(school)
    query = "John Ben"
    slcas = [r for r in system.search(query)]
    lcas = [r for r in system.search_all_lcas(query)]
    print(f"School.xml, query {query!r}:")
    print(f"  SLCAs   : {[str(r.id) for r in slcas]}")
    print(f"  all LCAs: {[str(r.id) for r in lcas]}")
    extra = {r.dewey for r in lcas} - {r.dewey for r in slcas}
    print(f"  extra LCA nodes: {sorted(extra)} — the School root is the LCA")
    print("  of cross-class combinations (John of CS2A with Ben of CS3A),")
    print("  but is not smallest, so SLCA semantics exclude it.\n")


def show_costs() -> None:
    tree = dblp_like_tree(seed=7, venues=6, years_per_venue=5, papers_per_year=30)
    plant_keywords(tree, {"needle": 4, "haystack": 600}, seed=1)
    lists = tree.keyword_lists()
    ordered = sorted([lists["needle"], lists["haystack"]], key=len)

    slca_counters = OpCounters()
    slca_sources = [SortedListSource(lst, slca_counters) for lst in ordered]
    slcas = list(indexed_lookup_eager(slca_sources, slca_counters))

    lca_counters = OpCounters()
    lca_sources = [SortedListSource(lst, lca_counters) for lst in ordered]
    lcas = list(find_all_lcas(lca_sources, lca_counters))

    print("synthetic corpus, query 'needle haystack' (|S1|=4, |S2|=600):")
    print(f"  SLCAs: {len(slcas)} nodes, {slca_counters.match_ops} match ops")
    print(f"  LCAs : {len(lcas)} nodes, {lca_counters.match_ops} match ops")
    print(
        f"  Algorithm 3 paid {lca_counters.match_ops - slca_counters.match_ops} "
        "extra lookups for the ancestor checks —"
    )
    print("  far less than scanning the 600-node list.")
    assert set(slcas) <= set(lcas)


def main() -> None:
    show_school()
    show_costs()


if __name__ == "__main__":
    main()
