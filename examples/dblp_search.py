#!/usr/bin/env python3
"""Keyword search over a DBLP-like corpus — the paper's demo scenario.

The XKSearch demo ran against 83 MB of DBLP grouped by venue and year.
This example generates a synthetic corpus with the same shape, plants a
rare keyword (an author who published little) and a frequent one (a common
title word), and shows how the query engine's frequency-based planning
picks Indexed Lookup Eager for the skewed query and Scan Eager for the
balanced one — then verifies all three algorithms return identical
answers.

Run:  python examples/dblp_search.py
"""

import tempfile
import time
from pathlib import Path

from repro import XKSearch
from repro.xksearch.engine import ExecutionStats
from repro.xmltree.generate import dblp_like_tree, plant_keywords


def run_query(system: XKSearch, query: str) -> None:
    plan = system.explain(query)
    print(f"\nquery: {query!r}")
    print(
        f"  plan: keywords={plan.keywords} frequencies={plan.frequencies} "
        f"skew={plan.skew:.1f} -> algorithm={plan.algorithm}"
    )
    per_algorithm = {}
    for algorithm in ("il", "scan", "stack"):
        stats = ExecutionStats()
        started = time.perf_counter()
        answers = list(system.search_ids(query, algorithm=algorithm, stats=stats))
        elapsed_ms = (time.perf_counter() - started) * 1000
        per_algorithm[algorithm] = answers
        counters = stats.counters
        print(
            f"  {algorithm:5s}: {len(answers):3d} answers in {elapsed_ms:7.2f} ms "
            f"(match ops={counters.match_ops}, cursor advances="
            f"{counters.cursor_advances}, merged={counters.nodes_merged})"
        )
    assert (
        per_algorithm["il"] == per_algorithm["scan"] == per_algorithm["stack"]
    ), "algorithms disagree!"
    for result in system.search(query, limit=2):
        print(f"  sample answer {result.id} ({result.path}):")
        for line in (result.snippet or "").rstrip().splitlines()[:6]:
            print(f"    {line}")


def main() -> None:
    # Reproduce the paper's data preparation: start from a *flat* DBLP-style
    # file, filter the website-only fields, and group by venue then year.
    print("generating flat DBLP-style input (3000 records) ...")
    from repro.xmltree.dblp import flat_dblp_tree, group_by_venue_year

    flat = flat_dblp_tree(seed=2005, records=3000)
    print(f"flat file: {len(flat)} nodes, depth {flat.depth}")
    tree = group_by_venue_year(flat)
    print(
        f"grouped (venue -> year -> record): {len(tree)} nodes, depth {tree.depth}"
    )
    # Plant a rare and a frequent keyword with exact frequencies, the way
    # the paper's experiments control list sizes.
    plant_keywords(tree, {"xanadu": 5, "databases": 900}, seed=42)

    with tempfile.TemporaryDirectory(prefix="xksearch-dblp-") as workdir:
        index_dir = Path(workdir) / "dblp.index"
        started = time.perf_counter()
        with XKSearch.build(tree, index_dir) as system:
            print(f"index built in {time.perf_counter() - started:.2f}s")

            # Skewed query: 5-node list vs 900-node list -> auto picks IL.
            run_query(system, "xanadu databases")
            # Balanced query: two common title words -> auto picks Scan.
            run_query(system, "query index")
            # Author + venue-name search.
            run_query(system, "smith sigmod")


if __name__ == "__main__":
    main()
