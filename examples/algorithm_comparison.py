#!/usr/bin/env python3
"""A miniature of the paper's Figure 8: how the three algorithms scale.

Fixes the small keyword list at 10 postings and sweeps the large list from
10 to 100 000 (the paper's frequency ladder), measuring all three
algorithms on hot cache plus the cold-cache page-read counts.  Watch
Indexed Lookup Eager stay flat while Scan Eager and Stack grow linearly —
the paper's headline result.

Run:  python examples/algorithm_comparison.py
"""

from repro.workloads import (
    ExperimentRunner,
    PlantedCorpus,
    fig8_points,
    io_table,
    needed_frequencies,
    sweep_table,
)


def main() -> None:
    points = fig8_points(small_frequency=10, variants=1)
    corpus = PlantedCorpus.for_frequencies(needed_frequencies(points), seed=42)
    print(
        f"planted corpus: {len(corpus.lists)} keywords, "
        f"{corpus.total_postings} postings over {corpus.shape.slots} slots"
    )
    with ExperimentRunner(corpus) as runner:
        algorithms = ("il", "scan", "stack")
        print("\nrunning hot-cache sweep (paper Figure 8a) ...")
        hot = runner.run_points(points, algorithms, mode="disk-hot")
        print()
        print(sweep_table("hot cache, |S1|=10, k=2", "large |S2|", hot))

        print("\nrunning cold-cache sweep (paper Figure 11a) ...")
        cold = runner.run_points(points, algorithms, mode="disk-cold")
        print()
        print(
            sweep_table(
                "cold cache (CPU + modeled I/O), |S1|=10, k=2", "large |S2|", cold
            )
        )
        print()
        print(io_table("cold cache page accesses", "large |S2|", cold))

    top = max(hot)
    il, stack = hot[top]["il"].total_ms, hot[top]["stack"].total_ms
    print(
        f"\nAt |S2|={top}, Indexed Lookup Eager is {stack / il:.0f}x faster than "
        "the Stack baseline (hot cache) —"
    )
    print("the paper's 'orders of magnitude' claim for skewed frequencies.")


if __name__ == "__main__":
    main()
