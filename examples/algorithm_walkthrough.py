#!/usr/bin/env python3
"""The Indexed Lookup Eager algorithm, narrated step by step.

Replays Section 3.1's walkthrough on the School.xml example: for each node
of the smallest keyword list, the left/right matches, the two LCAs, the
``deeper`` choice, and which Lemma decided the candidate's fate — ending
in the paper's three answers.

Run:  python examples/algorithm_walkthrough.py
"""

from repro.core.trace import format_trace, traced_slca
from repro.xmltree.generate import school_tree


def main() -> None:
    school = school_tree()
    lists = school.keyword_lists()
    print("School.xml keyword lists:")
    print(f"  S1 = john: {[ '.'.join(map(str, d)) for d in lists['john'] ]}")
    print(f"  S2 = ben : {[ '.'.join(map(str, d)) for d in lists['ben'] ]}")
    print()
    print("Indexed Lookup Eager, step by step:")
    print()
    trace = traced_slca([lists["john"], lists["ben"]])
    print(format_trace(trace))
    print()
    print("Each S1 node cost two match lookups into S2 (Property 1); the")
    print("on-the-fly filtering (Lemmas 1-2) emitted answers before S1 was")
    print("exhausted — the 'eagerness' that lets XKSearch pipeline results.")


if __name__ == "__main__":
    main()
