#!/usr/bin/env python3
"""Quickstart: the paper's Section 1 example, end to end.

Builds a disk index over School.xml (Figure 1 of the paper), runs the
keyword query "John, Ben", and prints the three smallest answers with
their subtree snippets — the class where Ben is John's TA, the class where
Ben is John's student, and the project both belong to.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import XKSearch
from repro.xmltree.generate import school_xml


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="xksearch-quickstart-") as workdir:
        document = Path(workdir) / "school.xml"
        document.write_text(school_xml(), encoding="utf-8")
        print(f"Document ({document.name}):")
        print(school_xml())

        # Build the index (level table + inverted keyword lists in B+trees
        # + frequency table), then search.
        index_dir = Path(workdir) / "school.index"
        with XKSearch.build(document, index_dir) as system:
            query = "John Ben"
            plan = system.explain(query)
            print(f"query: {query!r}")
            print(
                f"plan:  keywords={plan.keywords} (rarest first), "
                f"frequencies={plan.frequencies}, algorithm={plan.algorithm}"
            )
            print()
            results = system.search(query)
            print(f"{len(results)} smallest answers (SLCAs):")
            for result in results:
                print(f"\n=== node {result.id}  ({result.path})")
                print(result.snippet.rstrip())
                witnesses = {
                    kw: [".".join(map(str, w)) for w in nodes]
                    for kw, nodes in result.witnesses.items()
                }
                print(f"    matched at: {witnesses}")

        # The School root also contains both names, but it is NOT smallest —
        # that is the whole point of SLCA semantics.
        assert all(result.dewey != (0,) for result in results)
        print("\nNote: the School root contains both names too, but is not")
        print("returned — only the *smallest* subtrees are answers.")


if __name__ == "__main__":
    main()
