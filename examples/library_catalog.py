#!/usr/bin/env python3
"""A library catalog: collections, tag-qualified atoms, updates, ranking.

Shows the extension surface built on top of the paper's core:

* an :class:`XMLCollection` of three catalog documents searched as one;
* ``tag:word`` query atoms (``author:smith`` vs bare ``smith``);
* incremental index maintenance with :class:`IndexUpdater`;
* specificity ranking of answers;
* a structural cross-check with the XPath-lite evaluator.

Run:  python examples/library_catalog.py
"""

import tempfile
from pathlib import Path

from repro.index import DiskKeywordIndex, IndexUpdater, build_index
from repro.xksearch import XKSearch, XMLCollection
from repro.xmltree import parse, select
from repro.xmltree.tree import renumber_subtree

FICTION = """
<catalog>
  <book><title>the deep sea</title><author>smith</author><year>1998</year></book>
  <book><title>smith of wootton major</title><author>tolkien</author><year>1967</year></book>
  <book><title>river deep</title><author>jones</author><year>2003</year></book>
</catalog>
"""

SCIENCE = """
<catalog>
  <book><title>deep learning</title><author>goodfellow</author><year>2016</year></book>
  <book><title>database systems</title><author>smith</author><year>2005</year></book>
</catalog>
"""

HISTORY = """
<catalog>
  <book><title>the deep past</title><author>renfrew</author><year>1991</year></book>
</catalog>
"""


def collection_demo() -> None:
    print("=== multi-document collection ===")
    collection = XMLCollection(
        {
            "fiction.xml": parse(FICTION),
            "science.xml": parse(SCIENCE),
            "history.xml": parse(HISTORY),
        }
    )
    for result in collection.search("deep"):
        print(f"  {result.document:12s} {result.result}")
    print("  documents containing 'smith deep':",
          collection.documents_matching("smith deep"))
    print()


def tag_atom_demo() -> None:
    print("=== tag-qualified atoms ===")
    system = XKSearch.from_tree(parse(FICTION))
    plain = system.search("smith deep")
    qualified = system.search("title:smith deep")
    print(f"  'smith deep'       -> {[str(r.id) + ' (' + r.path + ')' for r in plain]}")
    print(f"  'title:smith deep' -> {[str(r.id) + ' (' + r.path + ')' for r in qualified]}")
    print("  Unqualified, author Smith's book 'the deep sea' is the tight")
    print("  answer; restricted to titles, the only smith is Tolkien's")
    print("  'Smith of Wootton Major', which shares no book with 'deep',")
    print("  so the answer escalates to the whole catalog.")
    assert [r.dewey for r in plain] == [(0, 0)]
    assert [r.dewey for r in qualified] == [(0,)]
    # Structural cross-check with the XPath-lite evaluator: the qualified
    # atom's postings are exactly the title texts containing 'smith'.
    title_smiths = [
        n.parent.dewey
        for n in select(system.tree, "/catalog/book/title/text()")
        if "smith" in (n.text or "")
    ]
    assert len(title_smiths) == 1
    print()


def ranking_demo() -> None:
    print("=== specificity ranking ===")
    system = XKSearch.from_tree(parse(FICTION))
    for ranked in system.search_ranked("deep smith"):
        print(f"  {ranked}")
    print()


def update_demo() -> None:
    print("=== incremental index maintenance ===")
    with tempfile.TemporaryDirectory() as workdir:
        index_dir = Path(workdir) / "catalog.index"
        tree = parse(SCIENCE)
        build_index(tree, index_dir)
        with DiskKeywordIndex(index_dir) as index:
            print(f"  before: frequency('smith') = {index.frequency('smith')}")

        acquisition = parse(
            "<book><title>data structures</title><author>smith</author></book>"
        )
        renumber_subtree(acquisition.root, (0, 2))  # the catalog's next child
        with IndexUpdater(index_dir) as updater:
            added = updater.add_subtree(acquisition.root)
        print(f"  added {added} postings for the new acquisition")

        with DiskKeywordIndex(index_dir) as index:
            print(f"  after:  frequency('smith') = {index.frequency('smith')}")
            from repro.core import eager_slca

            answers = list(eager_slca(index.sources_for(("smith", "data"), "indexed")))
            print(f"  'smith data' now answers at {answers}")


def main() -> None:
    collection_demo()
    tag_atom_demo()
    ranking_demo()
    update_demo()


if __name__ == "__main__":
    main()
