"""Unit tests for tag-qualified query atoms (``tag:word``)."""

import pytest

from repro.errors import QueryError
from repro.index.builder import build_index
from repro.index.inverted import DiskKeywordIndex
from repro.index.memory import MemoryKeywordIndex
from repro.xksearch.engine import QueryAtom, parse_query
from repro.xksearch.system import XKSearch
from repro.xmltree.parser import parse

DOC = """
<library>
  <book>
    <title>database systems</title>
    <author>smith</author>
  </book>
  <book>
    <title>smith biography</title>
    <author>jones</author>
  </book>
  <review>
    <title>review of database systems</title>
    <author>smith</author>
  </review>
</library>
"""


@pytest.fixture
def library():
    return parse(DOC)


class TestParseQuery:
    def test_plain_words(self):
        assert parse_query("Smith Database") == [
            QueryAtom("smith"),
            QueryAtom("database"),
        ]

    def test_qualified_atom(self):
        assert parse_query("title:Smith") == [QueryAtom("smith", "title")]

    def test_mixed(self):
        assert parse_query("author:smith database") == [
            QueryAtom("smith", "author"),
            QueryAtom("database"),
        ]

    def test_multiword_body_shares_tag(self):
        assert parse_query("title:database systems") == [
            QueryAtom("database", "title"),
            QueryAtom("systems"),
        ]

    def test_duplicates_collapse_per_atom(self):
        atoms = parse_query("smith title:smith smith")
        assert atoms == [QueryAtom("smith"), QueryAtom("smith", "title")]

    def test_display(self):
        assert QueryAtom("x", "t").display == "t:x"
        assert QueryAtom("x").display == "x"

    def test_empty_raises(self):
        with pytest.raises(QueryError):
            parse_query("::: ,")

    def test_sequence_input(self):
        assert parse_query(["title:a", "b"]) == [
            QueryAtom("a", "title"),
            QueryAtom("b"),
        ]


class TestTaggedPostings:
    def test_keyword_postings_context_tags(self, library):
        postings = library.keyword_postings()
        contexts = {tag for _, tag in postings["smith"]}
        assert contexts == {"title", "author"}

    def test_element_tag_occurrence_context_is_itself(self, library):
        postings = library.keyword_postings()
        assert all(tag == "book" for _, tag in postings["book"])

    def test_memory_index_tag_filter(self, library):
        index = MemoryKeywordIndex.from_tree(library)
        all_smith = index.keyword_list("smith")
        author_smith = index.keyword_list("smith", tag="author")
        title_smith = index.keyword_list("smith", tag="title")
        assert len(all_smith) == 3
        assert len(author_smith) == 2
        assert len(title_smith) == 1
        assert sorted(author_smith + title_smith) == all_smith

    def test_memory_index_untagged_lists_filter_empty(self):
        index = MemoryKeywordIndex({"a": [(0, 1)]})
        assert index.keyword_list("a", tag="title") == []

    def test_disk_index_tag_filter_matches_memory(self, library, tmp_path):
        build_index(library, tmp_path / "idx")
        memory = MemoryKeywordIndex.from_tree(library)
        with DiskKeywordIndex(tmp_path / "idx") as disk:
            for keyword in ("smith", "database", "title"):
                for tag in (None, "title", "author", "book"):
                    assert disk.keyword_list(keyword, tag) == memory.keyword_list(
                        keyword, tag
                    ), (keyword, tag)

    def test_disk_scan_tagged(self, library, tmp_path):
        build_index(library, tmp_path / "idx")
        with DiskKeywordIndex(tmp_path / "idx") as disk:
            pairs = list(disk.scan_tagged("smith"))
            assert [t for _, t in pairs] == ["author", "title", "author"]


class TestQualifiedSearch:
    def test_qualifier_narrows_answers(self, library):
        system = XKSearch.from_tree(library)
        plain = system.search("smith database")
        qualified = system.search("author:smith database")
        # plain: book1 (title+author), book2? smith in title, database not
        # under book2... review matches both too.
        assert {r.dewey for r in qualified} <= {r.dewey for r in plain} | {(0,)}
        # title:smith database — smith-as-title only in book2, database not
        # under book2, so they only meet at the root.
        root_only = system.search("title:smith title:database")
        assert [r.dewey for r in root_only] == [(0,)]

    def test_qualified_and_plain_agree_when_tag_unrestrictive(self, library):
        system = XKSearch.from_tree(library)
        # every "jones" is an author, so the qualifier changes nothing
        plain = system.search("jones smith")
        qualified = system.search("author:jones smith")
        assert [r.dewey for r in plain] == [r.dewey for r in qualified]

    def test_unknown_tag_empty(self, library):
        system = XKSearch.from_tree(library)
        assert system.search("publisher:smith database") == []

    def test_all_algorithms_agree(self, library):
        system = XKSearch.from_tree(library)
        baseline = [r.dewey for r in system.search("author:smith title:database", "il")]
        for algorithm in ("scan", "stack"):
            got = [r.dewey for r in system.search("author:smith title:database", algorithm)]
            assert got == baseline

    def test_witnesses_respect_tag(self, library):
        system = XKSearch.from_tree(library)
        result = system.search("author:smith title:database")[0]
        smith_witnesses = result.witnesses["author:smith"]
        postings = dict(library.keyword_postings())["smith"]
        author_deweys = {d for d, t in postings if t == "author"}
        assert set(smith_witnesses) <= author_deweys

    def test_plan_orders_by_filtered_frequency(self, library):
        system = XKSearch.from_tree(library)
        plan = system.explain("smith title:smith")
        # title:smith has 1 posting, bare smith has 3 — qualified leads.
        assert plan.keywords[0] == "title:smith"
        assert plan.frequencies == [1, 3]

    def test_qualified_all_lca(self, library):
        system = XKSearch.from_tree(library)
        lcas = system.search_all_lcas("author:smith title:database")
        slcas = system.search("author:smith title:database")
        assert {r.dewey for r in slcas} <= {r.dewey for r in lcas}

    def test_qualified_elca(self, library):
        system = XKSearch.from_tree(library)
        elcas = system.search_elcas("author:smith title:database")
        assert elcas  # book1 and review qualify

    def test_disk_roundtrip(self, library, tmp_path):
        with XKSearch.build(library, tmp_path / "idx") as built:
            want = [r.dewey for r in built.search("author:smith title:database")]
        with XKSearch.open(tmp_path / "idx") as reopened:
            got = [r.dewey for r in reopened.search("author:smith title:database")]
        assert got == want
