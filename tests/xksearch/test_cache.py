"""Serving-layer cache: correctness, invalidation, and concurrency."""

import json
import os
import threading

import pytest

from repro.index.inverted import DiskKeywordIndex
from repro.index.memory import MemoryKeywordIndex
from repro.index.updates import IndexUpdater
from repro.xksearch.cache import (
    LRUCache,
    QueryCache,
    bump_generation,
    current_generation,
    normalize_key,
    seed_generation,
)
from repro.xksearch.engine import ExecutionStats, QueryEngine
from repro.xksearch.system import XKSearch

ALGORITHMS = ("il", "scan", "stack", "auto")


@pytest.fixture
def memory_index(school):
    return MemoryKeywordIndex.from_tree(school)


class TestLRUCache:
    def test_capacity_bound_and_evictions(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("a") == (False, None)
        assert cache.get("c") == (True, 3)

    def test_get_moves_to_front(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # "b" is now LRU
        assert cache.get("a") == (True, 1)
        assert cache.get("b") == (False, None)

    def test_hit_miss_stats(self):
        cache = LRUCache(capacity=4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("absent")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_stamped_entries_invalidate_on_generation_change(self):
        cache = LRUCache(capacity=4)
        cache.put_stamped("k", 1, "old")
        assert cache.get_stamped("k", 1) == (True, "old")
        hit, value = cache.get_stamped("k", 2)  # generation moved on
        assert not hit
        assert cache.stats.invalidations == 1
        assert len(cache) == 0  # the stale entry is gone

    def test_none_values_are_cacheable(self):
        cache = LRUCache(capacity=2)
        cache.put("k", None)
        assert cache.get("k") == (True, None)


class TestGenerationRegistry:
    def test_bump_and_current(self, tmp_path):
        directory = tmp_path / "idx"
        base = current_generation(directory)
        assert bump_generation(directory) == base + 1
        assert current_generation(directory) == base + 1

    def test_seed_is_max_merge(self, tmp_path):
        directory = tmp_path / "idx"
        bump_generation(directory)
        bumped = current_generation(directory)
        assert seed_generation(directory, bumped - 1) == bumped  # no rollback
        assert seed_generation(directory, bumped + 5) == bumped + 5


class TestNormalizeKey:
    def test_order_insensitive(self):
        assert normalize_key(["john", "ben"], "auto") == normalize_key(
            ["ben", "john"], "auto"
        )

    def test_algorithm_and_semantics_distinguish(self):
        base = normalize_key(["john"], "auto")
        assert base != normalize_key(["john"], "il")
        assert base != normalize_key(["john"], "auto", semantics="elca")


class TestCachedResultsMatchUncached:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_identical_results_cache_on_off(self, memory_index, algorithm):
        plain = QueryEngine(memory_index)
        cached = QueryEngine(memory_index, cache=QueryCache())
        for query in ("John Ben", "ben john", "class smith", "john zebra"):
            expected = list(plain.execute(query, algorithm))
            assert list(cached.execute(query, algorithm)) == expected  # cold
            assert list(cached.execute(query, algorithm)) == expected  # hot

    def test_hit_serves_from_cache(self, memory_index):
        engine = QueryEngine(memory_index, cache=QueryCache())
        first = ExecutionStats()
        list(engine.execute("John Ben", stats=first))
        assert first.cache_misses == 1 and not first.result_from_cache
        second = ExecutionStats()
        list(engine.execute("ben john", stats=second))  # different order, same key
        assert second.cache_hits == 1 and second.result_from_cache
        assert second.cache_hit
        # The hit is stamped with the original execution's counters, so a
        # cached answer is distinguishable from a genuinely free query.
        assert second.counters.as_dict() == first.counters.as_dict()
        assert second.counters.lca_ops > 0

    def test_all_lca_and_elca_cached_separately(self, memory_index):
        plain = QueryEngine(memory_index)
        engine = QueryEngine(memory_index, cache=QueryCache())
        slca = list(engine.execute("John Ben"))
        lca = list(engine.execute_all_lca("John Ben"))
        elca = list(engine.execute_elca("John Ben"))
        assert lca == list(plain.execute_all_lca("John Ben"))
        assert elca == list(plain.execute_elca("John Ben"))
        # Repeats hit, and the three semantics never collide.
        stats = ExecutionStats()
        assert list(engine.execute_all_lca("John Ben", stats=stats)) == lca
        assert stats.result_from_cache
        assert list(engine.execute("John Ben")) == slca

    def test_plan_cache_hits(self, memory_index):
        cache = QueryCache()
        engine = QueryEngine(memory_index, cache=cache)
        first = engine.plan("class john")
        again = engine.plan("john class")
        assert again is first  # memoized object, order-insensitive key
        assert cache.plans.stats.hits == 1


class TestExecuteMany:
    def test_results_align_with_inputs(self, memory_index):
        engine = QueryEngine(memory_index)
        queries = ["John Ben", "class", "ben john", "John Ben"]
        batch = engine.execute_many(queries)
        assert len(batch) == len(queries)
        for query, result in zip(queries, batch):
            assert result == list(QueryEngine(memory_index).execute(query))

    def test_batch_deduplicates_shared_atom_sets(self, memory_index):
        engine = QueryEngine(memory_index, cache=QueryCache())
        stats = ExecutionStats()
        batch = engine.execute_many(
            ["John Ben", "ben john", "JOHN BEN", "class"], stats=stats
        )
        # Three spellings of one atom set -> one miss; "class" -> another.
        assert stats.cache_misses == 2 and stats.cache_hits == 0
        assert batch[0] == batch[1] == batch[2]

    def test_batch_serves_earlier_results_from_cache(self, memory_index):
        engine = QueryEngine(memory_index, cache=QueryCache())
        engine.execute_many(["John Ben"])
        stats = ExecutionStats()
        engine.execute_many(["ben john", "class"], stats=stats)
        assert stats.cache_hits == 1 and stats.cache_misses == 1

    def test_batch_without_cache_still_dedupes(self, memory_index):
        engine = QueryEngine(memory_index)
        stats = ExecutionStats()
        batch = engine.execute_many(["John Ben", "ben john"], stats=stats)
        assert batch[0] == batch[1]
        # One execution's worth of work, not two.
        solo = ExecutionStats()
        list(QueryEngine(memory_index).execute("John Ben", stats=solo))
        assert stats.counters.lca_ops == solo.counters.lca_ops


class TestInvalidationAfterUpdates:
    def test_update_stales_cached_results(self, school, tmp_path):
        index_dir = tmp_path / "idx"
        system = XKSearch.build(school, index_dir)
        system.close()

        cache = QueryCache()
        with XKSearch.open(index_dir, cache=cache) as system:
            engine = system.engine
            # "zebra" does not occur: the (empty) answer gets cached.
            assert list(engine.execute("john zebra")) == []
            assert list(engine.execute("john zebra")) == []
            assert cache.results.stats.hits == 1

            john_node = system.index.keyword_list("john")[0]
            with IndexUpdater(index_dir) as updater:
                updater.add_postings({"zebra": [(john_node, "name")]})

            # The mutation bumped the generation: the cached empty answer
            # is stale, the live handle reloads, and the query now matches.
            assert list(engine.execute("john zebra")) == [john_node]
            assert cache.results.stats.invalidations >= 1

    def test_generation_persisted_in_manifest(self, school, tmp_path):
        index_dir = tmp_path / "idx"
        XKSearch.build(school, index_dir).close()
        before = current_generation(index_dir)
        with IndexUpdater(index_dir) as updater:
            node = (0, 0, 0, 0)
            updater.add_postings({"freshword": [(node, "class")]})
        assert current_generation(index_dir) == before + 1
        with open(index_dir / "manifest.json", encoding="utf-8") as fh:
            manifest = json.load(fh)
        assert manifest["generation"] == before + 1

    def test_cross_process_update_detected(self, school, tmp_path):
        """An updater in a *different* process only persists its generation
        bump to the manifest; a live handle must still notice (it stats the
        manifest), stale its cache and serve the new contents."""
        import subprocess
        import sys

        index_dir = tmp_path / "idx"
        XKSearch.build(school, index_dir).close()
        cache = QueryCache()
        with XKSearch.open(index_dir, cache=cache, load_document=False) as system:
            engine = system.engine
            assert list(engine.execute("john zebra")) == []  # cached below
            john_node = system.index.keyword_list("john")[0]

            script = (
                "import sys\n"
                "from repro.index.updates import IndexUpdater\n"
                f"with IndexUpdater({str(index_dir)!r}) as updater:\n"
                f"    updater.add_postings({{'zebra': [({john_node!r}, 'name')]}})\n"
            )
            import repro

            src_dir = os.path.dirname(os.path.dirname(repro.__file__))
            subprocess.run(
                [sys.executable, "-c", script],
                check=True,
                env={**os.environ, "PYTHONPATH": src_dir},
            )

            assert list(engine.execute("john zebra")) == [john_node]

    def test_noop_update_does_not_invalidate(self, school, tmp_path):
        index_dir = tmp_path / "idx"
        XKSearch.build(school, index_dir).close()
        before = current_generation(index_dir)
        with IndexUpdater(index_dir) as updater:
            updater.remove_postings({"zebra": [(0, 0, 0, 0)]})  # nothing there
        assert current_generation(index_dir) == before


class TestConcurrentReads:
    """N threads x M queries against one DiskKeywordIndex match the
    single-threaded baseline byte for byte."""

    QUERIES = [
        "xkrare xkbig",
        "xkmid xkbig",
        "xkrare xkmid",
        "xkrare xkmid xkbig",
        "xkbig",
    ]
    ALGORITHMS = ("il", "scan", "stack")

    @pytest.mark.parametrize("with_cache", (False, True), ids=("plain", "cached"))
    def test_threaded_results_match_baseline(self, planted_dblp, tmp_path, with_cache):
        index_dir = tmp_path / "idx"
        XKSearch.build(planted_dblp, index_dir, keep_document=False).close()
        with DiskKeywordIndex(index_dir) as index:
            cache = QueryCache() if with_cache else None
            engine = QueryEngine(index, cache=cache)
            workload = [
                (query, algorithm)
                for query in self.QUERIES
                for algorithm in self.ALGORITHMS
            ] * 3

            baseline = json.dumps(
                [list(engine.execute(q, a)) for q, a in workload]
            ).encode("utf-8")

            outputs = {}
            errors = []

            def worker(thread_id: int):
                try:
                    mine = [list(engine.execute(q, a)) for q, a in workload]
                    outputs[thread_id] = json.dumps(mine).encode("utf-8")
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert len(outputs) == 8
            for thread_id, payload in outputs.items():
                assert payload == baseline, f"thread {thread_id} diverged"
