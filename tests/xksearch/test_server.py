"""Integration tests for the demo web server (real HTTP over localhost)."""

import threading
import urllib.request
import urllib.error

import pytest

from repro.xksearch.server import make_server
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import school_tree


@pytest.fixture(scope="module")
def server_url():
    system = XKSearch.from_tree(school_tree())
    server = make_server(system, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


class TestEndpoints:
    def test_healthz(self, server_url):
        status, body = fetch(f"{server_url}/healthz")
        assert status == 200
        assert body == "ok"

    def test_landing_page(self, server_url):
        status, body = fetch(f"{server_url}/")
        assert status == 200
        assert "<form" in body

    def test_search_returns_answers(self, server_url):
        status, body = fetch(f"{server_url}/search?q=John+Ben")
        assert status == 200
        assert body.count('<div class="result">') == 3
        assert "<mark>John</mark>" in body
        assert "0.2.0" in body

    def test_search_algorithm_param(self, server_url):
        status, body = fetch(f"{server_url}/search?q=John+Ben&algorithm=stack")
        assert status == 200
        assert "algorithm <b>stack</b>" in body

    def test_search_no_hits(self, server_url):
        status, body = fetch(f"{server_url}/search?q=zebra+quux")
        assert status == 200
        assert "No subtree contains all the keywords." in body

    def test_empty_query_shows_form(self, server_url):
        status, body = fetch(f"{server_url}/search?q=")
        assert status == 200
        assert "<form" in body

    def test_bad_algorithm_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/search?q=john&algorithm=warp")
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/nope")
        assert excinfo.value.code == 404

    def test_xss_attempt_escaped(self, server_url):
        status, body = fetch(
            f"{server_url}/search?q=%3Cscript%3Ealert(1)%3C/script%3E"
        )
        assert status == 200
        assert "<script>" not in body
