"""Integration tests for the demo web server (real HTTP over localhost)."""

import json
import threading
import urllib.request
import urllib.error

import pytest

from repro.xksearch.cache import QueryCache
from repro.xksearch.server import ServerMetrics, make_server
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import school_tree


@pytest.fixture(scope="module")
def server_url():
    system = XKSearch.from_tree(school_tree())
    server = make_server(system, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def cached_server_url():
    """A second server whose engine has a result cache attached."""
    system = XKSearch.from_tree(school_tree())
    system.engine.cache = QueryCache()
    server = make_server(system, port=0, metrics=ServerMetrics())
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def fetch_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, dict(response.headers), json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, server_url):
        status, body = fetch(f"{server_url}/healthz")
        assert status == 200
        assert body == "ok"

    def test_landing_page(self, server_url):
        status, body = fetch(f"{server_url}/")
        assert status == 200
        assert "<form" in body

    def test_search_returns_answers(self, server_url):
        status, body = fetch(f"{server_url}/search?q=John+Ben")
        assert status == 200
        assert body.count('<div class="result">') == 3
        assert "<mark>John</mark>" in body
        assert "0.2.0" in body

    def test_search_algorithm_param(self, server_url):
        status, body = fetch(f"{server_url}/search?q=John+Ben&algorithm=stack")
        assert status == 200
        assert "algorithm <b>stack</b>" in body

    def test_search_no_hits(self, server_url):
        status, body = fetch(f"{server_url}/search?q=zebra+quux")
        assert status == 200
        assert "No subtree contains all the keywords." in body

    def test_empty_query_shows_form(self, server_url):
        status, body = fetch(f"{server_url}/search?q=")
        assert status == 200
        assert "<form" in body

    def test_bad_algorithm_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/search?q=john&algorithm=warp")
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/nope")
        assert excinfo.value.code == 404

    def test_xss_attempt_escaped(self, server_url):
        status, body = fetch(
            f"{server_url}/search?q=%3Cscript%3Ealert(1)%3C/script%3E"
        )
        assert status == 200
        assert "<script>" not in body


class TestJsonApi:
    def test_api_search_payload(self, server_url):
        status, headers, payload = fetch_json(f"{server_url}/api/search?q=John+Ben")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        assert payload["count"] == 3 and len(payload["ids"]) == 3
        assert "0.2.0" in payload["ids"]
        assert payload["algorithm"] == "auto"
        assert payload["elapsed_ms"] >= 0
        assert payload["cached"] is False  # this server has no cache

    def test_api_search_limit(self, server_url):
        _, _, payload = fetch_json(f"{server_url}/api/search?q=John+Ben&limit=1")
        assert payload["count"] == 1 and len(payload["ids"]) == 1

    def test_api_search_timing_header(self, server_url):
        _, headers, _ = fetch_json(f"{server_url}/api/search?q=John+Ben")
        assert float(headers["X-Response-Time-Ms"]) >= 0

    def test_api_search_missing_query_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/api/search")
        assert excinfo.value.code == 400

    def test_api_search_bad_limit_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/api/search?q=john&limit=lots")
        assert excinfo.value.code == 400

    def test_api_search_bad_algorithm_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/api/search?q=john&algorithm=warp")
        assert excinfo.value.code == 400


class TestCachedServing:
    def test_repeat_query_served_from_cache(self, cached_server_url):
        _, _, first = fetch_json(f"{cached_server_url}/api/search?q=John+Ben")
        _, _, second = fetch_json(f"{cached_server_url}/api/search?q=ben+john")
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["ids"] == second["ids"]

    def test_statz_reports_metrics_and_cache(self, cached_server_url):
        fetch_json(f"{cached_server_url}/api/search?q=John+Ben")
        _, _, statz = fetch_json(f"{cached_server_url}/statz")
        assert statz["server"]["requests"] >= 1
        assert statz["server"]["latency_ms"]["p50"] >= 0
        assert statz["generation"] == 0  # in-memory index never mutates
        assert statz["cache"]["results"]["hits"] >= 1


class TestStatzWithoutCache:
    def test_statz_cache_is_null(self, server_url):
        _, _, statz = fetch_json(f"{server_url}/statz")
        assert statz["cache"] is None


class TestBuildInfo:
    def test_metrics_exposes_build_info_and_uptime(self, server_url):
        status, body = fetch(f"{server_url}/metrics")
        assert status == 200
        build_lines = [
            line for line in body.splitlines()
            if line.startswith("xks_build_info{")
        ]
        assert len(build_lines) == 1  # repeated make_server calls dedup
        assert 'version="' in build_lines[0]
        assert 'python="' in build_lines[0]
        assert 'pid="' in build_lines[0]
        assert build_lines[0].endswith(" 1")
        assert "xks_uptime_seconds " in body

    def test_statz_build_section(self, server_url):
        import os

        status, _, payload = fetch_json(f"{server_url}/statz")
        assert status == 200
        build = payload["build"]
        assert build["pid"] == os.getpid()
        assert build["uptime_s"] >= 0
        assert build["version"] and build["python"]


class TestAlertz:
    @pytest.fixture(scope="class")
    def slo_server_url(self):
        from repro.obs.slo import BurnRule, SLOEngine, WindowPolicy, parse_slo

        system = XKSearch.from_tree(school_tree())
        # Pinned to /healthz: other tests in this module drive 4xx traffic
        # through the process-global registry, and a /search availability
        # SLO would (correctly) fire on it.
        engine = SLOEngine(
            slos=[parse_slo("availability:99:endpoint=/healthz:name=srv-avail")],
            policy=WindowPolicy(
                rules=(BurnRule(1.0, 2.0, 14.4, "fast", 0.0),),
                resolution_s=0.05,
            ),
        )
        server = make_server(system, port=0, slo_engine=engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_alertz_disabled_without_engine(self, server_url):
        status, _, payload = fetch_json(f"{server_url}/alertz")
        assert status == 200
        assert payload == {"enabled": False, "slos": [], "transitions": 0}

    def test_alertz_serves_slo_status(self, slo_server_url):
        status, _, payload = fetch_json(f"{slo_server_url}/alertz")
        assert status == 200
        assert payload["enabled"] is True
        (block,) = payload["slos"]
        assert block["name"] == "srv-avail"
        assert block["alerts"][0]["state"] == "ok"
        assert payload["policy"]["rules"][0]["severity"] == "fast"

    def test_statz_slo_section(self, slo_server_url):
        fetch_json(f"{slo_server_url}/alertz")  # ensure one evaluation ran
        _, _, payload = fetch_json(f"{slo_server_url}/statz")
        assert "srv-avail" in payload["slo"]["slos"]
        assert payload["slo"]["alerts"]["srv-avail:fast"] == "ok"

    def test_alert_state_gauge_on_metrics(self, slo_server_url):
        fetch_json(f"{slo_server_url}/alertz")
        _, body = fetch(f"{slo_server_url}/metrics")
        assert 'xks_alert_state{alert="srv-avail:fast"} 0' in body
        assert 'xks_slo_error_budget_remaining{slo="srv-avail"} 1' in body
