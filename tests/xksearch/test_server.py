"""Integration tests for the demo web server (real HTTP over localhost)."""

import json
import threading
import urllib.request
import urllib.error

import pytest

from repro.xksearch.cache import QueryCache
from repro.xksearch.server import ServerMetrics, make_server
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import school_tree


@pytest.fixture(scope="module")
def server_url():
    system = XKSearch.from_tree(school_tree())
    server = make_server(system, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def cached_server_url():
    """A second server whose engine has a result cache attached."""
    system = XKSearch.from_tree(school_tree())
    system.engine.cache = QueryCache()
    server = make_server(system, port=0, metrics=ServerMetrics())
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def fetch_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, dict(response.headers), json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, server_url):
        status, body = fetch(f"{server_url}/healthz")
        assert status == 200
        assert body == "ok"

    def test_landing_page(self, server_url):
        status, body = fetch(f"{server_url}/")
        assert status == 200
        assert "<form" in body

    def test_search_returns_answers(self, server_url):
        status, body = fetch(f"{server_url}/search?q=John+Ben")
        assert status == 200
        assert body.count('<div class="result">') == 3
        assert "<mark>John</mark>" in body
        assert "0.2.0" in body

    def test_search_algorithm_param(self, server_url):
        status, body = fetch(f"{server_url}/search?q=John+Ben&algorithm=stack")
        assert status == 200
        assert "algorithm <b>stack</b>" in body

    def test_search_no_hits(self, server_url):
        status, body = fetch(f"{server_url}/search?q=zebra+quux")
        assert status == 200
        assert "No subtree contains all the keywords." in body

    def test_empty_query_shows_form(self, server_url):
        status, body = fetch(f"{server_url}/search?q=")
        assert status == 200
        assert "<form" in body

    def test_bad_algorithm_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/search?q=john&algorithm=warp")
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/nope")
        assert excinfo.value.code == 404

    def test_xss_attempt_escaped(self, server_url):
        status, body = fetch(
            f"{server_url}/search?q=%3Cscript%3Ealert(1)%3C/script%3E"
        )
        assert status == 200
        assert "<script>" not in body


class TestJsonApi:
    def test_api_search_payload(self, server_url):
        status, headers, payload = fetch_json(f"{server_url}/api/search?q=John+Ben")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        assert payload["count"] == 3 and len(payload["ids"]) == 3
        assert "0.2.0" in payload["ids"]
        assert payload["algorithm"] == "auto"
        assert payload["elapsed_ms"] >= 0
        assert payload["cached"] is False  # this server has no cache

    def test_api_search_limit(self, server_url):
        _, _, payload = fetch_json(f"{server_url}/api/search?q=John+Ben&limit=1")
        assert payload["count"] == 1 and len(payload["ids"]) == 1

    def test_api_search_timing_header(self, server_url):
        _, headers, _ = fetch_json(f"{server_url}/api/search?q=John+Ben")
        assert float(headers["X-Response-Time-Ms"]) >= 0

    def test_api_search_missing_query_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/api/search")
        assert excinfo.value.code == 400

    def test_api_search_bad_limit_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/api/search?q=john&limit=lots")
        assert excinfo.value.code == 400

    def test_api_search_bad_algorithm_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/api/search?q=john&algorithm=warp")
        assert excinfo.value.code == 400


class TestCachedServing:
    def test_repeat_query_served_from_cache(self, cached_server_url):
        _, _, first = fetch_json(f"{cached_server_url}/api/search?q=John+Ben")
        _, _, second = fetch_json(f"{cached_server_url}/api/search?q=ben+john")
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["ids"] == second["ids"]

    def test_statz_reports_metrics_and_cache(self, cached_server_url):
        fetch_json(f"{cached_server_url}/api/search?q=John+Ben")
        _, _, statz = fetch_json(f"{cached_server_url}/statz")
        assert statz["server"]["requests"] >= 1
        assert statz["server"]["latency_ms"]["p50"] >= 0
        assert statz["generation"] == 0  # in-memory index never mutates
        assert statz["cache"]["results"]["hits"] >= 1


class TestStatzWithoutCache:
    def test_statz_cache_is_null(self, server_url):
        _, _, statz = fetch_json(f"{server_url}/statz")
        assert statz["cache"] is None


class TestBuildInfo:
    def test_metrics_exposes_build_info_and_uptime(self, server_url):
        status, body = fetch(f"{server_url}/metrics")
        assert status == 200
        build_lines = [
            line for line in body.splitlines()
            if line.startswith("xks_build_info{")
        ]
        assert len(build_lines) == 1  # repeated make_server calls dedup
        assert 'version="' in build_lines[0]
        assert 'python="' in build_lines[0]
        assert 'pid="' in build_lines[0]
        assert build_lines[0].endswith(" 1")
        assert "xks_uptime_seconds " in body

    def test_statz_build_section(self, server_url):
        import os

        status, _, payload = fetch_json(f"{server_url}/statz")
        assert status == 200
        build = payload["build"]
        assert build["pid"] == os.getpid()
        assert build["uptime_s"] >= 0
        assert build["version"] and build["python"]


class TestAlertz:
    @pytest.fixture(scope="class")
    def slo_server_url(self):
        from repro.obs.slo import BurnRule, SLOEngine, WindowPolicy, parse_slo

        system = XKSearch.from_tree(school_tree())
        # Pinned to /healthz: other tests in this module drive 4xx traffic
        # through the process-global registry, and a /search availability
        # SLO would (correctly) fire on it.
        engine = SLOEngine(
            slos=[parse_slo("availability:99:endpoint=/healthz:name=srv-avail")],
            policy=WindowPolicy(
                rules=(BurnRule(1.0, 2.0, 14.4, "fast", 0.0),),
                resolution_s=0.05,
            ),
        )
        server = make_server(system, port=0, slo_engine=engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_alertz_disabled_without_engine(self, server_url):
        status, _, payload = fetch_json(f"{server_url}/alertz")
        assert status == 200
        assert payload == {"enabled": False, "slos": [], "transitions": 0}

    def test_alertz_serves_slo_status(self, slo_server_url):
        status, _, payload = fetch_json(f"{slo_server_url}/alertz")
        assert status == 200
        assert payload["enabled"] is True
        (block,) = payload["slos"]
        assert block["name"] == "srv-avail"
        assert block["alerts"][0]["state"] == "ok"
        assert payload["policy"]["rules"][0]["severity"] == "fast"

    def test_statz_slo_section(self, slo_server_url):
        fetch_json(f"{slo_server_url}/alertz")  # ensure one evaluation ran
        _, _, payload = fetch_json(f"{slo_server_url}/statz")
        assert "srv-avail" in payload["slo"]["slos"]
        assert payload["slo"]["alerts"]["srv-avail:fast"] == "ok"

    def test_alert_state_gauge_on_metrics(self, slo_server_url):
        fetch_json(f"{slo_server_url}/alertz")
        _, body = fetch(f"{slo_server_url}/metrics")
        assert 'xks_alert_state{alert="srv-avail:fast"} 0' in body
        assert 'xks_slo_error_budget_remaining{slo="srv-avail"} 1' in body


class TestProfilingEndpoints:
    @pytest.fixture(scope="class")
    def profiled_url(self):
        from repro.obs.profiling import SamplingProfiler, stop_heap_tracking
        from repro.xksearch.system import XKSearch

        system = XKSearch.from_tree(school_tree())
        profiler = SamplingProfiler(hz=200.0).start()
        server = make_server(system, port=0, profiler=profiler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        stop_heap_tracking()

    def test_pprof_cumulative_json(self, profiled_url):
        status, _, payload = fetch_json(f"{profiled_url}/debug/pprof")
        assert status == 200
        assert payload["enabled"] is True
        assert payload["totals"]["hz"] == 200.0
        # stacks keys are folded frames: file:func;file:func;...
        for stack in payload["stacks"]:
            assert ":" in stack

    def test_pprof_window_and_folded(self, profiled_url):
        status, body = fetch(
            f"{profiled_url}/debug/pprof?seconds=0.1&format=folded"
        )
        assert status == 200
        for line in body.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert ";" in stack or ":" in stack

    def test_pprof_bad_seconds(self, profiled_url):
        for bad in ("abc", "-1", "61"):
            with pytest.raises(urllib.error.HTTPError) as err:
                fetch(f"{profiled_url}/debug/pprof?seconds={bad}")
            assert err.value.code == 400

    def test_heap_toggle_and_snapshot(self, profiled_url):
        status, _, payload = fetch_json(f"{profiled_url}/debug/heap")
        assert status == 200
        assert payload["tracking"] is False
        assert payload["parent"] == {"tracing": False, "top": []}
        status, _, payload = fetch_json(
            f"{profiled_url}/debug/heap?start=1&top=5"
        )
        assert payload["tracking"] is True
        status, _, payload = fetch_json(f"{profiled_url}/debug/heap?top=5")
        assert payload["parent"]["tracing"] is True
        assert payload["parent"]["current_kb"] > 0
        assert len(payload["parent"]["top"]) <= 5
        status, _, payload = fetch_json(f"{profiled_url}/debug/heap?stop=1")
        assert payload["tracking"] is False

    def test_statz_has_profiler_section(self, profiled_url):
        status, _, payload = fetch_json(f"{profiled_url}/statz")
        assert status == 200
        assert payload["profiler"]["hz"] == 200.0

    def test_pprof_disabled_without_profiler(self, server_url):
        status, _, payload = fetch_json(f"{server_url}/debug/pprof")
        assert status == 200
        assert payload["enabled"] is False


class TestCrossProcessTelemetry:
    """Pooled serving: worker spans under the request trace, fleet /statz,
    and exact /metrics totals (no telemetry loss past the fork)."""

    @pytest.fixture(scope="class")
    def pooled_server(self, tmp_path_factory):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("process pool requires the fork start method")
        from repro.index.builder import build_index
        from repro.obs.export import MemorySink, TraceExporter
        from repro.obs.fleet import FleetCollector
        from repro.obs.metrics import get_registry
        from repro.obs.tracing import Tracer
        from repro.xksearch.parallel import WorkerPool
        from repro.xmltree.generate import dblp_like_tree, plant_keywords

        tree = dblp_like_tree(7, venues=3, years_per_venue=3, papers_per_year=8)
        plant_keywords(tree, {"xkmid": 15, "xkbig": 40}, seed=5)
        index_dir = tmp_path_factory.mktemp("pooled_server") / "idx"
        build_index(tree, index_dir, page_size=1024)
        pool = WorkerPool(index_dir, workers=2)
        system = XKSearch.open(index_dir, load_document=False)
        system.engine.attach_pool(pool)
        fleet = FleetCollector(pool, heartbeat_s=60.0)  # poll manually
        sink = MemorySink()
        exporter = TraceExporter(sink)
        server = make_server(
            system,
            port=0,
            tracer=Tracer(sample_rate=1.0),
            exporter=exporter,
            fleet=fleet,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        yield f"http://{host}:{port}", sink, exporter, fleet, get_registry()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        pool.close()
        system.close()

    def test_worker_spans_land_under_request_trace(self, pooled_server):
        url, sink, exporter, _, _ = pooled_server
        trace_id = "feedbeef" * 2  # 16-hex trace id
        request = urllib.request.Request(
            f"{url}/api/search?q=xkmid+xkbig",
            headers={"X-Trace-Id": trace_id},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            payload = json.loads(response.read())
            assert response.headers["X-Trace-Id"] == trace_id
        assert payload["count"] > 0
        # The handler submits the finished trace after the response is
        # written, so wait for it rather than racing a single flush.
        import time

        deadline = time.monotonic() + 10.0
        records = []
        while not records and time.monotonic() < deadline:
            exporter.flush(5.0)
            records = [
                r for r in sink.records
                if r.get("kind") == "trace" and r.get("trace_id") == trace_id
            ]
            if not records:
                time.sleep(0.02)
        assert len(records) == 1
        (record,) = records
        assert record["attrs"].get("pooled") is True
        worker_spans = [
            child for child in record["children"] if child["name"] == "worker"
        ]
        assert len(worker_spans) == 1
        (worker_span,) = worker_spans
        assert worker_span["attrs"]["pid"] > 0
        assert worker_span["attrs"]["semantics"] == "slca"
        child_names = {c["name"] for c in worker_span["children"]}
        assert child_names == {"worker.generation", "worker.execute"}

    def test_metrics_totals_are_fleet_exact(self, pooled_server):
        url, _, _, fleet, registry = pooled_server

        def queries_total():
            return sum(
                sample.value
                for sample in registry.collect()
                if sample.name == "xks_queries_total"
            )

        before = queries_total()
        for query in ("xkmid", "xkbig", "xkmid+xkbig"):
            status, _, _ = fetch_json(f"{url}/api/search?q={query}")
            assert status == 200
        # Zero telemetry loss: every pool-executed query was replayed
        # into the parent registry, none double-counted.
        assert queries_total() == before + 3
        # And the worker-side exec histogram events arrived too.
        exec_count = sum(
            sample.value
            for sample in registry.collect()
            if sample.name == "xks_query_exec_ms_count"
        )
        assert exec_count >= 3

    def test_statz_fleet_section(self, pooled_server):
        url, _, _, fleet, _ = pooled_server
        fetch_json(f"{url}/api/search?q=xkmid")
        fleet.poll()
        status, _, payload = fetch_json(f"{url}/statz")
        assert status == 200
        assert len(payload["fleet"]["workers"]) == 2
        for entry in payload["fleet"]["workers"].values():
            assert entry["up"] is True
        total = sum(
            entry["queries_total"]
            for entry in payload["fleet"]["workers"].values()
        )
        assert total >= 1.0
