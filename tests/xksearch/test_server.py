"""Integration tests for the demo web server (real HTTP over localhost)."""

import json
import threading
import urllib.request
import urllib.error

import pytest

from repro.xksearch.cache import QueryCache
from repro.xksearch.server import ServerMetrics, make_server
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import school_tree


@pytest.fixture(scope="module")
def server_url():
    system = XKSearch.from_tree(school_tree())
    server = make_server(system, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def cached_server_url():
    """A second server whose engine has a result cache attached."""
    system = XKSearch.from_tree(school_tree())
    system.engine.cache = QueryCache()
    server = make_server(system, port=0, metrics=ServerMetrics())
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def fetch_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, dict(response.headers), json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, server_url):
        status, body = fetch(f"{server_url}/healthz")
        assert status == 200
        assert body == "ok"

    def test_landing_page(self, server_url):
        status, body = fetch(f"{server_url}/")
        assert status == 200
        assert "<form" in body

    def test_search_returns_answers(self, server_url):
        status, body = fetch(f"{server_url}/search?q=John+Ben")
        assert status == 200
        assert body.count('<div class="result">') == 3
        assert "<mark>John</mark>" in body
        assert "0.2.0" in body

    def test_search_algorithm_param(self, server_url):
        status, body = fetch(f"{server_url}/search?q=John+Ben&algorithm=stack")
        assert status == 200
        assert "algorithm <b>stack</b>" in body

    def test_search_no_hits(self, server_url):
        status, body = fetch(f"{server_url}/search?q=zebra+quux")
        assert status == 200
        assert "No subtree contains all the keywords." in body

    def test_empty_query_shows_form(self, server_url):
        status, body = fetch(f"{server_url}/search?q=")
        assert status == 200
        assert "<form" in body

    def test_bad_algorithm_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/search?q=john&algorithm=warp")
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/nope")
        assert excinfo.value.code == 404

    def test_xss_attempt_escaped(self, server_url):
        status, body = fetch(
            f"{server_url}/search?q=%3Cscript%3Ealert(1)%3C/script%3E"
        )
        assert status == 200
        assert "<script>" not in body


class TestJsonApi:
    def test_api_search_payload(self, server_url):
        status, headers, payload = fetch_json(f"{server_url}/api/search?q=John+Ben")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        assert payload["count"] == 3 and len(payload["ids"]) == 3
        assert "0.2.0" in payload["ids"]
        assert payload["algorithm"] == "auto"
        assert payload["elapsed_ms"] >= 0
        assert payload["cached"] is False  # this server has no cache

    def test_api_search_limit(self, server_url):
        _, _, payload = fetch_json(f"{server_url}/api/search?q=John+Ben&limit=1")
        assert payload["count"] == 1 and len(payload["ids"]) == 1

    def test_api_search_timing_header(self, server_url):
        _, headers, _ = fetch_json(f"{server_url}/api/search?q=John+Ben")
        assert float(headers["X-Response-Time-Ms"]) >= 0

    def test_api_search_missing_query_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/api/search")
        assert excinfo.value.code == 400

    def test_api_search_bad_limit_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/api/search?q=john&limit=lots")
        assert excinfo.value.code == 400

    def test_api_search_bad_algorithm_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server_url}/api/search?q=john&algorithm=warp")
        assert excinfo.value.code == 400


class TestCachedServing:
    def test_repeat_query_served_from_cache(self, cached_server_url):
        _, _, first = fetch_json(f"{cached_server_url}/api/search?q=John+Ben")
        _, _, second = fetch_json(f"{cached_server_url}/api/search?q=ben+john")
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["ids"] == second["ids"]

    def test_statz_reports_metrics_and_cache(self, cached_server_url):
        fetch_json(f"{cached_server_url}/api/search?q=John+Ben")
        _, _, statz = fetch_json(f"{cached_server_url}/statz")
        assert statz["server"]["requests"] >= 1
        assert statz["server"]["latency_ms"]["p50"] >= 0
        assert statz["generation"] == 0  # in-memory index never mutates
        assert statz["cache"]["results"]["hits"] >= 1


class TestStatzWithoutCache:
    def test_statz_cache_is_null(self, server_url):
        _, _, statz = fetch_json(f"{server_url}/statz")
        assert statz["cache"] is None
