"""Cross-layer observability: EXPLAIN/profile mode, /metrics, tracing.

The acceptance contract: ``GET /metrics`` is valid Prometheus text covering
server, cache, buffer-pool, pager and algorithm-counter metrics, and the
``explain=1`` answer is byte-identical to the plain one.
"""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.index.memory import MemoryKeywordIndex
from repro.obs.tracing import Tracer, valid_trace_id
from repro.xksearch.cache import QueryCache
from repro.xksearch.engine import ExecutionStats, QueryEngine
from repro.xksearch.server import ServerMetrics, make_server
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import school_tree
from tests.obs.test_metrics import assert_prometheus_parseable


@pytest.fixture
def memory_index(school):
    return MemoryKeywordIndex.from_tree(school)


@pytest.fixture(scope="module")
def disk_system(tmp_path_factory):
    """A disk-backed system with a cache — the production serving shape."""
    index_dir = tmp_path_factory.mktemp("obs") / "idx"
    XKSearch.build(school_tree(), index_dir).close()
    system = XKSearch.open(index_dir, cache=QueryCache())
    yield system
    system.close()


@pytest.fixture(scope="module")
def obs_server(disk_system):
    """A server over the disk system, with an always-slow-logging tracer."""
    tracer = Tracer(sample_rate=0.0, slow_threshold_ms=0.0)
    server = make_server(disk_system, port=0, metrics=ServerMetrics(), tracer=tracer)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def fetch(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), response.read().decode("utf-8")


class TestEngineProfile:
    def test_profiled_answer_is_byte_identical(self, memory_index):
        plain = QueryEngine(memory_index)
        for query in ("John Ben", "class smith", "john zebra"):
            expected = list(plain.execute(query))
            stats = ExecutionStats()
            assert list(plain.execute(query, stats=stats, profile=True)) == expected
            assert stats.profile is not None

    def test_profile_phases_and_counters(self, memory_index):
        engine = QueryEngine(memory_index)
        stats = ExecutionStats()
        ids = list(engine.execute("John Ben", stats=stats, profile=True))
        prof = stats.profile
        assert [phase.name for phase in prof.phases] == ["parse", "plan", "execute"]
        assert prof.algorithm in ("il", "scan")
        assert prof.result_count == len(ids)
        assert prof.counters["lca_ops"] > 0
        assert prof.plan["keywords"] and prof.plan["frequencies"]
        assert prof.total_ms >= sum(phase.ms for phase in prof.phases) * 0.5
        # In-memory index: no I/O attribution.
        assert prof.io is None
        # The whole breakdown serializes to JSON.
        json.dumps(prof.as_dict())

    def test_profile_cache_hit_path(self, memory_index):
        engine = QueryEngine(memory_index, cache=QueryCache())
        first = list(engine.execute("John Ben"))
        stats = ExecutionStats()
        again = list(engine.execute("ben john", stats=stats, profile=True))
        assert again == first
        prof = stats.profile
        assert prof.cache_hit and stats.cache_hit
        assert "cache_lookup" in [phase.name for phase in prof.phases]
        assert prof.algorithm in ("il", "scan")  # plan re-derived for EXPLAIN
        # Stamped with the original execution's counters, not zeroes.
        assert stats.counters.lca_ops > 0

    def test_profile_io_attribution_on_disk(self, disk_system):
        disk_system.index.make_cold()
        stats = ExecutionStats()
        list(disk_system.search_ids("john xyznotthere", stats=stats, profile=True))
        # Even an empty-result query planned against disk has an io block.
        assert stats.profile.io is not None
        stats = ExecutionStats()
        ids = list(disk_system.search_ids("John Ben", stats=stats, profile=True))
        io = stats.profile.io
        if not stats.cache_hit and disk_system.index.posting_tier() != "segment":
            # Buffer-pool touches only happen on the B+tree tier; the
            # segment fast path reads an mmap outside the pool.
            assert io["pool_hits"] + io["pool_misses"] > 0
        assert set(io) == {
            "page_reads", "sequential_reads", "random_reads", "pool_hits", "pool_misses",
        }
        assert ids == list(disk_system.search_ids("John Ben"))


class TestEngineTotals:
    def test_counter_totals_accumulate_per_algorithm(self, memory_index):
        engine = QueryEngine(memory_index, cache=QueryCache())
        list(engine.execute("John Ben", algorithm="scan"))
        list(engine.execute("John Ben", algorithm="stack"))
        totals = engine.counter_totals()
        assert totals["scan"]["lca_ops"] > 0
        assert totals["stack"]["nodes_merged"] > 0
        assert totals["_total"]["results"] >= totals["scan"]["results"]

    def test_cache_hits_do_not_double_count_totals(self, memory_index):
        engine = QueryEngine(memory_index, cache=QueryCache())
        list(engine.execute("John Ben"))
        once = engine.counter_totals()["_total"]["lca_ops"]
        list(engine.execute("John Ben"))  # hit: no new execution
        assert engine.counter_totals()["_total"]["lca_ops"] == once


class TestMetricsEndpoint:
    CORE_METRICS = (
        "xks_http_requests_total",       # server
        "xks_http_request_ms_bucket",    # server latency histogram
        "xks_queries_total",             # engine
        "xks_algo_ops_total",            # algorithm counters
        "xks_query_cache_hits_total",    # cache
        "xks_buffer_pool_hits_total",    # buffer pool
        "xks_pager_reads_total",         # pager
        "xks_bptree_node_reads_total",   # B+tree node touches
        "xks_index_generation",
    )

    def test_metrics_parseable_and_covering(self, obs_server):
        fetch(f"{obs_server}/api/search?q=John+Ben")
        fetch(f"{obs_server}/api/search?q=John+Ben")  # second → cache hit
        status, headers, body = fetch(f"{obs_server}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert_prometheus_parseable(body)
        for name in self.CORE_METRICS:
            assert name in body, f"missing core metric {name}"

    def test_statz_enriched(self, obs_server):
        fetch(f"{obs_server}/api/search?q=John+Ben")
        _, _, body = fetch(f"{obs_server}/statz")
        statz = json.loads(body)
        storage = statz["storage"]
        assert {"hits", "misses", "evictions", "hit_rate"} <= set(storage["buffer_pool"])
        assert {"reads", "sequential_reads", "random_reads"} <= set(storage["pager"])
        assert storage["bptree"]["il_node_reads"] >= 0
        assert statz["counters"]["_total"]["lm_ops"] >= 0
        assert statz["cache"]["results"]["hits"] >= 1
        assert statz["tracing"]["slow_threshold_ms"] == 0.0


class TestExplainApi:
    def test_explain_breakdown_and_identical_ids(self, obs_server):
        _, _, plain = fetch(f"{obs_server}/api/search?q=John+Ben")
        _, _, explained = fetch(f"{obs_server}/api/search?q=John+Ben&explain=1")
        plain, explained = json.loads(plain), json.loads(explained)
        assert explained["ids"] == plain["ids"]
        assert "explain" not in plain
        breakdown = explained["explain"]
        assert breakdown["phases"] and all("ms" in phase for phase in breakdown["phases"])
        assert breakdown["algorithm"] in ("il", "scan", "stack")
        assert "counters" in breakdown
        assert explained["cache_hit"] in (True, False)
        assert explained["counters"]["lca_ops"] >= 0

    def test_cache_hit_stamped_in_api(self, obs_server):
        fetch(f"{obs_server}/api/search?q=John+Ben")  # ensure cached
        _, _, body = fetch(f"{obs_server}/api/search?q=ben+john")
        payload = json.loads(body)
        assert payload["cache_hit"] is True and payload["cached"] is True
        assert sum(payload["counters"].values()) > 0  # original cost, not zeroes


class TestTraceIds:
    def test_trace_id_generated_and_echoed(self, obs_server):
        _, headers, _ = fetch(f"{obs_server}/api/search?q=John+Ben")
        assert len(headers["X-Trace-Id"]) == 16

    def test_client_trace_id_propagated(self, obs_server):
        _, headers, body = fetch(
            f"{obs_server}/api/search?q=John+Ben",
            headers={"X-Trace-Id": "feedfacefeedface"},
        )
        assert headers["X-Trace-Id"] == "feedfacefeedface"
        assert json.loads(body)["trace_id"] == "feedfacefeedface"


class TestSlowLog:
    def test_slow_log_captures_requests(self, obs_server):
        fetch(f"{obs_server}/api/search?q=John+Ben&explain=1")
        _, _, body = fetch(f"{obs_server}/debug/slow")
        slow = json.loads(body)
        assert slow["threshold_ms"] == 0.0
        assert slow["count"] >= 1
        entry = slow["entries"][0]
        assert entry["path"] in ("/search", "/api/search")
        assert entry["elapsed_ms"] >= 0
        # Forced (explain) requests carry a span tree in the slow log.
        traced = [e for e in slow["entries"] if "trace" in e]
        assert traced, "explain request should have attached a trace"
        engine_span = traced[0]["trace"]["children"][0]
        assert engine_span["name"] == "engine"
        assert {child["name"] for child in engine_span["children"]} >= {"plan"}


class TestTraceIdValidation:
    def test_valid_trace_id_predicate(self):
        assert valid_trace_id("0123456789abcdef")
        assert not valid_trace_id(None)
        assert not valid_trace_id("")
        assert not valid_trace_id("0123456789ABCDEF")  # lowercase only
        assert not valid_trace_id("0123456789abcde")   # too short
        assert not valid_trace_id("0123456789abcdef0")  # too long
        assert not valid_trace_id("g123456789abcdef")  # not hex

    @pytest.mark.parametrize(
        "bad", ["not-a-trace-id!", "ABCDEF0123456789", "0123", "0" * 17]
    )
    def test_invalid_client_trace_id_is_regenerated(self, obs_server, bad):
        _, headers, body = fetch(
            f"{obs_server}/api/search?q=John+Ben", headers={"X-Trace-Id": bad}
        )
        echoed = headers["X-Trace-Id"]
        assert echoed != bad
        assert re.fullmatch(r"[0-9a-f]{16}", echoed)
        assert json.loads(body)["trace_id"] == echoed


class TestFrequencyBands:
    def test_band_boundaries(self):
        from repro.xksearch.engine import FREQUENCY_BANDS, frequency_band

        assert [frequency_band(f) for f in (0, 1, 9, 10, 99, 100, 999, 1000, 5000)] == [
            "0", "1-9", "1-9", "10-99", "10-99", "100-999", "100-999", "1000+", "1000+"
        ]
        assert set(FREQUENCY_BANDS) == {"0", "1-9", "10-99", "100-999", "1000+"}

    def test_plan_carries_band(self, memory_index):
        engine = QueryEngine(memory_index)
        stats = ExecutionStats()
        list(engine.execute("John Ben", stats=stats, profile=True))
        plan = stats.profile.plan
        assert plan["band"] in ("0", "1-9", "10-99", "100-999", "1000+")

    def test_exec_histogram_labeled_by_band_and_algorithm(self, obs_server):
        from repro.xksearch.engine import FREQUENCY_BANDS

        fetch(f"{obs_server}/api/search?q=John+Smith")
        _, _, body = fetch(f"{obs_server}/metrics")
        exec_lines = [
            line for line in body.splitlines()
            if line.startswith("xks_query_exec_ms_bucket")
        ]
        assert exec_lines
        for line in exec_lines:
            band = re.search(r'band="([^"]*)"', line)
            assert band and band.group(1) in FREQUENCY_BANDS, line
            assert re.search(r'algorithm="[^"]+"', line), line


class TestSlowLogControls:
    def test_limit_truncates_entries_not_count(self, obs_server):
        for query in ("John+Ben", "class+smith", "John+Smith"):
            fetch(f"{obs_server}/api/search?q={query}")
        _, _, body = fetch(f"{obs_server}/debug/slow?limit=1")
        slow = json.loads(body)
        assert len(slow["entries"]) == 1
        assert slow["count"] >= 3
        _, _, body = fetch(f"{obs_server}/debug/slow?limit=0")
        assert json.loads(body)["entries"] == []

    def test_bad_limit_is_a_400(self, obs_server):
        for bad in ("nope", "-1", "1.5"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(f"{obs_server}/debug/slow?limit={bad}")
            assert excinfo.value.code == 400
            assert "bad limit" in json.loads(excinfo.value.read())["error"]

    def test_clear_returns_the_removed_window(self, obs_server):
        for query in ("John+Ben", "class+smith", "John+Smith"):
            fetch(f"{obs_server}/api/search?q={query}")
        _, _, body = fetch(f"{obs_server}/debug/slow?clear=1")
        cleared = json.loads(body)
        assert cleared["cleared"] is True
        assert cleared["count"] >= 3  # scrape-and-reset loses no entries
        _, _, body = fetch(f"{obs_server}/debug/slow")
        # Only the clear request itself (and nothing older) can remain.
        assert json.loads(body)["count"] <= 2


class TestExemplarResolution:
    def test_metrics_exemplar_resolves_via_debug_slow(self, obs_server):
        trace_id = "0123456789abcdef"
        # A fresh (uncached) query executes the engine under this trace id.
        fetch(
            f"{obs_server}/api/search?q=smith+exemplarprobe",
            headers={"X-Trace-Id": trace_id},
        )
        _, _, metrics_body = fetch(f"{obs_server}/metrics")
        exemplar_lines = [
            line for line in metrics_body.splitlines()
            if line.startswith("xks_query_exec_ms_bucket")
            and f'trace_id="{trace_id}"' in line
        ]
        assert exemplar_lines, "traced execution left no exemplar"
        _, _, slow_body = fetch(f"{obs_server}/debug/slow")
        exemplars = json.loads(slow_body)["exemplars"]
        hits = [e for e in exemplars if e["trace_id"] == trace_id]
        assert hits, exemplars
        assert {"labels", "le", "trace_id", "value", "ts"} <= set(hits[0])
