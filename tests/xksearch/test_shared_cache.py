"""Unit tests for the cross-process shared result cache."""

import multiprocessing

import pytest

from repro.xksearch.shared_cache import SharedResultCache


@pytest.fixture
def cache():
    with SharedResultCache(slot_count=64, slot_size=512, sketch_slots=256) as c:
        yield c


class TestBasics:
    def test_miss_then_hit(self, cache):
        key = ("slca", "auto", ("a", "b"))
        hit, _ = cache.lookup(key, generation=0)
        assert not hit
        assert cache.store(key, 0, ((1, 2), {"lca_ops": 3}), exec_ms=5.0) == "admit"
        hit, value = cache.lookup(key, generation=0)
        assert hit
        assert value == ((1, 2), {"lca_ops": 3})

    def test_values_are_fresh_copies(self, cache):
        # Lookups unpickle per call, so a caller mutating one returned
        # value can never corrupt the cached entry.
        key = "k"
        cache.store(key, 0, [1, 2, 3], exec_ms=1.0)
        _, first = cache.lookup(key, 0)
        first.append(99)
        _, second = cache.lookup(key, 0)
        assert second == [1, 2, 3]

    def test_len_counts_live_entries(self, cache):
        assert len(cache) == 0
        cache.store("a", 0, 1, exec_ms=1.0)
        cache.store("b", 0, 2, exec_ms=1.0)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_store_refreshes_in_place(self, cache):
        cache.store("a", 0, "old", exec_ms=1.0)
        cache.store("a", 0, "new", exec_ms=1.0)
        _, value = cache.lookup("a", 0)
        assert value == "new"
        assert len(cache) == 1


class TestGenerations:
    def test_newer_generation_invalidates(self, cache):
        cache.store("q", 7, "answer", exec_ms=1.0)
        hit, _ = cache.lookup("q", 8)
        assert not hit
        assert cache.stats.invalidations == 1
        # The stale entry is gone even for the old generation.
        hit, _ = cache.lookup("q", 7)
        assert not hit

    def test_same_generation_hits(self, cache):
        cache.store("q", 7, "answer", exec_ms=1.0)
        hit, value = cache.lookup("q", 7)
        assert hit and value == "answer"


class TestAdmission:
    def test_oversize_rejected(self, cache):
        big = "x" * 4096
        assert cache.store("big", 0, big, exec_ms=100.0) == "oversize"
        hit, _ = cache.lookup("big", 0)
        assert not hit

    def test_expensive_requested_entry_evicts_cheap_one(self):
        # One slot, full probe collision: a high-score newcomer must evict.
        with SharedResultCache(slot_count=1, slot_size=512, sketch_slots=8) as c:
            assert c.store("cheap", 0, "a", exec_ms=0.1) == "admit"
            # Ask for the expensive key a few times so its expected reuse
            # (the request sketch) justifies the eviction.
            for _ in range(5):
                c.lookup("pricey", 0)
            assert c.store("pricey", 0, "b", exec_ms=50.0) == "evict"
            assert c.lookup("pricey", 0) == (True, "b")
            assert c.lookup("cheap", 0)[0] is False

    def test_cheap_unrequested_entry_rejected(self):
        with SharedResultCache(slot_count=1, slot_size=512, sketch_slots=8) as c:
            for _ in range(10):
                c.lookup("hot", 0)
            assert c.store("hot", 0, "a", exec_ms=50.0) == "admit"
            # A one-off cheap result cannot displace the hot expensive one.
            assert c.store("coldie", 0, "b", exec_ms=0.01) == "reject"
            assert c.lookup("hot", 0) == (True, "a")

    def test_hits_raise_the_incumbent_score(self):
        with SharedResultCache(slot_count=1, slot_size=512, sketch_slots=8) as c:
            c.store("a", 0, 1, exec_ms=1.0)
            for _ in range(20):
                assert c.lookup("a", 0)[0]
            # score is now cost*(1+hits); a similar-cost newcomer with no
            # request history loses.
            assert c.store("b", 0, 2, exec_ms=1.0) == "reject"

    def test_decisions_counted(self, cache):
        cache.store("a", 0, 1, exec_ms=1.0)
        cache.store("big", 0, "x" * 4096, exec_ms=1.0)
        stats = cache.stats_dict()
        assert stats["admissions"]["admit"] == 1
        assert stats["admissions"]["oversize"] == 1


def _child_store(cache, key, value):
    cache.store(key, 0, value, exec_ms=9.0)


def _child_lookup(cache, key, conn):
    conn.send(cache.lookup(key, 0))
    conn.close()


class TestCrossProcess:
    def test_store_in_child_visible_in_parent(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("requires fork")
        ctx = multiprocessing.get_context("fork")
        with SharedResultCache(slot_count=64, slot_size=512) as cache:
            p = ctx.Process(target=_child_store, args=(cache, "k", ("v", 42)))
            p.start()
            p.join()
            assert p.exitcode == 0
            hit, value = cache.lookup("k", 0)
            assert hit and value == ("v", 42)

    def test_store_in_parent_visible_in_child(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("requires fork")
        ctx = multiprocessing.get_context("fork")
        with SharedResultCache(slot_count=64, slot_size=512) as cache:
            cache.store("k", 0, [1, 2], exec_ms=3.0)
            parent_conn, child_conn = ctx.Pipe()
            p = ctx.Process(target=_child_lookup, args=(cache, "k", child_conn))
            p.start()
            assert parent_conn.recv() == (True, [1, 2])
            p.join()

    def test_child_generation_mismatch_clears_entry_for_everyone(self):
        # A process observing a different generation drops the entry, and
        # the drop is visible in every other process (shared slots).
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("requires fork")
        ctx = multiprocessing.get_context("fork")
        with SharedResultCache(slot_count=64, slot_size=512) as cache:
            cache.store("k", 1, "stale", exec_ms=3.0)
            parent_conn, child_conn = ctx.Pipe()
            # _child_lookup queries generation 0 against a generation-1
            # entry: a mismatch, so the child must miss and clear the slot.
            p = ctx.Process(target=_child_lookup, args=(cache, "k", child_conn))
            p.start()
            hit, _ = parent_conn.recv()
            p.join()
            assert not hit
            assert cache.lookup("k", 1) == (False, None)

    def test_collision_never_serves_wrong_answer(self, cache):
        # Same sketch/probe geometry, distinct keys: even when two keys
        # land on the same slot, the pickled key check keeps answers apart.
        cache.store(("q", 1), 0, "one", exec_ms=1.0)
        cache.store(("q", 2), 0, "two", exec_ms=1.0)
        assert cache.lookup(("q", 1), 0)[1] in ("one", None)
        hit, value = cache.lookup(("q", 2), 0)
        if hit:
            assert value == "two"
