"""Process-pool execution: byte-identical answers, invalidation, fallback."""

import multiprocessing

import pytest

from repro.errors import PoolError
from repro.index.builder import build_index
from repro.index.updates import IndexUpdater
from repro.xksearch.cache import QueryCache
from repro.xksearch.engine import ExecutionStats, QueryEngine
from repro.xksearch.parallel import WorkerPool
from repro.xksearch.shared_cache import SharedResultCache
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import dblp_like_tree, plant_keywords

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process pool requires the fork start method",
)

QUERIES = ["xkrare xkbig", "xkmid xkbig", "xkrare xkmid xkbig", "xkmid"]


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory):
    tree = dblp_like_tree(7, venues=3, years_per_venue=3, papers_per_year=8)
    plant_keywords(tree, {"xkrare": 4, "xkmid": 18, "xkbig": 50}, seed=11)
    target = tmp_path_factory.mktemp("parallel") / "idx"
    build_index(tree, target, page_size=1024)
    return target


@pytest.fixture
def pooled(index_dir):
    """(pooled system, reference in-thread system, pool, shared cache)."""
    shared = SharedResultCache(slot_count=128, slot_size=4096)
    pool = WorkerPool(index_dir, workers=2, shared_cache=shared)
    system = XKSearch.open(
        index_dir, load_document=False, cache=QueryCache(), shared_cache=shared
    )
    system.engine.attach_pool(pool)
    reference = XKSearch.open(index_dir, load_document=False)
    yield system, reference, pool, shared
    pool.close()
    shared.close()
    system.close()
    reference.close()


class TestByteIdentical:
    def test_slca_all_algorithms(self, pooled):
        system, reference, pool, _ = pooled
        for query in QUERIES:
            for algorithm in ("auto", "il", "scan", "stack"):
                got = list(system.search_ids(query, algorithm=algorithm))
                want = list(reference.search_ids(query, algorithm=algorithm))
                assert got == want, (query, algorithm)
        # The queries actually went through the pool, across both workers.
        stats = pool.stats_dict()
        assert sum(w["tasks"] for w in stats["workers"]) > 0

    def test_lca_and_elca(self, pooled):
        system, reference, _, _ = pooled
        for query in QUERIES:
            got = list(system.engine.execute_all_lca(query))
            want = list(reference.engine.execute_all_lca(query))
            assert got == want, ("lca", query)
            got = list(system.engine.execute_elca(query))
            want = list(reference.engine.execute_elca(query))
            assert got == want, ("elca", query)

    def test_execute_many_matches_sequential(self, pooled):
        system, reference, _, _ = pooled
        batch = QUERIES + ["xkbig xkrare", "xkmid"]  # repeats + reorderings
        got = system.engine.execute_many(batch)
        want = reference.engine.execute_many(batch)
        assert got == want

    def test_pool_without_caches(self, index_dir):
        # A pool attached to a cache-less engine still answers correctly.
        pool = WorkerPool(index_dir, workers=1)
        try:
            system = XKSearch.open(index_dir, load_document=False)
            system.engine.attach_pool(pool)
            reference = XKSearch.open(index_dir, load_document=False)
            for query in QUERIES:
                got = list(system.search_ids(query))
                want = list(reference.search_ids(query))
                assert got == want
            system.close()
            reference.close()
        finally:
            pool.close()

    def test_shared_cache_round_trip(self, pooled):
        system, _, _, shared = pooled
        first = list(system.search_ids("xkrare xkbig"))
        # A second engine in this process (fresh local cache) must hit the
        # entry a worker stored in the shared segment.
        other = QueryEngine(system.index, cache=QueryCache(), shared_cache=shared)
        stats = ExecutionStats()
        second = list(other.execute("xkbig xkrare", stats=stats))
        assert second == first
        assert stats.shared_hits == 1
        assert stats.result_from_cache


class TestMidRunUpdate:
    def test_update_invalidates_every_worker(self, tmp_path):
        tree = dblp_like_tree(6, venues=2, years_per_venue=2, papers_per_year=6)
        plant_keywords(tree, {"xka": 5, "xkb": 14}, seed=3)
        target = tmp_path / "idx"
        build_index(tree, target, page_size=1024)
        shared = SharedResultCache(slot_count=64)
        pool = WorkerPool(target, workers=2, shared_cache=shared)
        system = XKSearch.open(
            target, load_document=False, cache=QueryCache(), shared_cache=shared
        )
        system.engine.attach_pool(pool)
        try:
            # Warm both workers (sequential dispatch round-robins the
            # idle queue) and the caches on the pre-update answer.
            for _ in range(2):
                before = list(system.search_ids("xka xkb", algorithm="scan"))
                system.engine.cache.clear()  # force re-dispatch to the pool
            # Mutate the index: new postings under a fresh subtree.
            with IndexUpdater(target) as updater:
                updater.add_postings(
                    {
                        "xka": [((0, 0, 1, 1, 0, 0), "title")],
                        "xkb": [((0, 0, 1, 1, 1, 0), "title")],
                    }
                )
            reference = XKSearch.open(target, load_document=False)
            want = list(reference.search_ids("xka xkb", algorithm="scan"))
            assert want != before  # the update must change the answer
            # Every worker must now see the new generation: clear the
            # local cache between calls so each one reaches the pool.
            for _ in range(pool.size):
                got = list(system.search_ids("xka xkb", algorithm="scan"))
                assert got == want
                system.engine.cache.clear()
            reference.close()
        finally:
            pool.close()
            shared.close()
            system.close()


class TestDegradation:
    def test_dead_pool_falls_back_in_thread(self, index_dir):
        pool = WorkerPool(index_dir, workers=2, max_respawns=0)
        system = XKSearch.open(index_dir, load_document=False, cache=QueryCache())
        system.engine.attach_pool(pool)
        reference = XKSearch.open(index_dir, load_document=False)
        try:
            for handle in list(pool._workers):
                handle.process.kill()
                handle.process.join(timeout=5.0)
            # Requests still succeed, answered in-thread.
            for query in QUERIES:
                got = list(system.search_ids(query))
                want = list(reference.search_ids(query))
                assert got == want
            assert pool.dispatch_errors > 0
        finally:
            pool.close()
            system.close()
            reference.close()

    def test_closed_pool_raises_pool_error(self, index_dir):
        pool = WorkerPool(index_dir, workers=1)
        pool.close()
        with pytest.raises(PoolError):
            pool.execute("slca", ["xkmid"], "auto", 0)

    def test_worker_respawns_after_crash(self, index_dir):
        pool = WorkerPool(index_dir, workers=1)
        try:
            victim = pool._workers[0]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            with pytest.raises(PoolError):
                pool.execute("slca", ["xkmid"], "auto", 0)
            assert pool.respawns == 1
            assert pool.alive == 1
            # The respawned worker serves the next request.
            task = pool.execute("slca", ["xkmid"], "auto", 0)
            assert isinstance(task.ids, tuple)
        finally:
            pool.close()

    def test_telemetry_return_path(self, pooled):
        """Workers ship metric events + spans stamped with the parent's
        trace context; replaying them makes the parent registry exact."""
        from repro.obs.metrics import MetricsRegistry

        _, _, pool, _ = pooled
        task = pool.execute(
            "slca",
            ["xkmid", "xkbig"],
            "auto",
            0,
            trace_id="cafecafecafecafecafecafecafecafe",
            want_spans=True,
        )
        assert task.events, "worker shipped no metric events"
        names = {event[1] for event in task.events}
        assert "xks_queries_total" in names
        assert "xks_query_exec_ms" in names
        # The worker-side exec histogram observation carries the parent's
        # trace id — that's what restores exemplars for pooled queries.
        exec_events = [
            event for event in task.events
            if event[0] == "h" and event[1] == "xks_query_exec_ms"
        ]
        assert exec_events
        assert all(
            event[7] == "cafecafecafecafecafecafecafecafe"
            for event in exec_events
        )
        # Spans: a worker-attributed root wrapping the execution.
        assert task.spans is not None
        assert task.spans["name"] == "worker"
        assert task.spans["attrs"]["worker"] == task.worker
        child_names = {child["name"] for child in task.spans["children"]}
        assert "worker.execute" in child_names
        # Replaying the events into a fresh registry reproduces the
        # worker's counters, exemplar included.
        registry = MetricsRegistry()
        applied = registry.replay_events(task.events)
        assert applied == len(task.events)
        rendered = registry.render()
        assert "xks_queries_total" in rendered
        assert "cafecafecafecafecafecafecafecafe" in rendered

    def test_spans_off_by_default(self, pooled):
        _, _, pool, _ = pooled
        task = pool.execute("slca", ["xkmid"], "auto", 0)
        assert task.spans is None
        assert task.events  # telemetry events always ship

    def test_collect_snapshots_round_trip(self, pooled):
        _, _, pool, _ = pooled
        pool.execute("slca", ["xkmid"], "auto", 0)
        snapshots = pool.collect_snapshots()
        assert len(snapshots) == pool.size
        for payload in snapshots:
            assert payload["pid"] > 0
            assert isinstance(payload["samples"], list)
            assert payload["heap"]["tracing"] is False
        # Workers went back to the idle queue: the pool still serves.
        task = pool.execute("slca", ["xkmid"], "auto", 0)
        assert isinstance(task.ids, tuple)

    def test_worker_error_degrades_not_fails(self, pooled):
        system, reference, _, _ = pooled
        # An unknown semantics string makes the worker reply with an
        # error; pool.execute surfaces it as PoolError.
        with pytest.raises(PoolError, match="error"):
            system.engine.pool.execute("bogus", ["xkmid"], "auto", 0)
        # The pool stays healthy afterwards.
        got = list(system.search_ids("xkmid"))
        assert got == list(reference.search_ids("xkmid"))
