"""Unit tests for the specificity ranking."""

import pytest

from repro.xksearch.ranking import RankedResult, rank_results, score_result
from repro.xksearch.results import SearchResult
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import school_tree


def make_result(dewey, witnesses=None):
    return SearchResult(dewey, witnesses=witnesses or {})


class TestScore:
    def test_deeper_scores_higher(self):
        shallow = score_result(make_result((0, 1)), max_depth=5)
        deep = score_result(make_result((0, 1, 2, 3)), max_depth=5)
        assert deep.score > shallow.score

    def test_closer_witnesses_score_higher(self):
        near = make_result((0, 1), {"a": [(0, 1, 0)], "b": [(0, 1, 1)]})
        far = make_result((0, 2), {"a": [(0, 2, 0, 0, 0)], "b": [(0, 2, 1, 1, 1)]})
        near_score = score_result(near, max_depth=5)
        far_score = score_result(far, max_depth=5)
        assert near_score.mean_witness_distance < far_score.mean_witness_distance
        assert near_score.score > far_score.score

    def test_more_witnesses_break_ties(self):
        one = make_result((0, 1), {"a": [(0, 1, 0)], "b": [(0, 1, 1)]})
        many = make_result((0, 2), {"a": [(0, 2, 0), (0, 2, 2)], "b": [(0, 2, 1)]})
        assert score_result(many, 5).score > score_result(one, 5).score

    def test_score_bounded(self):
        result = make_result((0, 1, 2), {"a": [(0, 1, 2)]})
        ranked = score_result(result, max_depth=3)
        assert 0 < ranked.score <= 1

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            score_result(make_result((0,)), 3, depth_weight=0.9, proximity_weight=0.9)

    def test_no_witnesses_still_scores(self):
        ranked = score_result(make_result((0, 1)), max_depth=3)
        assert ranked.witness_count == 0
        assert ranked.score > 0


class TestRankResults:
    def test_sorted_best_first(self):
        results = [
            make_result((0, 0), {"a": [(0, 0, 1, 1)]}),
            make_result((0, 1, 2), {"a": [(0, 1, 2, 0)]}),
        ]
        ranked = rank_results(results)
        assert [r.dewey for r in ranked] == [(0, 1, 2), (0, 0)]

    def test_ties_break_by_document_order(self):
        results = [
            make_result((0, 5), {"a": [(0, 5, 0)]}),
            make_result((0, 1), {"a": [(0, 1, 0)]}),
        ]
        ranked = rank_results(results)
        assert [r.dewey for r in ranked] == [(0, 1), (0, 5)]

    def test_empty(self):
        assert rank_results([]) == []

    def test_explicit_max_depth(self):
        results = [make_result((0, 1))]
        ranked = rank_results(results, max_depth=10)
        assert ranked[0].depth == 2

    def test_str(self):
        (ranked,) = rank_results([make_result((0, 1))])
        assert "score=" in str(ranked)


class TestSystemIntegration:
    def test_search_ranked_school(self):
        system = XKSearch.from_tree(school_tree())
        ranked = system.search_ranked("john ben")
        # The Project answer is deeper than the Class answers: best first.
        assert ranked[0].dewey == (0, 2, 0)
        assert {r.dewey for r in ranked} == {(0, 0), (0, 1), (0, 2, 0)}
        assert ranked[0].score >= ranked[-1].score

    def test_search_ranked_limit(self):
        system = XKSearch.from_tree(school_tree())
        assert len(system.search_ranked("john ben", limit=1)) == 1
