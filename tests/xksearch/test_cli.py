"""Unit tests for the command-line interface (in-process)."""

import pytest

from repro.xksearch.cli import main
from repro.xmltree.generate import school_xml


@pytest.fixture
def school_file(tmp_path):
    path = tmp_path / "school.xml"
    path.write_text(school_xml(), encoding="utf-8")
    return str(path)


@pytest.fixture
def index_dir(school_file, tmp_path):
    target = str(tmp_path / "idx")
    assert main(["build", school_file, target]) == 0
    return target


class TestBuild:
    def test_build_reports_counts(self, school_file, tmp_path, capsys):
        assert main(["build", school_file, str(tmp_path / "i")]) == 0
        out = capsys.readouterr().out
        assert "postings" in out and "keywords" in out

    def test_build_custom_page_size(self, school_file, tmp_path, capsys):
        assert main(["build", school_file, str(tmp_path / "i"), "--page-size", "512"]) == 0
        assert "512" in capsys.readouterr().out

    def test_build_varint_codec(self, school_file, tmp_path, capsys):
        assert main(["build", school_file, str(tmp_path / "i"), "--codec", "varint"]) == 0
        assert "varint" in capsys.readouterr().out

    def test_build_missing_file_fails(self, tmp_path, capsys):
        rc = main(["build", str(tmp_path / "ghost.xml"), str(tmp_path / "i")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_build_bad_xml_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b></a>", encoding="utf-8")
        rc = main(["build", str(bad), str(tmp_path / "i")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestSearch:
    def test_search_prints_answers(self, index_dir, capsys):
        assert main(["search", index_dir, "John Ben"]) == 0
        out = capsys.readouterr().out
        assert "3 SLCA answer(s)" in out
        assert "0.2.0" in out

    def test_search_ids_only(self, index_dir, capsys):
        assert main(["search", index_dir, "John Ben", "--ids-only"]) == 0
        out = capsys.readouterr().out
        assert "<Class>" not in out

    def test_search_limit(self, index_dir, capsys):
        assert main(["search", index_dir, "John Ben", "--limit", "1"]) == 0
        assert "1 SLCA answer(s)" in capsys.readouterr().out

    def test_search_algorithm_flag(self, index_dir, capsys):
        assert main(["search", index_dir, "John Ben", "--algorithm", "stack"]) == 0
        assert "algorithm=stack" in capsys.readouterr().out

    def test_search_lca_mode(self, index_dir, capsys):
        assert main(["search", index_dir, "John Ben", "--lca"]) == 0
        assert "4 LCA answer(s)" in capsys.readouterr().out

    def test_search_no_hits(self, index_dir, capsys):
        assert main(["search", index_dir, "zebra quux"]) == 0
        assert "0 SLCA answer(s)" in capsys.readouterr().out

    def test_search_missing_index_errors(self, tmp_path, capsys):
        rc = main(["search", str(tmp_path / "ghost"), "x"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestStats:
    def test_stats_output(self, index_dir, capsys):
        assert main(["stats", index_dir]) == 0
        out = capsys.readouterr().out
        assert "codec: packed" in out
        assert "postings" in out

    def test_stats_top_keywords(self, index_dir, capsys):
        assert main(["stats", index_dir, "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "top 2 keywords" in out
