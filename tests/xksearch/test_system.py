"""End-to-end tests for the XKSearch facade."""

import os

import pytest

from repro.xksearch.engine import ExecutionStats
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import school_xml


@pytest.fixture
def school_file(tmp_path):
    path = tmp_path / "school.xml"
    path.write_text(school_xml(), encoding="utf-8")
    return path


class TestBuildAndOpen:
    def test_build_from_file(self, school_file, tmp_path):
        with XKSearch.build(school_file, tmp_path / "idx") as system:
            assert len(system.search("john ben")) == 3

    def test_build_from_tree(self, school, tmp_path):
        with XKSearch.build(school, tmp_path / "idx") as system:
            assert len(system.search("john ben")) == 3

    def test_reopen_matches_fresh_build(self, school_file, tmp_path):
        XKSearch.build(school_file, tmp_path / "idx").close()
        with XKSearch.open(tmp_path / "idx") as system:
            results = system.search("john ben")
            assert [r.dewey for r in results] == [(0, 0), (0, 1), (0, 2, 0)]
            assert results[0].snippet is not None

    def test_open_without_document(self, school_file, tmp_path):
        XKSearch.build(school_file, tmp_path / "idx", keep_document=False).close()
        with XKSearch.open(tmp_path / "idx") as system:
            results = system.search("john ben")
            assert results[0].snippet is None
            assert [r.dewey for r in results] == [(0, 0), (0, 1), (0, 2, 0)]

    def test_open_load_document_false(self, school_file, tmp_path):
        XKSearch.build(school_file, tmp_path / "idx").close()
        with XKSearch.open(tmp_path / "idx", load_document=False) as system:
            assert system.tree is None
            assert len(system.search("john ben")) == 3

    def test_from_tree_no_disk(self, school):
        system = XKSearch.from_tree(school)
        assert len(system.search("john ben")) == 3
        system.close()  # no-op for memory index


class TestSearchSurface:
    def test_limit(self, school):
        system = XKSearch.from_tree(school)
        assert len(system.search("john ben", limit=2)) == 2

    def test_search_ids_streams(self, school):
        system = XKSearch.from_tree(school)
        stream = system.search_ids("john ben")
        assert next(stream) == (0, 0)

    def test_search_with_stats(self, school):
        system = XKSearch.from_tree(school)
        stats = ExecutionStats()
        list(system.search_ids("john ben", algorithm="il", stats=stats))
        assert stats.counters.results == 3

    def test_all_lcas(self, school):
        system = XKSearch.from_tree(school)
        results = system.search_all_lcas("john ben")
        assert [r.dewey for r in results] == [(0,), (0, 0), (0, 1), (0, 2, 0)]
        assert results[0].path == "School"

    def test_explain(self, school):
        system = XKSearch.from_tree(school)
        plan = system.explain("title john")
        assert plan.keywords[0] == "john"  # 3 < 4

    def test_algorithms_agree(self, school):
        system = XKSearch.from_tree(school)
        want = [r.dewey for r in system.search("john ben", algorithm="il")]
        for algorithm in ("scan", "stack"):
            got = [r.dewey for r in system.search("john ben", algorithm=algorithm)]
            assert got == want

    def test_query_with_absent_word(self, school):
        system = XKSearch.from_tree(school)
        assert system.search("john xyzzy") == []

    def test_witnesses_on_results(self, school):
        system = XKSearch.from_tree(school)
        result = system.search("john ben")[0]
        assert result.witnesses["john"] == [(0, 0, 1, 0)]
