"""Unit tests for the query engine."""

import pytest

from repro.errors import QueryError
from repro.index.memory import MemoryKeywordIndex
from repro.xksearch.engine import (
    DEFAULT_SKEW_THRESHOLD,
    ExecutionStats,
    QueryEngine,
    normalize_query,
)


@pytest.fixture
def engine(school):
    return QueryEngine(MemoryKeywordIndex.from_tree(school))


class TestNormalizeQuery:
    def test_string_tokenized(self):
        assert normalize_query("John, Ben!") == ["john", "ben"]

    def test_sequence_tokenized(self):
        assert normalize_query(["John", "Ben Smith"]) == ["john", "ben", "smith"]

    def test_duplicates_collapse(self):
        assert normalize_query("john JOHN ben") == ["john", "ben"]

    def test_empty_raises(self):
        with pytest.raises(QueryError):
            normalize_query("  ,,, ")

    def test_empty_list_raises(self):
        with pytest.raises(QueryError):
            normalize_query([])


class TestPlanning:
    def test_rarest_keyword_leads(self, engine):
        plan = engine.plan("class john")  # class:2, john:3
        assert plan.keywords == ["class", "john"]
        assert plan.frequencies == [2, 3]

    def test_missing_keyword_marks_empty(self, engine):
        plan = engine.plan("john zebra")
        assert plan.empty
        assert plan.frequencies[0] == 0

    def test_auto_picks_scan_for_similar_frequencies(self, engine):
        plan = engine.plan("john ben")  # 3 vs 3
        assert plan.algorithm == "scan"

    def test_auto_picks_il_for_skewed_frequencies(self):
        lists = {
            "rare": [(0, 1)],
            "common": [(0, i, 0) for i in range(50)],
        }
        engine = QueryEngine(MemoryKeywordIndex(lists))
        plan = engine.plan("rare common")
        assert plan.skew == 50.0 >= DEFAULT_SKEW_THRESHOLD
        assert plan.algorithm == "il"

    def test_explicit_algorithm_respected(self, engine):
        assert engine.plan("john ben", algorithm="stack").algorithm == "stack"

    def test_unknown_algorithm_rejected(self, engine):
        with pytest.raises(QueryError, match="unknown algorithm"):
            engine.plan("john", algorithm="magic")

    def test_skew_with_empty_list_is_inf(self, engine):
        assert engine.plan("john zebra").skew == float("inf")

    def test_custom_threshold(self):
        lists = {"a": [(0, 1)], "b": [(0, 1), (0, 2)]}
        engine = QueryEngine(MemoryKeywordIndex(lists), skew_threshold=2.0)
        assert engine.plan("a b").algorithm == "il"


class TestExecution:
    def test_paper_example_all_algorithms(self, engine):
        want = [(0, 0), (0, 1), (0, 2, 0)]
        for algorithm in ("auto", "il", "scan", "stack"):
            assert list(engine.execute("john ben", algorithm)) == want, algorithm

    def test_missing_keyword_gives_empty(self, engine):
        assert list(engine.execute("john zebra")) == []

    def test_single_keyword(self, engine):
        got = list(engine.execute("john"))
        assert len(got) == 3  # three disjoint John nodes

    def test_stats_populated(self, engine):
        stats = ExecutionStats()
        list(engine.execute("john ben", "il", stats))
        assert stats.counters.candidates == 3
        assert stats.counters.match_ops > 0

    def test_execute_plan_directly(self, engine):
        plan = engine.plan("john ben", algorithm="stack")
        assert list(engine.execute_plan(plan)) == [(0, 0), (0, 1), (0, 2, 0)]

    def test_execute_all_lca(self, engine):
        got = sorted(engine.execute_all_lca("john ben"))
        assert got == [(0,), (0, 0), (0, 1), (0, 2, 0)]

    def test_execute_all_lca_missing_keyword(self, engine):
        assert list(engine.execute_all_lca("john zebra")) == []

    def test_results_streamed(self, engine):
        stream = engine.execute("john ben", "il")
        assert next(stream) == (0, 0)


class TestTypeHints:
    def test_queryplan_annotations_resolve(self):
        # Regression: QueryPlan's annotations reference Dict; the module
        # must import every name its annotations use, or postponed
        # evaluation (PEP 563) blows up on resolution.
        from typing import get_type_hints

        import repro.xksearch.engine as engine_module
        from repro.xksearch.engine import QueryPlan

        hints = get_type_hints(QueryPlan, vars(engine_module))
        assert "filtered" in hints and "keywords" in hints


class TestExecuteMany:
    def test_batch_matches_singles(self, engine):
        queries = ["john ben", "class smith", "john", "ben john"]
        batch = engine.execute_many(queries)
        assert batch == [list(engine.execute(q)) for q in queries]

    def test_batch_rejects_unknown_algorithm(self, engine):
        with pytest.raises(QueryError):
            engine.execute_many(["john"], algorithm="warp")

    def test_batch_accumulates_stats(self, engine):
        stats = ExecutionStats()
        engine.execute_many(["john ben", "ben john"], stats=stats)
        assert stats.counters.lca_ops > 0

    def test_results_are_defensive_copies(self, engine):
        # Two queries deduplicating to the same answer must get
        # independent lists: mutating one cannot corrupt the other.
        batch = engine.execute_many(["john ben", "ben john", "john ben"])
        assert batch[0] == batch[1] == batch[2]
        assert batch[0] is not batch[1] and batch[0] is not batch[2]
        pristine = list(batch[1])
        batch[0].append(("poison",))
        batch[0][0] = ("clobbered",)
        assert batch[1] == pristine
        assert batch[2] == pristine

    def test_mutation_does_not_corrupt_cache(self, school):
        from repro.xksearch.cache import QueryCache

        cached = QueryEngine(MemoryKeywordIndex.from_tree(school), cache=QueryCache())
        first = cached.execute_many(["john ben"])[0]
        pristine = list(first)
        first.append(("poison",))
        # A later batch served from the cache is unaffected.
        again = cached.execute_many(["ben john"])[0]
        assert again == pristine
        assert list(cached.execute("john ben")) == pristine
