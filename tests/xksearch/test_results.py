"""Unit tests for result decoration."""

from repro.xksearch.results import SearchResult, decorate_result
from repro.xmltree.dewey import Dewey


class TestDecoration:
    def test_bare_result_without_tree(self):
        result = decorate_result((0, 1), None)
        assert result.dewey == (0, 1)
        assert result.path is None
        assert result.snippet is None

    def test_path_skips_text_nodes(self, school):
        result = decorate_result((0, 0, 1, 0), school)
        # the text node "John": path shows element chain only
        assert result.path == "School/Class/Instructor"

    def test_snippet_contains_subtree(self, school):
        result = decorate_result((0, 0), school)
        assert "<Class>" in result.snippet
        assert "John" in result.snippet and "Ben" in result.snippet

    def test_snippet_truncated(self, school):
        result = decorate_result((0,), school, snippet_limit=30)
        assert len(result.snippet) <= 31
        assert result.snippet.endswith("…")

    def test_witnesses_collected(self, school):
        lists = school.keyword_lists()
        result = decorate_result(
            (0, 0), school, keywords=["john", "ben"], keyword_lists=lists
        )
        assert result.witnesses["john"] == [(0, 0, 1, 0)]
        assert result.witnesses["ben"] == [(0, 0, 2, 0)]

    def test_witnesses_scoped_to_subtree(self, school):
        lists = school.keyword_lists()
        result = decorate_result(
            (0, 1), school, keywords=["john"], keyword_lists=lists
        )
        assert all(w[:2] == (0, 1) for w in result.witnesses["john"])


class TestSearchResult:
    def test_id_property(self):
        assert SearchResult((0, 1, 2)).id == Dewey((0, 1, 2))

    def test_str_with_path(self):
        result = SearchResult((0, 1), path="a/b")
        assert str(result) == "0.1 (a/b)"

    def test_str_without_path(self):
        assert str(SearchResult((0, 1))) == "0.1"
