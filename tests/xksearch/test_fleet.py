"""Fleet aggregation: heartbeat snapshots, liveness, crash/respawn."""

import multiprocessing
import time

import pytest

from repro.obs.fleet import FleetCollector
from repro.obs.metrics import MetricsRegistry
from repro.index.builder import build_index
from repro.xksearch.parallel import WorkerPool
from repro.xmltree.generate import dblp_like_tree, plant_keywords

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process pool requires the fork start method",
)


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory):
    tree = dblp_like_tree(7, venues=3, years_per_venue=3, papers_per_year=8)
    plant_keywords(tree, {"xkmid": 12, "xkbig": 30}, seed=7)
    target = tmp_path_factory.mktemp("fleet") / "idx"
    build_index(tree, target, page_size=1024)
    return target


def sample_map(registry):
    """{(name, worker-label): value} for every xks_worker_* sample."""
    out = {}
    for sample in registry.collect():
        if sample.name.startswith("xks_worker_"):
            out[(sample.name, sample.labels.get("worker"))] = sample.value
    return out


class TestFleetCollector:
    def test_poll_merges_every_worker(self, index_dir):
        registry = MetricsRegistry()
        pool = WorkerPool(index_dir, workers=2)
        fleet = FleetCollector(pool, registry=registry, heartbeat_s=0.1)

        def fleet_total(samples):
            return sum(
                value
                for (name, _), value in samples.items()
                if name == "xks_worker_queries_total"
            )

        try:
            # Forked workers inherit whatever this process's global
            # registry already counted — measure the increase, not the
            # absolute value.
            assert fleet.poll() == 2
            base = fleet_total(sample_map(registry))
            for _ in range(3):
                pool.execute("slca", ["xkmid", "xkbig"], "auto", 0)
            answered = fleet.poll()
            assert answered == 2
            samples = sample_map(registry)
            assert samples[("xks_worker_up", "0")] == 1.0
            assert samples[("xks_worker_up", "1")] == 1.0
            # Worker-side executions surface as per-worker rollups, and
            # the fleet total matches what the pool dispatched.
            assert fleet_total(samples) - base == 3.0
            for worker in ("0", "1"):
                assert samples[("xks_worker_snapshot_age_seconds", worker)] >= 0
        finally:
            fleet.close()
            pool.close()

    def test_crashed_worker_goes_down_respawn_appears(self, index_dir):
        registry = MetricsRegistry()
        pool = WorkerPool(index_dir, workers=1)
        fleet = FleetCollector(
            pool, registry=registry, heartbeat_s=5.0, stale_after_s=0.05
        )
        try:
            assert fleet.poll() == 1
            victim = pool._workers[0]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            # The dead worker is retired (and respawned) at the next
            # heartbeat — that pass yields no snapshot; the respawn, on a
            # fresh worker id, answers the one after.
            assert fleet.poll() == 0
            assert pool.respawns == 1
            assert fleet.poll() == 1
            samples = sample_map(registry)
            assert samples[("xks_worker_up", "1")] == 1.0  # the respawn
            time.sleep(0.06)
            samples = sample_map(registry)
            # Worker 0's last snapshot is now past stale_after_s.
            assert samples[("xks_worker_up", "0")] == 0.0
            assert samples[("xks_worker_up", "1")] in (0.0, 1.0)
        finally:
            fleet.close()
            pool.close()

    def test_statz_dict_shape(self, index_dir):
        registry = MetricsRegistry()
        pool = WorkerPool(index_dir, workers=1)
        fleet = FleetCollector(pool, registry=registry, heartbeat_s=0.1)
        try:
            fleet.poll()
            (entry,) = fleet.statz_dict()["workers"].values()
            base = entry["queries_total"]  # fork-inherited parent counts
            pool.execute("slca", ["xkmid"], "auto", 0)
            fleet.poll()
            payload = fleet.statz_dict()
            assert payload["heartbeat_s"] == 0.1
            assert payload["heartbeats"] == 2
            (entry,) = payload["workers"].values()
            assert entry["up"] is True
            assert entry["pid"] > 0
            assert entry["queries_total"] - base == 1.0
            assert "tracing" in entry["heap"]
            assert "top" not in entry["heap"]
        finally:
            fleet.close()
            pool.close()

    def test_heartbeat_thread_runs(self, index_dir):
        registry = MetricsRegistry()
        pool = WorkerPool(index_dir, workers=1)
        fleet = FleetCollector(pool, registry=registry, heartbeat_s=0.05)
        fleet.start()
        try:
            deadline = time.monotonic() + 5.0
            while fleet.heartbeats < 2 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert fleet.heartbeats >= 2
            assert sample_map(registry)[("xks_worker_up", "0")] == 1.0
        finally:
            fleet.close()
            pool.close()
        # close() unregisters the collector: no more fleet samples.
        assert sample_map(registry) == {}

    def test_merged_profile_sums_worker_stacks(self, index_dir):
        registry = MetricsRegistry()
        pool = WorkerPool(index_dir, workers=2, profile_hz=200.0)
        fleet = FleetCollector(pool, registry=registry, heartbeat_s=5.0)
        try:
            # Give the worker-side samplers time to take some stacks.
            deadline = time.monotonic() + 5.0
            merged = {}
            while time.monotonic() < deadline:
                fleet.poll()
                merged = fleet.merged_profile()
                if merged:
                    break
                time.sleep(0.05)
            assert merged, "no worker profiler stacks arrived"
            assert all(count > 0 for count in merged.values())
            samples = sample_map(registry)
            profile_total = sum(
                value
                for (name, _), value in samples.items()
                if name == "xks_worker_profile_samples_total"
            )
            assert profile_total > 0
        finally:
            fleet.close()
            pool.close()
