"""Unit tests for HTML rendering."""

from repro.xksearch.html import highlight, render_page, render_result
from repro.xksearch.results import SearchResult
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import school_tree


class TestHighlight:
    def test_marks_keywords_case_insensitively(self):
        out = highlight("John teaches Ben", ["john", "ben"])
        assert "<mark>John</mark>" in out
        assert "<mark>Ben</mark>" in out
        assert "teaches" in out and "<mark>teaches" not in out

    def test_whole_word_only(self):
        out = highlight("Benjamin Ben", ["ben"])
        assert out.count("<mark>") == 1
        assert "<mark>Ben</mark>" in out

    def test_escapes_html(self):
        out = highlight("<b>john & co</b>", ["john"])
        assert "&lt;b&gt;" in out
        assert "&amp;" in out
        assert "<b>" not in out

    def test_no_keywords(self):
        assert highlight("plain text", []) == "plain text"


class TestRenderResult:
    def test_contains_path_and_dewey(self):
        result = SearchResult((0, 1), path="School/Class", snippet="<Class/>")
        out = render_result(result, [])
        assert "School/Class" in out
        assert "(0.1)" in out

    def test_snippet_highlighted_and_escaped(self):
        result = SearchResult((0, 1), snippet="<Instructor>John</Instructor>")
        out = render_result(result, ["john"])
        assert "&lt;Instructor&gt;" in out
        assert "<mark>John</mark>" in out

    def test_witness_summary(self):
        result = SearchResult((0, 1), witnesses={"john": [(0, 1, 0)]})
        assert "john: 1" in render_result(result, ["john"])


class TestRenderPage:
    def test_landing_page(self):
        out = render_page("", [])
        assert "<form" in out
        assert "No subtree" not in out

    def test_empty_results_message(self):
        out = render_page("zebra", [])
        assert "No subtree contains all the keywords." in out

    def test_query_value_escaped_into_form(self):
        out = render_page('john" onmouseover="x', [])
        assert 'value="john&quot; onmouseover=&quot;x"' in out

    def test_full_search_page(self):
        system = XKSearch.from_tree(school_tree())
        plan = system.explain("john ben")
        results = system.search("john ben")
        out = render_page("john ben", results, plan=plan, elapsed_ms=0.5)
        assert out.count('<div class="result">') == 3
        assert "algorithm <b>scan</b>" in out
        assert "3 answer(s)" in out
        assert "<mark>John</mark>" in out
