"""End-to-end export proof: the collector dies mid-run, serving survives.

The acceptance contract for the trace export pipeline:

* every client request succeeds even while the collector is down —
  export is fully decoupled from the serving path;
* the exporter retries with backoff (retry counter > 0);
* after shutdown the accounting is exact — drop counters account for
  every span that was not delivered (``submitted == sent + dropped``);
* the trace ids that did reach the collector match the ``X-Trace-Id``
  headers the server returned for those requests.
"""

import http.server
import json
import threading
import time
import urllib.request

import pytest

from repro.obs.export import HttpCollectorSink, TraceExporter
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.xksearch.cache import QueryCache
from repro.xksearch.server import ServerMetrics, make_server
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import school_tree


class _CollectorHandler(http.server.BaseHTTPRequestHandler):
    def do_POST(self):
        length = int(self.headers.get("Content-Length", 0))
        payload = json.loads(self.rfile.read(length))
        self.server.received.extend(payload["records"])
        body = b'{"ok": true}'
        self.send_response(200)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


class StubCollector:
    """An in-process trace collector that can be killed mid-run."""

    def __init__(self):
        self.server = http.server.ThreadingHTTPServer(
            ("127.0.0.1", 0), _CollectorHandler
        )
        self.server.received = []
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()
        host, port = self.server.server_address
        self.url = f"http://{host}:{port}/v1/traces"

    @property
    def received(self):
        return self.server.received

    def kill(self):
        self.server.shutdown()
        self.server.server_close()
        self._thread.join(timeout=5)


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("export_e2e") / "idx"
    XKSearch.build(school_tree(), path).close()
    return path


def test_collector_killed_mid_run(index_dir):
    collector = StubCollector()
    exporter = TraceExporter(
        HttpCollectorSink(collector.url, timeout=1.0),
        flush_interval=0.02,
        max_retries=2,
        backoff_base=0.005,
        backoff_max=0.02,
        jitter=0.0,
        registry=MetricsRegistry(),
    )
    served_up, served_down = [], []
    with XKSearch.open(index_dir, cache=QueryCache()) as system:
        server = make_server(
            system,
            port=0,
            metrics=ServerMetrics(),
            tracer=Tracer(sample_rate=1.0),
            exporter=exporter,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        base = f"http://{host}:{port}"

        def search(query, trace_id):
            request = urllib.request.Request(
                f"{base}/api/search?q={query}",
                headers={"X-Trace-Id": trace_id},
            )
            with urllib.request.urlopen(request, timeout=10) as resp:
                assert resp.status == 200
                json.loads(resp.read())
                return resp.headers["X-Trace-Id"]

        try:
            # Phase 1: collector healthy — traces flow through.
            for i, query in enumerate(("John+Ben", "class+smith", "John+Smith")):
                served_up.append(search(query, f"aaaaaaaa{i:08x}"))
            # The handler submits the trace right after writing the response;
            # wait for all three submissions before flushing.
            deadline = time.monotonic() + 5.0
            while (
                time.monotonic() < deadline
                and exporter.stats.as_dict()["submitted"] < len(served_up)
            ):
                time.sleep(0.01)
            assert exporter.flush(timeout=5.0), "healthy-phase flush timed out"

            # Phase 2: the collector dies. Requests must keep succeeding.
            collector.kill()
            for i, query in enumerate(("John+Ben", "smith+zebra", "class+ben")):
                served_down.append(search(query, f"bbbbbbbb{i:08x}"))
        finally:
            server.shutdown()
            server.server_close()  # closes the exporter (flush-on-shutdown)
            thread.join(timeout=5)

    stats = exporter.stats.as_dict()
    # Every span is accounted for: sent or in a named drop bucket.
    assert stats["submitted"] == len(served_up) + len(served_down)
    assert stats["submitted"] == stats["sent"] + stats["dropped_total"], stats
    # The dead collector forced retries with backoff, then drops.
    assert stats["retries"] > 0, stats
    assert stats["dropped_total"] == len(served_down), stats
    assert stats["sent"] == len(served_up), stats
    # Surviving traces correlate with the served X-Trace-Id headers.
    exported_ids = [record["trace_id"] for record in collector.received]
    assert sorted(exported_ids) == sorted(served_up)
    assert all(record["kind"] == "trace" for record in collector.received)
    assert not set(exported_ids) & set(served_down)
