"""The paper's Section 1 worked example, end to end.

School.xml (Figure 1) with the query "John, Ben" must return exactly the
three most specific answers the paper describes: the class where Ben is a
TA for John, the class where Ben is a student of John's, and the project
where both are members — and *not* the School root or the Projects list,
which also contain both names but are not smallest.
"""

from repro.core import brute_slca, slca
from repro.xksearch.system import XKSearch


class TestWorkedExample:
    QUERY = "John Ben"
    EXPECTED = [(0, 0), (0, 1), (0, 2, 0)]

    def test_slca_set(self, school):
        lists = school.keyword_lists()
        assert slca([lists["john"], lists["ben"]]) == self.EXPECTED

    def test_agrees_with_definitional_brute_force(self, school):
        lists = school.keyword_lists()
        assert brute_slca([lists["john"], lists["ben"]]) == set(self.EXPECTED)

    def test_non_smallest_ancestors_excluded(self, school):
        lists = school.keyword_lists()
        answers = set(slca([lists["john"], lists["ben"]]))
        assert (0,) not in answers        # School contains both, not smallest
        assert (0, 2) not in answers      # Projects contains both, not smallest

    def test_end_to_end_meanings(self, school):
        system = XKSearch.from_tree(school)
        results = system.search(self.QUERY)
        stories = {r.dewey: r.snippet for r in results}
        assert "TA" in stories[(0, 0)]          # Ben is a TA for John
        assert "Student" in stories[(0, 1)]     # Ben studies under John
        assert "Member" in stories[(0, 2, 0)]   # both are project members

    def test_xquery_equivalent_semantics(self, school):
        """The paper's Figure 2 XQuery (smallest subtrees containing both
        keywords) — verified against a literal implementation of that
        semantics over the tree."""
        lists = school.keyword_lists()
        john, ben = set(lists["john"]), set(lists["ben"])

        def contains_both(node):
            subtree = {d.dewey for d in school.node(node).iter_subtree()}
            return subtree & john and subtree & ben

        answers = []
        for node in school:
            if not contains_both(node.dewey):
                continue
            if any(
                contains_both(child.dewey) for child in node.children
            ):
                continue
            answers.append(node.dewey)
        assert answers == self.EXPECTED

    def test_all_lca_adds_exactly_the_root(self, school):
        system = XKSearch.from_tree(school)
        lcas = [r.dewey for r in system.search_all_lcas(self.QUERY)]
        assert lcas == [(0,)] + self.EXPECTED

    def test_case_insensitivity(self, school):
        system = XKSearch.from_tree(school)
        assert [r.dewey for r in system.search("JOHN bEn")] == self.EXPECTED

    def test_sue_query_single_answer(self, school):
        """'Sue' appears once: her project is the only smallest answer for
        'sue databases'."""
        system = XKSearch.from_tree(school)
        results = system.search("sue databases")
        assert [r.dewey for r in results] == [(0, 2, 1)]
