"""Unit tests for multi-document collections."""

import pytest

from repro.errors import QueryError
from repro.xksearch.collection import XMLCollection
from repro.xmltree.generate import dblp_like_tree, plant_keywords, school_tree, school_xml
from repro.xmltree.parser import parse
from repro.xmltree.tree import renumber_subtree


@pytest.fixture
def collection():
    school = school_tree()
    dblp = dblp_like_tree(3, venues=2, years_per_venue=2, papers_per_year=4)
    plant_keywords(dblp, {"john": 2}, seed=1)
    return XMLCollection({"school.xml": school, "dblp.xml": dblp})


class TestRenumber:
    def test_renumber_rewrites_whole_subtree(self):
        tree = parse("<a><b><c/></b><d/></a>")
        renumber_subtree(tree.root, (0, 5))
        assert tree.root.dewey == (0, 5)
        assert tree.root.children[0].children[0].dewey == (0, 5, 0, 0)
        assert tree.root.children[1].dewey == (0, 5, 1)

    def test_renumber_keeps_document_order(self):
        tree = parse("<a><b>x</b><c><d/></c></a>")
        renumber_subtree(tree.root, (0, 2))
        deweys = [n.dewey for n in tree.root.iter_subtree()]
        assert deweys == sorted(deweys)

    def test_deep_tree_no_recursion_error(self):
        text = "<r>" + "<x>" * 3000 + "</x>" * 3000 + "</r>"
        import sys

        old = sys.getrecursionlimit()
        sys.setrecursionlimit(5000)
        try:
            tree = parse(text)
        finally:
            sys.setrecursionlimit(old)
        renumber_subtree(tree.root, (0, 1))
        assert tree.root.dewey == (0, 1)


class TestCollection:
    def test_documents_listed(self, collection):
        assert collection.documents == ["school.xml", "dblp.xml"]
        assert len(collection) == 2

    def test_answers_attributed_to_documents(self, collection):
        results = collection.search("john ben")
        assert all(r.document == "school.xml" for r in results)
        assert [r.dewey for r in results] == [(0, 0), (0, 1), (0, 2, 0)]

    def test_local_deweys_are_document_space(self, collection):
        result = collection.search("john ben")[0]
        # (0, 0) is the first Class *within School.xml*, not the global id.
        assert result.dewey == (0, 0)
        assert result.result.witnesses["john"] == [(0, 0, 1, 0)]

    def test_single_keyword_spans_documents(self, collection):
        docs = {r.document for r in collection.search("john")}
        assert docs == {"school.xml", "dblp.xml"}

    def test_cross_document_pseudo_answer_filtered(self):
        # "alpha" only in doc1, "beta" only in doc2: the only common
        # subtree is the collection root, which must be filtered out.
        doc1 = parse("<a>alpha</a>")
        doc2 = parse("<b>beta</b>")
        collection = XMLCollection({"one": doc1, "two": doc2})
        assert collection.search("alpha beta") == []

    def test_path_strips_collection_root(self, collection):
        result = collection.search("john ben")[0]
        assert result.result.path == "School/Class"

    def test_documents_matching(self, collection):
        assert collection.documents_matching("john ben") == ["school.xml"]

    def test_explain_uses_combined_frequencies(self, collection):
        plan = collection.explain("john")
        assert plan.frequencies == [5]  # 3 in school + 2 planted in dblp

    def test_limit(self, collection):
        assert len(collection.search("john ben", limit=2)) == 2

    def test_str_of_result(self, collection):
        result = collection.search("john ben")[0]
        assert str(result).startswith("school.xml: 0.0")

    def test_empty_collection_rejected(self):
        with pytest.raises(QueryError):
            XMLCollection({})

    def test_from_files(self, tmp_path):
        for name in ("a.xml", "b.xml"):
            (tmp_path / name).write_text(school_xml(), encoding="utf-8")
        collection = XMLCollection.from_files(
            [tmp_path / "a.xml", tmp_path / "b.xml"]
        )
        results = collection.search("john ben")
        # Both copies contain the same three answers.
        assert len(results) == 6
        assert {r.document for r in results} == {"a.xml", "b.xml"}

    def test_algorithms_agree_on_collection(self, collection):
        baseline = [(r.document, r.dewey) for r in collection.search("john", "il")]
        for algorithm in ("scan", "stack"):
            got = [(r.document, r.dewey) for r in collection.search("john", algorithm)]
            assert got == baseline
