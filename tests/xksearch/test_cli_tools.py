"""Unit tests for the auxiliary CLI commands (group / verify / analyze
pipeline chaining)."""

import pytest

from repro.xksearch.cli import main
from repro.xmltree.dblp import flat_dblp_tree
from repro.xmltree.serialize import serialize


@pytest.fixture
def flat_file(tmp_path):
    path = tmp_path / "flat.xml"
    path.write_text(serialize(flat_dblp_tree(seed=4, records=30).root), encoding="utf-8")
    return path


class TestGroupCommand:
    def test_group_writes_output(self, flat_file, tmp_path, capsys):
        out = tmp_path / "grouped.xml"
        assert main(["group", str(flat_file), str(out)]) == 0
        assert out.exists()
        assert "venues" in capsys.readouterr().out

    def test_grouped_output_parses_and_indexes(self, flat_file, tmp_path, capsys):
        out = tmp_path / "grouped.xml"
        main(["group", str(flat_file), str(out)])
        assert main(["build", str(out), str(tmp_path / "idx")]) == 0
        capsys.readouterr()
        assert main(["search", str(tmp_path / "idx"), "query sigmod", "--ids-only"]) == 0

    def test_group_missing_input(self, tmp_path, capsys):
        assert main(["group", str(tmp_path / "ghost.xml"), str(tmp_path / "o.xml")]) == 1
        assert "error:" in capsys.readouterr().err


class TestFullPipeline:
    def test_group_analyze_build_verify_search(self, flat_file, tmp_path, capsys):
        """The whole CLI surface chained: the paper's workflow end to end."""
        grouped = tmp_path / "grouped.xml"
        index_dir = tmp_path / "idx"
        assert main(["group", str(flat_file), str(grouped)]) == 0
        assert main(["analyze", str(grouped)]) == 0
        assert main(["build", str(grouped), str(index_dir)]) == 0
        assert main(["verify", str(index_dir)]) == 0
        capsys.readouterr()
        assert main(["search", str(index_dir), "xml search"]) == 0
        out = capsys.readouterr().out
        assert "answer(s)" in out
