"""Unit tests for the pager."""

import pytest

from repro.errors import PageError, StorageError
from repro.storage.pager import CostModel, IOStats, Pager


@pytest.fixture
def pager(tmp_path):
    with Pager(tmp_path / "test.db", page_size=256, create=True) as p:
        yield p


class TestLifecycle:
    def test_create_reserves_header_page(self, pager):
        assert pager.num_pages == 1

    def test_allocate_monotonic(self, pager):
        assert pager.allocate() == 1
        assert pager.allocate() == 2
        assert pager.num_pages == 3

    def test_write_read_roundtrip(self, pager):
        pid = pager.allocate()
        pager.write_page(pid, b"hello")
        assert pager.read_page(pid) == b"hello".ljust(256, b"\x00")

    def test_reopen_preserves_pages_and_meta(self, tmp_path):
        path = tmp_path / "persist.db"
        with Pager(path, page_size=256, create=True) as p:
            pid = p.allocate()
            p.write_page(pid, b"data")
            p.set_meta("root", pid)
        with Pager(path) as p:
            assert p.page_size == 256
            assert p.get_meta("root") == pid
            assert p.read_page(pid).startswith(b"data")

    def test_open_missing_path_creates(self, tmp_path):
        with Pager(tmp_path / "new.db", page_size=128) as p:
            assert p.num_pages == 1

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"not a pager file" + b"\x00" * 500)
        with pytest.raises(PageError, match="magic"):
            Pager(path)

    def test_context_manager_closes(self, tmp_path):
        p = Pager(tmp_path / "cm.db", create=True)
        with p:
            pass
        with pytest.raises(ValueError):
            p._file.read()


class TestBoundsChecks:
    def test_read_out_of_range(self, pager):
        with pytest.raises(PageError, match="out of range"):
            pager.read_page(5)

    def test_header_page_protected(self, pager):
        with pytest.raises(PageError):
            pager.read_page(0)
        with pytest.raises(PageError):
            pager.write_page(0, b"x")

    def test_oversized_write_rejected(self, pager):
        pid = pager.allocate()
        with pytest.raises(PageError, match="exceeds"):
            pager.write_page(pid, b"x" * 257)


class TestMeta:
    def test_meta_default(self, pager):
        assert pager.get_meta("absent") is None
        assert pager.get_meta("absent", 7) == 7

    def test_meta_overflow_detected(self, pager):
        with pytest.raises(StorageError, match="fit"):
            pager.set_meta("big", "x" * 400)


class TestStats:
    def test_read_counters(self, pager):
        a, b = pager.allocate(), pager.allocate()
        pager.write_page(a, b"a")
        pager.write_page(b, b"b")
        pager.stats.reset()
        pager.read_page(a)
        pager.read_page(b)   # sequential: b == a + 1
        pager.read_page(a)   # random: backwards
        assert pager.stats.reads == 3
        assert pager.stats.sequential_reads == 1
        assert pager.stats.random_reads == 2

    def test_reset_read_sequence(self, pager):
        a, b = pager.allocate(), pager.allocate()
        pager.write_page(a, b"a")
        pager.write_page(b, b"b")
        pager.stats.reset()
        pager.read_page(a)
        pager.reset_read_sequence()
        pager.read_page(b)   # would be sequential, but sequence was reset
        assert pager.stats.random_reads == 2

    def test_snapshot_and_delta(self, pager):
        pid = pager.allocate()
        pager.write_page(pid, b"x")
        before = pager.stats.snapshot()
        pager.read_page(pid)
        delta = pager.stats.delta(before)
        assert delta.reads == 1
        assert before.reads == pager.stats.reads - 1

    def test_write_counter(self, pager):
        pid = pager.allocate()
        start = pager.stats.writes
        pager.write_page(pid, b"x")
        assert pager.stats.writes == start + 1


class TestReadonlyMmap:
    """The zero-copy read mode pool workers use (Pager(readonly=True))."""

    @pytest.fixture
    def written(self, tmp_path):
        path = tmp_path / "ro.db"
        with Pager(path, page_size=256, create=True) as p:
            pids = [p.allocate() for _ in range(4)]
            for i, pid in enumerate(pids):
                p.write_page(pid, bytes([65 + i]) * 100)
            p.set_meta("root", pids[0])
        return path, pids

    def test_pages_identical_to_regular_pager(self, written):
        path, pids = written
        with Pager(path) as regular, Pager(path, readonly=True) as ro:
            assert ro.page_size == regular.page_size
            assert ro.num_pages == regular.num_pages
            for pid in pids:
                assert ro.read_page(pid) == regular.read_page(pid)
            assert ro.get_meta("root") == regular.get_meta("root")

    def test_pages_are_bytes(self, written):
        # B+tree bisect comparisons require bytes, not memoryview.
        path, pids = written
        with Pager(path, readonly=True) as ro:
            assert type(ro.read_page(pids[0])) is bytes

    def test_writes_rejected(self, written):
        path, pids = written
        with Pager(path, readonly=True) as ro:
            with pytest.raises(StorageError, match="readonly"):
                ro.write_page(pids[0], b"x")
            with pytest.raises(StorageError, match="readonly"):
                ro.allocate()
            with pytest.raises(StorageError, match="readonly"):
                ro.set_meta("k", 1)
            with pytest.raises(StorageError, match="readonly"):
                ro.sync()

    def test_sees_growth_after_reload(self, written):
        # An updater appends pages in another handle; the readonly mapping
        # must pick them up after reload_header (or a read past the map).
        path, pids = written
        with Pager(path, readonly=True) as ro:
            before = ro.num_pages
            with Pager(path) as writer:
                new_pid = writer.allocate()
                writer.write_page(new_pid, b"fresh")
                writer.sync()
            ro.reload_header()
            assert ro.num_pages == before + 1
            assert ro.read_page(new_pid).startswith(b"fresh")

    def test_read_counters_still_count(self, written):
        path, pids = written
        with Pager(path, readonly=True) as ro:
            ro.stats.reset()
            ro.read_page(pids[0])
            ro.read_page(pids[1])
            assert ro.stats.reads == 2

    def test_readonly_missing_file_fails(self, tmp_path):
        with pytest.raises(StorageError):
            Pager(tmp_path / "absent.db", readonly=True)


class TestCostModel:
    def test_charges_by_kind(self):
        model = CostModel(random_ms=5.0, sequential_ms=1.0)
        stats = IOStats(reads=5, sequential_reads=3, random_reads=2)
        assert model.charge(stats) == pytest.approx(2 * 5.0 + 3 * 1.0)

    def test_zero_reads_zero_cost(self):
        assert CostModel().charge(IOStats()) == 0.0
