"""Stateful model-based testing of the B+tree.

Hypothesis drives random interleavings of insert / overwrite / delete /
search / floor / ceiling / scan against a plain dict+sorted-list model;
any divergence (including after node splits and emptied leaves) fails with
a minimized command sequence.
"""

import bisect

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager

keys_st = st.binary(min_size=1, max_size=6)
values_st = st.binary(max_size=5)


class BPlusTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        import tempfile

        self._dir = tempfile.TemporaryDirectory(prefix="bptree-state-")
        # Tiny pages force frequent splits; tiny pool forces real paging.
        self.pager = Pager(f"{self._dir.name}/t.db", page_size=128, create=True)
        self.pool = BufferPool(self.pager, capacity=8)
        self.tree = BPlusTree(self.pool, "m")
        self.model = {}

    def teardown(self):
        self.pager.close()
        self._dir.cleanup()

    @rule(key=keys_st, value=values_st)
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=keys_st)
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=keys_st)
    def search(self, key):
        assert self.tree.search(key) == self.model.get(key)

    @rule(probe=st.binary(max_size=7))
    def floor(self, probe):
        ordered = sorted(self.model)
        i = bisect.bisect_right(ordered, probe)
        expected = ordered[i - 1] if i else None
        got = self.tree.floor_entry(probe)
        assert (got[0] if got else None) == expected

    @rule(probe=st.binary(max_size=7))
    def ceiling(self, probe):
        ordered = sorted(self.model)
        i = bisect.bisect_left(ordered, probe)
        expected = ordered[i] if i < len(ordered) else None
        got = self.tree.ceiling_entry(probe)
        assert (got[0] if got else None) == expected

    @invariant()
    def scan_matches_model(self):
        assert [k for k, _ in self.tree.scan()] == sorted(self.model)

    @invariant()
    def values_match_model(self):
        for key, value in self.tree.scan():
            assert self.model[key] == value


TestBPlusTreeStateful = BPlusTreeMachine.TestCase
TestBPlusTreeStateful.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
