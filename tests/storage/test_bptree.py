"""Unit and model-based tests for the disk B+tree."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TreeCorruptError
from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager


@pytest.fixture
def tree(tmp_path):
    with Pager(tmp_path / "t.db", page_size=256, create=True) as pager:
        yield BPlusTree(BufferPool(pager, capacity=64), "t")


def fill(tree, n, prefix=b"k"):
    for i in range(n):
        tree.insert(prefix + b"%06d" % i, b"v%d" % i)


class TestInsertSearch:
    def test_empty_tree_search(self, tree):
        assert tree.search(b"missing") is None

    def test_single_entry(self, tree):
        tree.insert(b"a", b"1")
        assert tree.search(b"a") == b"1"

    def test_overwrite(self, tree):
        tree.insert(b"a", b"1")
        tree.insert(b"a", b"2")
        assert tree.search(b"a") == b"2"
        assert len(tree) == 1

    def test_many_entries_with_splits(self, tree):
        fill(tree, 500)
        assert tree.height > 1
        for i in (0, 1, 249, 499):
            assert tree.search(b"k%06d" % i) == b"v%d" % i

    def test_empty_value_allowed(self, tree):
        tree.insert(b"k", b"")
        assert tree.search(b"k") == b""

    def test_oversized_entry_rejected(self, tree):
        with pytest.raises(TreeCorruptError, match="cannot fit"):
            tree.insert(b"k", b"x" * 300)

    def test_random_insertion_order(self, tree):
        keys = [b"%04d" % i for i in range(300)]
        rng = random.Random(3)
        rng.shuffle(keys)
        for key in keys:
            tree.insert(key, key[::-1])
        assert [k for k, _ in tree.scan()] == sorted(keys)


class TestScan:
    def test_full_scan_sorted(self, tree):
        fill(tree, 200)
        keys = [k for k, _ in tree.scan()]
        assert keys == sorted(keys)
        assert len(keys) == 200

    def test_range_scan_bounds(self, tree):
        fill(tree, 100)
        got = [k for k, _ in tree.scan(b"k000010", b"k000020")]
        assert got == [b"k%06d" % i for i in range(10, 20)]

    def test_range_scan_start_between_keys(self, tree):
        fill(tree, 50)
        got = [k for k, _ in tree.scan(b"k000010x", b"k000013")]
        assert got == [b"k000011", b"k000012"]

    def test_scan_empty_range(self, tree):
        fill(tree, 50)
        assert list(tree.scan(b"z", b"zz")) == []

    def test_scan_empty_tree(self, tree):
        assert list(tree.scan()) == []


class TestFloorCeiling:
    def test_exact_match(self, tree):
        fill(tree, 50)
        assert tree.floor_entry(b"k000025")[0] == b"k000025"
        assert tree.ceiling_entry(b"k000025")[0] == b"k000025"

    def test_between_keys(self, tree):
        fill(tree, 50)
        assert tree.floor_entry(b"k000025x")[0] == b"k000025"
        assert tree.ceiling_entry(b"k000025x")[0] == b"k000026"

    def test_before_first(self, tree):
        fill(tree, 50)
        assert tree.floor_entry(b"a") is None
        assert tree.ceiling_entry(b"a")[0] == b"k000000"

    def test_after_last(self, tree):
        fill(tree, 50)
        assert tree.floor_entry(b"z")[0] == b"k000049"
        assert tree.ceiling_entry(b"z") is None

    def test_empty_tree(self, tree):
        assert tree.floor_entry(b"x") is None
        assert tree.ceiling_entry(b"x") is None

    def test_floor_crossing_leaf_boundary(self, tree):
        # Force multiple leaves, then probe just below each leaf's first key.
        fill(tree, 300)
        for pid in tree.leaf_page_ids()[1:]:
            leaf = tree._read_node(pid)
            first = leaf.keys[0]
            probe = first[:-1] + bytes([first[-1] - 1]) + b"\xff"
            result = tree.floor_entry(probe)
            assert result is not None
            assert result[0] <= probe

    @given(
        keys=st.sets(st.binary(min_size=1, max_size=6), min_size=1, max_size=120),
        probes=st.lists(st.binary(min_size=0, max_size=7), max_size=30),
    )
    @settings(
        max_examples=60,
        deadline=None,
        # Each example creates its own uniquely named pager file, so reusing
        # the function-scoped tmp_path across examples is safe.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_floor_ceiling_match_sorted_list_model(self, tmp_path, keys, probes):
        import bisect
        import uuid

        path = tmp_path / f"m{uuid.uuid4().hex}.db"
        with Pager(path, page_size=256, create=True) as pager:
            model = sorted(keys)
            t = BPlusTree(BufferPool(pager, capacity=64), "m")
            for key in model:
                t.insert(key, b"")
            for probe in probes:
                i = bisect.bisect_right(model, probe)
                want_floor = model[i - 1] if i else None
                j = bisect.bisect_left(model, probe)
                want_ceiling = model[j] if j < len(model) else None
                got_floor = t.floor_entry(probe)
                got_ceiling = t.ceiling_entry(probe)
                assert (got_floor[0] if got_floor else None) == want_floor
                assert (got_ceiling[0] if got_ceiling else None) == want_ceiling


class TestNeighbors:
    """``neighbors(key)`` = (floor_entry, ceiling_entry) in one descent."""

    def test_matches_two_calls(self, tree):
        fill(tree, 300)
        rng = random.Random(17)
        probes = [b"k%06d" % rng.randint(-5, 305) for _ in range(60)]
        probes += [p + b"x" for p in probes[:20]] + [b"a", b"z", b""]
        for probe in probes:
            floor, ceiling = tree.neighbors(probe)
            assert floor == tree.floor_entry(probe), probe
            assert ceiling == tree.ceiling_entry(probe), probe

    def test_empty_tree(self, tree):
        assert tree.neighbors(b"x") == (None, None)

    @given(
        keys=st.sets(st.binary(min_size=1, max_size=6), min_size=1, max_size=120),
        probes=st.lists(st.binary(min_size=0, max_size=7), max_size=30),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_matches_sorted_list_model(self, tmp_path, keys, probes):
        import bisect
        import uuid

        path = tmp_path / f"n{uuid.uuid4().hex}.db"
        with Pager(path, page_size=256, create=True) as pager:
            model = sorted(keys)
            t = BPlusTree(BufferPool(pager, capacity=64), "n")
            for key in model:
                t.insert(key, b"")
            for probe in probes:
                i = bisect.bisect_right(model, probe)
                j = bisect.bisect_left(model, probe)
                floor, ceiling = t.neighbors(probe)
                assert (floor[0] if floor else None) == (model[i - 1] if i else None)
                assert (ceiling[0] if ceiling else None) == (
                    model[j] if j < len(model) else None
                )

    def test_single_descent_reads_fewer_nodes(self, tree):
        # The memoized neighbors path must cost at most what the two
        # separate descents cost (it halves descents on the common
        # lm(x)+rm(x) probe pattern that IL issues).
        fill(tree, 2000)
        probe = b"k000999x"
        before = tree.node_reads
        tree.neighbors(probe)
        combined = tree.node_reads - before
        before = tree.node_reads
        tree.floor_entry(probe)
        tree.ceiling_entry(probe)
        separate = tree.node_reads - before
        assert combined <= separate


class TestBulkLoad:
    def test_bulk_load_roundtrip(self, tree):
        entries = [(b"%05d" % i, b"v") for i in range(1000)]
        assert tree.bulk_load(iter(entries)) == 1000
        assert [k for k, _ in tree.scan()] == [k for k, _ in entries]
        assert tree.search(b"00500") == b"v"

    def test_bulk_load_empty(self, tree):
        assert tree.bulk_load(iter([])) == 0
        assert list(tree.scan()) == []

    def test_bulk_load_single(self, tree):
        tree.bulk_load(iter([(b"only", b"1")]))
        assert tree.search(b"only") == b"1"
        assert tree.height == 1

    def test_bulk_load_requires_empty_tree(self, tree):
        tree.insert(b"a", b"1")
        with pytest.raises(TreeCorruptError, match="empty"):
            tree.bulk_load(iter([(b"b", b"2")]))

    def test_bulk_load_rejects_unsorted(self, tree):
        with pytest.raises(TreeCorruptError, match="sorted"):
            tree.bulk_load(iter([(b"b", b""), (b"a", b"")]))

    def test_bulk_load_rejects_duplicates(self, tree):
        with pytest.raises(TreeCorruptError, match="sorted"):
            tree.bulk_load(iter([(b"a", b""), (b"a", b"")]))

    def test_bulk_load_fill_factor_validation(self, tree):
        with pytest.raises(ValueError):
            tree.bulk_load(iter([]), fill_factor=0.01)

    def test_bulk_loaded_leaves_are_consecutive(self, tree):
        tree.bulk_load((b"%05d" % i, b"v" * 8) for i in range(2000))
        pids = tree.leaf_page_ids()
        assert pids == list(range(pids[0], pids[0] + len(pids)))

    def test_insert_after_bulk_load(self, tree):
        tree.bulk_load((b"%05d" % i, b"v") for i in range(100))
        tree.insert(b"00050x", b"new")
        keys = [k for k, _ in tree.scan(b"00050", b"00052")]
        assert keys == [b"00050", b"00050x", b"00051"]


class TestPersistenceAndSharing:
    def test_reopen(self, tmp_path):
        path = tmp_path / "p.db"
        with Pager(path, page_size=256, create=True) as pager:
            t = BPlusTree(BufferPool(pager, capacity=16), "p")
            fill(t, 300)
        with Pager(path) as pager:
            t = BPlusTree(BufferPool(pager, capacity=16), "p")
            assert t.search(b"k000123") == b"v123"
            assert len(t) == 300

    def test_two_trees_one_pager(self, tmp_path):
        with Pager(tmp_path / "two.db", page_size=256, create=True) as pager:
            pool = BufferPool(pager, capacity=64)
            a = BPlusTree(pool, "a")
            b = BPlusTree(pool, "b")
            a.insert(b"k", b"from-a")
            b.insert(b"k", b"from-b")
            assert a.search(b"k") == b"from-a"
            assert b.search(b"k") == b"from-b"

    def test_internal_and_leaf_page_ids_partition(self, tree):
        fill(tree, 500)
        internal = set(tree.internal_page_ids())
        leaves = set(tree.leaf_page_ids())
        assert internal.isdisjoint(leaves)
        assert tree._root_pid in internal or tree.height == 1

    def test_height_grows(self, tree):
        assert tree.height == 1
        fill(tree, 2000)
        assert tree.height >= 3


class TestInvariantChecker:
    def test_clean_tree_has_no_violations(self, tree):
        fill(tree, 400)
        assert tree.check_invariants() == []

    def test_bulk_loaded_tree_clean(self, tree):
        tree.bulk_load((b"%05d" % i, b"v") for i in range(1500))
        assert tree.check_invariants() == []

    def test_clean_after_mixed_insert_delete(self, tree):
        import random

        rng = random.Random(5)
        present = set()
        for _ in range(1500):
            key = b"%03d" % rng.randrange(400)
            if rng.random() < 0.6:
                tree.insert(key, b"v")
                present.add(key)
            else:
                tree.delete(key)
                present.discard(key)
        assert tree.check_invariants() == []
        assert [k for k, _ in tree.scan()] == sorted(present)

    def test_detects_injected_disorder(self, tree):
        fill(tree, 300)
        # Corrupt one leaf in place: swap two keys.
        pid = tree.leaf_page_ids()[1]
        leaf = tree._read_node(pid)
        leaf.keys[0], leaf.keys[1] = leaf.keys[1], leaf.keys[0]
        tree._write_node(pid, leaf)
        problems = tree.check_invariants()
        assert problems
        assert any("out of order" in p or "bound" in p for p in problems)
