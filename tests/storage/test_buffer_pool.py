"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager


@pytest.fixture
def pager(tmp_path):
    with Pager(tmp_path / "pool.db", page_size=128, create=True) as p:
        for i in range(10):
            pid = p.allocate()
            p.write_page(pid, bytes([i]) * 10)
        p.stats.reset()
        yield p


class TestCaching:
    def test_first_access_misses_second_hits(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get_page(1)
        pool.get_page(1)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert pager.stats.reads == 1

    def test_lru_eviction_order(self, pager):
        pool = BufferPool(pager, capacity=2)
        pool.get_page(1)
        pool.get_page(2)
        pool.get_page(1)      # refresh 1; 2 is now LRU
        pool.get_page(3)      # evicts 2
        pager.stats.reset()
        pool.get_page(1)
        assert pager.stats.reads == 0
        pool.get_page(2)
        assert pager.stats.reads == 1

    def test_eviction_counter(self, pager):
        pool = BufferPool(pager, capacity=2)
        for pid in (1, 2, 3, 4):
            pool.get_page(pid)
        assert pool.stats.evictions == 2

    def test_capacity_validation(self, pager):
        with pytest.raises(ValueError):
            BufferPool(pager, capacity=0)

    def test_put_page_write_through(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.put_page(1, b"fresh")
        assert pager.read_page(1).startswith(b"fresh")
        pager.stats.reset()
        assert pool.get_page(1).startswith(b"fresh")
        assert pager.stats.reads == 0

    def test_put_updates_cached_copy(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get_page(1)
        pool.put_page(1, b"newer")
        assert pool.get_page(1).startswith(b"newer")

    def test_hit_rate(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get_page(1)
        pool.get_page(1)
        pool.get_page(1)
        assert pool.stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_empty(self, pager):
        assert BufferPool(pager).stats.hit_rate == 0.0


class TestPinning:
    def test_pinned_pages_survive_eviction_pressure(self, pager):
        pool = BufferPool(pager, capacity=1)
        pool.pin(1)
        pool.get_page(2)
        pool.get_page(3)
        pager.stats.reset()
        pool.get_page(1)
        assert pager.stats.reads == 0

    def test_pinned_pages_survive_clear(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.pin(1)
        pool.get_page(2)
        pool.clear()
        pager.stats.reset()
        pool.get_page(1)
        assert pager.stats.reads == 0
        pool.get_page(2)
        assert pager.stats.reads == 1

    def test_clear_without_keep_pinned(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.pin(1)
        pool.clear(keep_pinned=False)
        pager.stats.reset()
        pool.get_page(1)
        assert pager.stats.reads == 1

    def test_pin_many_and_pinned_pages(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.pin_many([1, 2, 3])
        assert pool.pinned_pages == {1, 2, 3}

    def test_pin_already_cached_page(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get_page(1)
        pager.stats.reset()
        pool.pin(1)          # promotes without re-reading
        assert pager.stats.reads == 0
        assert 1 in pool.pinned_pages

    def test_unpin_all(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.pin(1)
        pool.unpin_all()
        pager.stats.reset()
        pool.get_page(1)
        assert pager.stats.reads == 1

    def test_put_to_pinned_page(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.pin(1)
        pool.put_page(1, b"pinned-new")
        assert pool.get_page(1).startswith(b"pinned-new")


class TestTemperature:
    def test_warm_preloads_without_stats(self, pager):
        pool = BufferPool(pager, capacity=8)
        pool.warm([1, 2, 3])
        assert pool.stats.misses == 0
        assert pager.stats.reads == 0  # warm-up I/O rolled back
        pool.get_page(2)
        assert pool.stats.hits == 1

    def test_clear_resets_read_sequence(self, pager):
        pool = BufferPool(pager, capacity=8)
        pool.get_page(1)
        pool.clear()
        pool.get_page(2)  # would be sequential after 1; clear made it random
        assert pager.stats.random_reads == 2

    def test_cached_pages_count(self, pager):
        pool = BufferPool(pager, capacity=8)
        pool.pin(1)
        pool.get_page(2)
        assert pool.cached_pages == 2
