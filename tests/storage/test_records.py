"""Unit tests for composite key/record encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexFormatError
from repro.storage import records


class TestKeywordEncoding:
    def test_roundtrip_through_posting_key(self):
        key = records.posting_key("john", b"\x01\x02")
        keyword, dewey = records.split_posting_key(key)
        assert keyword == "john"
        assert dewey == b"\x01\x02"

    def test_rejects_empty_keyword(self):
        with pytest.raises(IndexFormatError):
            records.encode_keyword("")

    def test_rejects_nul_in_keyword(self):
        with pytest.raises(IndexFormatError):
            records.encode_keyword("a\x00b")

    def test_split_rejects_malformed(self):
        with pytest.raises(IndexFormatError):
            records.split_posting_key(b"noseparator")

    def test_unicode_keyword(self):
        key = records.posting_key("café", b"\x05")
        assert records.split_posting_key(key) == ("café", b"\x05")


class TestOrdering:
    def test_postings_group_by_keyword_then_dewey(self):
        keys = [
            records.posting_key("a", b"\x09"),
            records.posting_key("ab", b"\x01"),
            records.posting_key("b", b"\x00"),
            records.posting_key("a", b"\x01"),
        ]
        ordered = sorted(keys)
        pairs = [records.split_posting_key(k) for k in ordered]
        assert pairs == [
            ("a", b"\x01"),
            ("a", b"\x09"),
            ("ab", b"\x01"),
            ("b", b"\x00"),
        ]

    def test_keyword_range_covers_exactly_its_postings(self):
        lo, hi = records.keyword_range("ab")
        inside = records.posting_key("ab", b"\xff\xff")
        outside_prefix = records.posting_key("abc", b"\x00")
        outside_prev = records.posting_key("aa", b"\xff")
        assert lo <= inside < hi
        assert not (lo <= outside_prefix < hi)
        assert not (lo <= outside_prev < hi)

    @given(
        kw1=st.text(alphabet="abcdefg0123", min_size=1, max_size=6),
        kw2=st.text(alphabet="abcdefg0123", min_size=1, max_size=6),
        suffix=st.binary(max_size=4),
    )
    @settings(max_examples=200)
    def test_range_isolation_property(self, kw1, kw2, suffix):
        lo, hi = records.keyword_range(kw1)
        key = records.posting_key(kw2, suffix)
        assert (lo <= key < hi) == (kw1 == kw2)


class TestBlocks:
    def test_pack_unpack_roundtrip(self):
        encodings = [b"", b"\x01", b"\x02\x03", b"\xff" * 10]
        assert records.unpack_block(records.pack_block(encodings)) == encodings

    def test_block_key_ordering(self):
        assert records.block_key("a", 0) < records.block_key("a", 1)
        assert records.block_key("a", 255) < records.block_key("a", 256)
        assert records.block_key("a", 99999) < records.block_key("b", 0)

    def test_oversized_encoding_rejected(self):
        with pytest.raises(IndexFormatError, match="too long"):
            records.pack_block([b"\x00" * 256])

    def test_truncated_block_rejected(self):
        good = records.pack_block([b"\x01\x02\x03"])
        with pytest.raises(IndexFormatError, match="truncated"):
            records.unpack_block(good[:-1])

    def test_empty_block(self):
        assert records.unpack_block(b"") == []
