"""Admission-gate shedding: watermarks, band preference, p99 trigger."""

import pytest

from repro.robustness.admission import EXPENSIVE_BANDS, AdmissionGate


def push_inflight(gate, depth):
    for _ in range(depth):
        gate.enter()


class TestInflightAccounting:
    def test_enter_exit(self):
        gate = AdmissionGate(soft_limit=2, hard_limit=4)
        assert gate.inflight == 0
        gate.enter()
        gate.enter()
        assert gate.inflight == 2
        gate.exit()
        assert gate.inflight == 1

    def test_exit_never_goes_negative(self):
        gate = AdmissionGate(soft_limit=2, hard_limit=4)
        gate.exit()
        assert gate.inflight == 0

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(soft_limit=0, hard_limit=4)
        with pytest.raises(ValueError):
            AdmissionGate(soft_limit=4, hard_limit=2)


class TestDecide:
    def test_admits_everything_under_soft(self):
        gate = AdmissionGate(soft_limit=4, hard_limit=8)
        push_inflight(gate, 4)
        for band in ("0", "1-9", "100-999", "1000+", None):
            assert gate.decide(band) is None
        assert gate.stats_dict()["admitted"] == 5

    def test_soft_sheds_only_expensive_bands(self):
        gate = AdmissionGate(soft_limit=4, hard_limit=100)
        push_inflight(gate, 5)
        for band in ("0", "1-9", "10-99"):
            assert gate.decide(band) is None, band
        for band in EXPENSIVE_BANDS:
            assert gate.decide(band) == "soft_limit", band

    def test_unknown_band_is_expensive(self):
        gate = AdmissionGate(soft_limit=4, hard_limit=100)
        push_inflight(gate, 5)
        assert gate.decide(None) == "soft_limit"

    def test_hard_sheds_everything(self):
        gate = AdmissionGate(soft_limit=2, hard_limit=4)
        push_inflight(gate, 5)
        for band in ("0", "1-9", "10-99", "1000+", None):
            assert gate.decide(band) == "hard_limit", band
        assert gate.stats_dict()["shed"] == 5

    def test_p99_watermark_sheds_expensive_when_idle(self):
        gate = AdmissionGate(
            soft_limit=100, hard_limit=200, p99_watermark_ms=10.0, p99_refresh_s=0.0
        )
        for _ in range(20):
            gate.note_latency(50.0)
        # Depth is zero, but the window p99 is way past the watermark:
        # expensive queries shed, cheap ones keep flowing.
        assert gate.decide("1000+") == "p99_watermark"
        assert gate.decide("0") is None

    def test_p99_recovers(self):
        gate = AdmissionGate(
            soft_limit=100, hard_limit=200, p99_watermark_ms=10.0,
            p99_refresh_s=0.0, window=8,
        )
        for _ in range(8):
            gate.note_latency(50.0)
        assert gate.decide("1000+") == "p99_watermark"
        for _ in range(8):  # fast requests push the slow ones out of the ring
            gate.note_latency(1.0)
        assert gate.decide("1000+") is None

    def test_window_p99_cached_between_refreshes(self):
        gate = AdmissionGate(
            soft_limit=1, hard_limit=2, p99_watermark_ms=10.0, p99_refresh_s=3600.0
        )
        assert gate.window_p99() == 0.0
        for _ in range(10):
            gate.note_latency(99.0)
        # Still inside the refresh interval: the cached (stale) value.
        assert gate.window_p99() == 0.0
