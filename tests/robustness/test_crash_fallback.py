"""Worker crashes under deadline: one answer, one fallback, no replay.

The satellite scenario from docs/ROBUSTNESS.md: a pool worker is killed
mid-query (fault injection) while the request carries an active
deadline.  The request must produce **exactly one** answer via in-thread
fallback, exactly one ``xks_pool_fallback_total`` increment, and no
duplicated telemetry (the dead worker shipped no events, so the parent's
op counters must match a clean single-threaded run exactly).
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.errors import PoolError
from repro.index.builder import build_index
from repro.obs.metrics import get_registry
from repro.robustness import faultinject
from repro.robustness.deadline import Deadline, bind_deadline
from repro.xksearch.parallel import WorkerPool
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import dblp_like_tree, plant_keywords

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process pool requires the fork start method",
)

QUERY = "xkrare xkbig"


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory):
    tree = dblp_like_tree(7, venues=3, years_per_venue=3, papers_per_year=8)
    plant_keywords(tree, {"xkrare": 4, "xkmid": 18, "xkbig": 50}, seed=11)
    target = tmp_path_factory.mktemp("crash") / "idx"
    build_index(tree, target, page_size=1024)
    return target


@pytest.fixture(autouse=True)
def disarm():
    faultinject.reset_plan()
    yield
    faultinject.reset_plan()


def fallback_total():
    metric = get_registry().get_metric("xks_pool_fallback_total")
    if metric is None:
        return 0
    return sum(child.value for _, child in metric.items())


class TestKillWorkerMidQuery:
    def test_one_answer_one_fallback_no_replay(self, index_dir):
        with XKSearch.open(index_dir, load_document=False) as reference:
            want = list(reference.search_ids(QUERY))
            reference_ops = _run_and_count(reference, QUERY)
        # The armed plan is inherited by the worker at fork: its first
        # task os._exit(1)s without a reply.
        faultinject.arm("kill-worker:times=1")
        pool = WorkerPool(index_dir, workers=1)
        faultinject.reset_plan()  # a respawned worker must be healthy
        system = XKSearch.open(index_dir, load_document=False)
        system.engine.attach_pool(pool)
        try:
            before_fallback = fallback_total()
            before_ops = _engine_ops(system)
            with bind_deadline(Deadline.after_ms(30_000)):
                got = list(system.search_ids(QUERY))
            # Exactly one answer, byte-identical to the clean run.
            assert got == want
            # Exactly one fallback increment.
            assert fallback_total() == before_fallback + 1
            # No duplicate telemetry: the dead worker shipped no events,
            # so the parent's op counters grew by exactly one in-thread
            # execution of this query.
            assert _engine_ops(system) - before_ops == reference_ops
            # The pool noticed the death and respawned within budget.
            stats = pool.stats_dict()
            assert stats["respawns"] == 1
            assert stats["alive"] == 1
        finally:
            system.close()
            pool.close()

    def test_pool_recovers_after_crash(self, index_dir):
        faultinject.arm("kill-worker:times=1")
        pool = WorkerPool(index_dir, workers=1)
        faultinject.reset_plan()
        system = XKSearch.open(index_dir, load_document=False)
        system.engine.attach_pool(pool)
        reference = XKSearch.open(index_dir, load_document=False)
        try:
            want = list(reference.search_ids(QUERY))
            assert list(system.search_ids(QUERY)) == want  # fallback run
            _wait_alive(pool)
            # The respawned worker serves the next query through the pool.
            assert list(system.search_ids("xkmid xkbig")) == list(
                reference.search_ids("xkmid xkbig")
            )
            assert sum(w["tasks"] for w in pool.stats_dict()["workers"]) > 0
        finally:
            reference.close()
            system.close()
            pool.close()


class TestRespawnBudgetDecay:
    def test_budget_decays_after_healthy_window(self, index_dir):
        # With instant decay, a burst budget of 1 still survives three
        # separate crashes: each death is outside the previous one's
        # window, so the budget resets before it is charged.
        pool = WorkerPool(
            index_dir, workers=1, max_respawns=1, respawn_reset_s=0.01
        )
        try:
            for round_no in range(3):
                _kill_current_worker(pool)
                with pytest.raises(PoolError):
                    pool.execute("slca", ["xkrare", "xkbig"], "auto", 0)
                _wait_alive(pool)
                assert pool.alive == 1, f"no respawn on round {round_no}"
                time.sleep(0.03)  # let the healthy window elapse
            assert pool.stats_dict()["respawns"] == 3
        finally:
            pool.close()

    def test_budget_still_bounds_crash_bursts(self, index_dir):
        # Without the healthy window elapsing, the budget is a hard burst
        # bound: the second rapid death is not respawned.
        pool = WorkerPool(
            index_dir, workers=1, max_respawns=1, respawn_reset_s=3600.0
        )
        try:
            _kill_current_worker(pool)
            with pytest.raises(PoolError):
                pool.execute("slca", ["xkrare", "xkbig"], "auto", 0)
            _wait_alive(pool)
            assert pool.alive == 1
            _kill_current_worker(pool)
            with pytest.raises(PoolError):
                pool.execute("slca", ["xkrare", "xkbig"], "auto", 0)
            assert pool.alive == 0
            assert pool.stats_dict()["respawn_budget_used"] == 1
        finally:
            pool.close()


def _engine_ops(system) -> float:
    return sum(system.engine.counter_totals()["_total"].values())


def _run_and_count(system, query) -> float:
    from repro.xksearch.engine import ExecutionStats

    stats = ExecutionStats()
    list(system.search_ids(query, stats=stats))
    return sum(stats.counters.as_dict().values())


def _kill_current_worker(pool):
    handle = pool._workers[-1]
    os.kill(handle.pid, signal.SIGKILL)
    handle.process.join(timeout=5)


def _wait_alive(pool, timeout_s: float = 5.0):
    deadline = time.monotonic() + timeout_s
    while pool.alive < 1 and time.monotonic() < deadline:
        time.sleep(0.01)
