"""Server-level robustness over real HTTP: 504s, shedding, 500 envelope."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import get_registry
from repro.robustness import faultinject
from repro.robustness.admission import AdmissionGate
from repro.xksearch.server import make_server
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import school_tree


@pytest.fixture()
def live_server():
    """(base url, server, system) with a small admission gate attached."""
    system = XKSearch.from_tree(school_tree())
    gate = AdmissionGate(soft_limit=2, hard_limit=4)
    server = make_server(system, port=0, gate=gate)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    yield f"http://{host}:{port}", server, system
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(autouse=True)
def disarm():
    faultinject.reset_plan()
    yield
    faultinject.reset_plan()


def fetch_json(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def counter_value(name, **labels):
    metric = get_registry().get_metric(name)
    if metric is None:
        return 0
    return metric.labels(**labels).value


def wait_for_counter(name, target, timeout_s=2.0, **labels):
    """Counters in do_GET's finally land *after* the response bytes do;
    poll briefly instead of racing the server thread."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = counter_value(name, **labels)
        if value >= target:
            return value
        time.sleep(0.01)
    return counter_value(name, **labels)


class TestDeadline504:
    def test_expired_deadline_fault_times_out(self, live_server):
        url, _, _ = live_server
        faultinject.arm("expired-deadline:times=1")
        before = counter_value("xks_deadline_exceeded_total", phase="admission")
        status, _, payload = fetch_json(
            f"{url}/api/search?q=John+Ben&timeout_ms=5000"
        )
        assert status == 504
        assert payload["error"] == "deadline exceeded"
        assert payload["phase"] == "admission"
        assert payload["trace_id"]
        assert (
            counter_value("xks_deadline_exceeded_total", phase="admission")
            == before + 1
        )

    def test_header_beats_query_param(self, live_server):
        # A 1µs header budget expires before the admission check runs,
        # regardless of the generous ?timeout_ms=.
        url, _, _ = live_server
        status, _, payload = fetch_json(
            f"{url}/api/search?q=John+Ben&timeout_ms=60000",
            headers={"X-Deadline-Ms": "0.001"},
        )
        assert status == 504
        assert payload["phase"] == "admission"

    def test_generous_deadline_answers_normally(self, live_server):
        url, _, _ = live_server
        status, _, payload = fetch_json(
            f"{url}/api/search?q=John+Ben&timeout_ms=30000"
        )
        assert status == 200
        assert payload["count"] == 3

    def test_malformed_timeout_is_ignored(self, live_server):
        url, _, _ = live_server
        status, _, payload = fetch_json(f"{url}/api/search?q=John+Ben&timeout_ms=pony")
        assert status == 200
        assert payload["count"] == 3


class TestOverloadShedding:
    def test_hard_limit_sheds_with_retry_after(self, live_server):
        url, server, _ = live_server
        gate = server.admission_gate
        # Fake a saturated server: push accounting past the hard limit.
        for _ in range(5):
            gate.enter()
        try:
            status, headers, payload = fetch_json(f"{url}/api/search?q=John+Ben")
            assert status == 429
            assert payload["error"] == "overloaded"
            assert payload["reason"] == "hard_limit"
            assert payload["trace_id"]
            assert headers["Retry-After"] == str(gate.retry_after_s)
        finally:
            for _ in range(5):
                gate.exit()

    def test_soft_limit_keeps_cheap_queries_flowing(self, live_server):
        url, server, _ = live_server
        gate = server.admission_gate
        for _ in range(3):  # past soft (2), under hard (4)
            gate.enter()
        try:
            # school_tree keyword queries sit in cheap |S1| bands.
            status, _, payload = fetch_json(f"{url}/api/search?q=John+Ben")
            assert status == 200
            assert payload["count"] == 3
        finally:
            for _ in range(3):
                gate.exit()

    def test_shed_requests_skip_the_latency_window(self, live_server):
        url, server, _ = live_server
        gate = server.admission_gate
        noted_before = gate.stats_dict()["shed"]
        p99_before = gate.window_p99()
        for _ in range(5):
            gate.enter()
        try:
            fetch_json(f"{url}/api/search?q=John+Ben")
        finally:
            for _ in range(5):
                gate.exit()
        assert gate.stats_dict()["shed"] == noted_before + 1
        # A shed (near-instant) response must not be fed into the latency
        # ring, where it would drag the p99 back under the watermark.
        assert gate.window_p99() == p99_before

    def test_statz_exposes_admission_stats(self, live_server):
        url, _, _ = live_server
        status, _, payload = fetch_json(f"{url}/statz")
        assert status == 200
        assert payload["admission"]["hard_limit"] == 4
        assert "inflight" in payload["admission"]


class TestInternalErrorEnvelope:
    def test_unexpected_exception_returns_500_envelope(self, live_server):
        url, _, system = live_server
        original = system.search_ids
        before = counter_value(
            "xks_http_requests_total", endpoint="/api/search", status="error"
        )

        def explode(*args, **kwargs):
            raise RuntimeError("synthetic storage wedge")

        system.search_ids = explode
        try:
            status, _, payload = fetch_json(f"{url}/api/search?q=John+Ben")
        finally:
            system.search_ids = original
        assert status == 500
        assert "internal error" in payload["error"]
        assert "RuntimeError" in payload["error"]
        assert payload["trace_id"]
        # Counted as an error exactly once.
        assert (
            wait_for_counter(
                "xks_http_requests_total",
                before + 1,
                endpoint="/api/search",
                status="error",
            )
            == before + 1
        )

    def test_error_envelope_never_leaks_a_traceback(self, live_server):
        url, _, system = live_server
        original = system.search_ids

        def explode(*args, **kwargs):
            raise ValueError("secret internal path /etc/xks")

        system.search_ids = explode
        try:
            _, _, payload = fetch_json(f"{url}/api/search?q=John+Ben")
        finally:
            system.search_ids = original
        assert "secret internal path" not in json.dumps(payload)


class TestDrain:
    def test_drain_idle_server_returns_zero(self, live_server):
        _, server, _ = live_server
        assert server.drain(timeout_s=0.2) == 0

    def test_drain_reports_stuck_inflight(self, live_server):
        _, server, _ = live_server
        gate = server.admission_gate
        gate.enter()  # a request that never finishes
        try:
            assert server.drain(timeout_s=0.1) == 1
        finally:
            gate.exit()
