"""Deadline mechanics: budgets, binding, checkpoints, cross-process form."""

import time

import pytest

from repro.errors import DeadlineExceeded, ReproError
from repro.robustness.deadline import (
    CHECK_STRIDE,
    Deadline,
    bind_deadline,
    checkpoint,
    current_deadline,
)
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import dblp_like_tree, plant_keywords


class TestDeadline:
    def test_fresh_deadline_not_expired(self):
        deadline = Deadline.after_ms(60_000)
        assert not deadline.expired()
        assert 59_000 < deadline.remaining_ms() <= 60_000
        deadline.check("execute")  # does not raise

    def test_zero_budget_expires_immediately(self):
        deadline = Deadline.after_ms(0.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("admission")
        assert excinfo.value.phase == "admission"
        assert isinstance(excinfo.value, ReproError)

    def test_tick_amortizes_clock_reads(self):
        deadline = Deadline.after_ms(0.0)
        # The first CHECK_STRIDE - 1 ticks never consult the clock, so an
        # expired deadline raises exactly at the stride boundary.
        for _ in range(CHECK_STRIDE - 1):
            deadline.tick("execute")
        with pytest.raises(DeadlineExceeded):
            deadline.tick("execute")

    def test_wall_expiry_round_trip(self):
        deadline = Deadline.after_ms(5_000)
        rebuilt = Deadline.from_wall_expiry(deadline.wall_expiry())
        # The round trip crosses monotonic -> wall -> monotonic; allow a
        # generous scheduling slop.
        assert abs(rebuilt.remaining_ms() - deadline.remaining_ms()) < 500
        assert not rebuilt.expired()

    def test_expired_wall_expiry_stays_expired(self):
        rebuilt = Deadline.from_wall_expiry(time.time() - 1.0)
        assert rebuilt.expired()


class TestBinding:
    def test_unbound_by_default(self):
        assert current_deadline() is None
        checkpoint("execute")  # no deadline bound: a no-op

    def test_bind_and_restore(self):
        deadline = Deadline.after_ms(1_000)
        with bind_deadline(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_nested_binding_restores_outer(self):
        outer, inner = Deadline.after_ms(1_000), Deadline.after_ms(500)
        with bind_deadline(outer):
            with bind_deadline(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_checkpoint_raises_through_binding(self):
        with bind_deadline(Deadline.after_ms(0.0)):
            with pytest.raises(DeadlineExceeded):
                for _ in range(CHECK_STRIDE):
                    checkpoint("execute")


class TestEngineCancellation:
    """The algorithm loops actually stop at an expired deadline."""

    @pytest.fixture(scope="class")
    def system(self):
        # Lists must be longer than CHECK_STRIDE so the per-entry
        # checkpoint actually consults the clock during one query.
        tree = dblp_like_tree(7, venues=6, years_per_venue=5, papers_per_year=12)
        plant_keywords(tree, {"xkmid": 300, "xkbig": 350}, seed=3)
        with XKSearch.from_tree(tree) as system:
            yield system

    @pytest.mark.parametrize("algorithm", ["il", "scan", "stack"])
    def test_expired_deadline_aborts_execution(self, system, algorithm):
        # The planted lists are big enough that the per-entry checkpoint
        # passes the CHECK_STRIDE boundary and notices the expiry.
        with bind_deadline(Deadline.after_ms(0.0)):
            with pytest.raises(DeadlineExceeded) as excinfo:
                list(system.search_ids("xkmid xkbig", algorithm=algorithm))
        assert excinfo.value.phase == "execute"

    def test_generous_deadline_leaves_answer_identical(self, system):
        want = list(system.search_ids("xkmid xkbig"))
        with bind_deadline(Deadline.after_ms(60_000)):
            got = list(system.search_ids("xkmid xkbig"))
        assert got == want
