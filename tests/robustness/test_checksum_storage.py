"""Checksummed storage: detection, quarantine, and transparent re-answer."""

import os

import pytest

from repro.errors import CorruptionError
from repro.index.builder import INDEX_FILE_NAME, build_index
from repro.index.segments import SegmentReader, segments_path
from repro.index.verify import fsck_index, verify_index
from repro.obs.metrics import get_registry
from repro.robustness.checksum import ALGORITHM, checksum
from repro.storage.pager import Pager, crc_sidecar_path
from repro.xksearch.system import XKSearch
from repro.xmltree.generate import dblp_like_tree, plant_keywords

QUERY = "xkrare xkbig"


def build(tmp_path):
    tree = dblp_like_tree(5, venues=3, years_per_venue=3, papers_per_year=8)
    plant_keywords(tree, {"xkrare": 4, "xkmid": 18, "xkbig": 40}, seed=11)
    target = tmp_path / "idx"
    build_index(tree, target, page_size=1024)
    return target


def corrupt_segment_block(index_dir, keyword):
    """Flip one bit inside *keyword*'s first posting block on disk."""
    path = segments_path(index_dir)
    with SegmentReader(path) as reader:
        start = reader.skip_table(keyword).starts[0]
    with open(path, "r+b") as fh:
        fh.seek(start)
        byte = fh.read(1)[0]
        fh.seek(start)
        fh.write(bytes([byte ^ 0x40]))


def corruption_count(tier):
    metric = get_registry().get_metric("xks_corruption_detected_total")
    if metric is None:
        return 0
    return metric.labels(tier=tier).value


class TestChecksumHelpers:
    def test_checksum_deterministic(self):
        assert checksum(b"hello", ALGORITHM) == checksum(b"hello", ALGORITHM)
        assert checksum(b"hello", ALGORITHM) != checksum(b"hellp", ALGORITHM)

    def test_checksum_is_32_bit(self):
        assert 0 <= checksum(b"x" * 10_000, ALGORITHM) < 2**32


class TestSegmentChecksums:
    def test_clean_read_verifies(self, tmp_path):
        index_dir = build(tmp_path)
        with SegmentReader(segments_path(index_dir), verify_checksums=True) as reader:
            assert reader.version >= 2
            for keyword in ("xkrare", "xkmid", "xkbig"):
                assert len(list(reader.scan(keyword))) > 0
            assert not reader.quarantined

    def test_corrupt_block_detected_and_quarantined(self, tmp_path):
        index_dir = build(tmp_path)
        corrupt_segment_block(index_dir, "xkmid")
        before = corruption_count("segment")
        with SegmentReader(segments_path(index_dir), verify_checksums=True) as reader:
            with pytest.raises(CorruptionError) as excinfo:
                list(reader.scan("xkmid"))
            assert excinfo.value.tier == "segment"
            assert reader.quarantined
        assert corruption_count("segment") == before + 1

    def test_unverified_reader_trusts_bytes(self, tmp_path):
        # Without --verify-checksums the corrupt bytes are only caught if
        # they break decoding; the flip may well go unnoticed — which is
        # exactly why the flag and the fsck sweep exist.
        index_dir = build(tmp_path)
        corrupt_segment_block(index_dir, "xkmid")
        with SegmentReader(segments_path(index_dir)) as reader:
            try:
                list(reader.scan("xkmid"))
            except CorruptionError:
                pass  # decode failure is an acceptable detection path too


class TestTransparentReanswer:
    def test_corrupt_segment_falls_back_to_bptree_byte_identical(self, tmp_path):
        index_dir = build(tmp_path)
        with XKSearch.open(index_dir, load_document=False) as reference:
            want = {
                q: list(reference.search_ids(q))
                for q in (QUERY, "xkmid xkbig", "xkrare xkmid")
            }
        corrupt_segment_block(index_dir, "xkrare")
        before = corruption_count("segment")
        with XKSearch.open(
            index_dir, load_document=False, verify_checksums=True
        ) as system:
            assert system.index.segments_active()
            for q, expected in want.items():
                assert list(system.search_ids(q)) == expected, q
            # The corrupt block was hit, quarantined, and every answer
            # came back byte-identical from the B+tree tier.
            assert not system.index.segments_active()
        assert corruption_count("segment") == before + 1

    def test_quarantine_persists_for_later_queries(self, tmp_path):
        index_dir = build(tmp_path)
        corrupt_segment_block(index_dir, "xkrare")
        with XKSearch.open(
            index_dir, load_document=False, verify_checksums=True
        ) as system:
            first = list(system.search_ids(QUERY))
            assert not system.index.segments_active()
            # Subsequent queries go straight to the B+trees — no second
            # corruption event, same answers.
            before = corruption_count("segment")
            assert list(system.search_ids(QUERY)) == first
            assert corruption_count("segment") == before


class TestPagerChecksums:
    def test_sidecar_written_at_build(self, tmp_path):
        index_dir = build(tmp_path)
        assert os.path.exists(
            crc_sidecar_path(os.path.join(index_dir, INDEX_FILE_NAME))
        )

    def test_corrupt_page_detected(self, tmp_path):
        index_dir = build(tmp_path)
        index_file = os.path.join(index_dir, INDEX_FILE_NAME)
        with open(index_file, "r+b") as fh:
            fh.seek(1024 + 17)  # inside data page 1 (page size 1024)
            byte = fh.read(1)[0]
            fh.seek(1024 + 17)
            fh.write(bytes([byte ^ 0x01]))
        before = corruption_count("bptree")
        with Pager(index_file, readonly=True, verify_checksums=True) as pager:
            with pytest.raises(CorruptionError) as excinfo:
                pager.read_page(1)
            assert excinfo.value.tier == "bptree"
        assert corruption_count("bptree") == before + 1

    def test_verification_off_by_default(self, tmp_path):
        index_dir = build(tmp_path)
        index_file = os.path.join(index_dir, INDEX_FILE_NAME)
        with open(index_file, "r+b") as fh:
            fh.seek(1024 + 17)
            byte = fh.read(1)[0]
            fh.seek(1024 + 17)
            fh.write(bytes([byte ^ 0x01]))
        with Pager(index_file, readonly=True) as pager:
            pager.read_page(1)  # trusted read: no checksum, no raise

    def test_rebuild_refreshes_sidecar(self, tmp_path):
        # Rebuilding into the same directory must not leave stale
        # checksums behind — a fresh build passes verification.
        index_dir = build(tmp_path)
        tree = dblp_like_tree(6, venues=2, years_per_venue=2, papers_per_year=5)
        plant_keywords(tree, {"xkrare": 3, "xkmid": 8, "xkbig": 12}, seed=2)
        build_index(tree, index_dir, page_size=1024)
        with XKSearch.open(
            index_dir, load_document=False, verify_checksums=True
        ) as system:
            assert list(system.search_ids("xkrare xkbig")) == list(
                system.search_ids("xkrare xkbig")
            )


class TestFsck:
    def test_clean_index_passes(self, tmp_path):
        index_dir = build(tmp_path)
        report = fsck_index(index_dir)
        assert report.ok, report.summary()
        # fsck runs strictly more checks than verify.
        assert report.checks > verify_index(index_dir).checks

    def test_fsck_catches_segment_corruption(self, tmp_path):
        index_dir = build(tmp_path)
        corrupt_segment_block(index_dir, "xkbig")
        report = fsck_index(index_dir)
        assert not report.ok
        assert any("segment block" in error for error in report.errors)

    def test_fsck_catches_page_corruption(self, tmp_path):
        index_dir = build(tmp_path)
        index_file = os.path.join(index_dir, INDEX_FILE_NAME)
        with open(index_file, "r+b") as fh:
            fh.seek(1024 + 900)  # padding-ish region structural checks miss
            byte = fh.read(1)[0]
            fh.seek(1024 + 900)
            fh.write(bytes([byte ^ 0x01]))
        report = fsck_index(index_dir)
        assert not report.ok
        assert any("page" in error for error in report.errors)
