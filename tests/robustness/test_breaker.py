"""Circuit breaker: closed -> open -> half-open -> closed transitions."""

import time

import pytest

from repro.robustness.breaker import CircuitBreaker

#: Short enough that tests never sleep noticeably, long enough that a
#: slow machine cannot race past it between two statements.
COOLDOWN = 0.01


def cooled(breaker):
    time.sleep(COOLDOWN * 2)
    return breaker


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # the streak never reached 3

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0.0)


class TestOpen:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0)
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_after_cooldown_admits_single_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=COOLDOWN)
        breaker.record_failure()
        assert breaker.state == "open"
        # Cooldown elapsed: exactly one probe gets through.
        assert cooled(breaker).allow()
        assert breaker.state == "half_open"
        assert not breaker.allow()  # second caller blocked while probing

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=COOLDOWN)
        breaker.record_failure()
        assert cooled(breaker).allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=COOLDOWN)
        breaker.record_failure()
        assert cooled(breaker).allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # a fresh cooldown started

    def test_stats_dict(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        breaker.record_failure()
        stats = breaker.stats_dict()
        assert stats["state"] == "open"
        assert stats["transitions"] == 1
        assert stats["consecutive_failures"] == 1
