"""Fault-injection grammar, schedules, determinism, arming."""

import os

import pytest

from repro.robustness import faultinject
from repro.robustness.faultinject import ENV_VAR, FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def disarm():
    faultinject.reset_plan()
    yield
    faultinject.reset_plan()


class TestParse:
    def test_bare_point(self):
        spec = FaultSpec.parse("kill-worker")
        assert spec.point == "kill-worker"
        assert spec.every == 1 and spec.after == 0 and spec.times is None

    def test_full_grammar(self):
        spec = FaultSpec.parse("delay-io:every=3:after=2:times=4:ms=12.5")
        assert (spec.every, spec.after, spec.times, spec.ms) == (3, 2, 4, 12.5)

    def test_prob_with_seed(self):
        spec = FaultSpec.parse("fail-export:prob=0.5:seed=7")
        assert spec.prob == 0.5 and spec.seed == 7

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("set-fire-to-disk")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("kill-worker:color=red")

    def test_plan_round_trips_describe(self):
        plan = FaultPlan.parse("kill-worker:times=1,delay-io:every=2:ms=5")
        assert FaultPlan.parse(plan.describe()).describe() == plan.describe()


class TestSchedule:
    def test_after_then_every(self):
        spec = FaultSpec.parse("kill-worker:after=2:every=3")
        fired = [spec.should_fire() for _ in range(11)]
        # Arrivals 1,2 skipped; then fires on 3, 6, 9 (every 3rd).
        assert fired == [False, False, True, False, False, True,
                         False, False, True, False, False]

    def test_times_caps_firings(self):
        spec = FaultSpec.parse("kill-worker:times=2")
        fired = [spec.should_fire() for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_prob_stream_replays_identically(self):
        a = FaultSpec.parse("fail-export:prob=0.5:seed=42")
        b = FaultSpec.parse("fail-export:prob=0.5:seed=42")
        decisions_a = [a.should_fire() for _ in range(50)]
        decisions_b = [b.should_fire() for _ in range(50)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)


class TestProcessPlan:
    def test_off_by_default(self):
        assert faultinject.fire("kill-worker") is None

    def test_arm_fires_and_counts(self):
        faultinject.arm("kill-worker:times=1")
        assert faultinject.fire("kill-worker") is not None
        assert faultinject.fire("kill-worker") is None  # times exhausted
        assert faultinject.fire("delay-io") is None  # unarmed point

    def test_arm_exports_environment_for_fork(self):
        faultinject.arm("delay-io:ms=5")
        assert os.environ[ENV_VAR] == "delay-io:ms=5"
        faultinject.reset_plan()
        assert ENV_VAR not in os.environ

    def test_env_plan_parsed_once(self, monkeypatch):
        faultinject.reset_plan()
        monkeypatch.setenv(ENV_VAR, "corrupt-block:times=1")
        # reset marked the plan loaded; force a re-read like a fresh process.
        faultinject._plan_loaded = False
        assert faultinject.fire("corrupt-block") is not None
        assert faultinject.fire("corrupt-block") is None

    def test_corrupt_bytes_flips_one_bit(self):
        data = bytes(range(32))
        corrupted = faultinject.corrupt_bytes(data)
        assert len(corrupted) == len(data)
        diffs = [i for i, (x, y) in enumerate(zip(data, corrupted)) if x != y]
        assert len(diffs) == 1
        assert faultinject.corrupt_bytes(b"") == b""

    def test_maybe_delay_sleeps_only_when_armed(self):
        import time

        started = time.perf_counter()
        faultinject.maybe_delay()
        assert time.perf_counter() - started < 0.05
