"""Unit tests for ELCA semantics (the XRANK baseline's answer set)."""

import pytest
from hypothesis import given, settings

from repro.core import (
    all_lca_by_containment,
    elca,
    elca_by_containment,
    slca_by_containment,
    stack_elca,
)
from repro.core.counters import OpCounters

from tests.conftest import query_lists_st


class TestBasics:
    def test_school_example(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"]]
        # The three SLCAs qualify; the School root does NOT: all of its
        # John/Ben occurrences sit under satisfied descendants.
        assert elca(kl) == [(0, 0), (0, 1), (0, 2, 0)]

    def test_ancestor_with_own_occurrence_qualifies(self):
        # (0,1) has its own keyword-1 occurrence and keyword 2 at (0,1,1):
        # the satisfied descendant (0,1,0) swallows only what's under it.
        kl = [
            [(0, 1), (0, 1, 0, 0)],
            [(0, 1, 0, 1), (0, 1, 1)],
        ]
        got = elca(kl)
        assert (0, 1, 0) in got
        assert (0, 1) in got

    def test_ancestor_without_exclusive_witness_excluded(self):
        # Everything under the satisfied child (0,1,0): (0,1) gets nothing.
        kl = [[(0, 1, 0, 0)], [(0, 1, 0, 1)]]
        assert elca(kl) == [(0, 1, 0)]

    def test_swallowing_by_satisfied_non_elca_descendant(self):
        # (0,0) is satisfied but NOT an ELCA (its own occurrences are all
        # under the deeper satisfied node (0,0,0)); it must STILL swallow
        # occurrences from (0,1)'s perspective... here check three levels.
        kl = [
            [(0, 0, 0, 0), (0, 0, 1)],
            [(0, 0, 0, 1), (0, 0, 2)],
        ]
        got = set(elca(kl))
        # (0,0,0) is an ELCA; (0,0) has exclusive witnesses (0,0,1)/(0,0,2).
        assert got == {(0, 0, 0), (0, 0)}

    def test_k1(self):
        kl = [[(0, 1), (0, 1, 2), (0, 3)]]
        # Every occurrence node is satisfied for k=1, so ancestors are all
        # swallowed: ELCA = the occurrence nodes that are not ancestors of
        # other occurrence nodes... each occurrence IS satisfied itself, so
        # ELCA = the occurrence set minus those swallowed: (0,1) has its
        # occurrence at itself, not under a *proper* satisfied descendant?
        # (0,1)'s occurrence is at (0,1) itself — not swallowed.
        assert set(elca(kl)) == {(0, 1), (0, 1, 2), (0, 3)}

    def test_empty_list(self):
        assert elca([[(0, 1)], []]) == []

    def test_no_lists_raises(self):
        with pytest.raises(ValueError):
            list(stack_elca([]))

    def test_counters(self):
        counters = OpCounters()
        kl = [[(0, 0)], [(0, 1)]]
        list(stack_elca(kl, counters))
        assert counters.nodes_merged == 2
        assert counters.results == 1


class TestAgainstOracle:
    def test_oracle_on_school(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"]]
        assert set(elca(kl)) == elca_by_containment(kl)

    @given(keyword_lists=query_lists_st)
    @settings(max_examples=300, deadline=None)
    def test_matches_oracle(self, keyword_lists):
        got = elca(keyword_lists)
        assert len(got) == len(set(got))
        assert set(got) == elca_by_containment(keyword_lists)

    @given(keyword_lists=query_lists_st)
    @settings(max_examples=300, deadline=None)
    def test_sandwich(self, keyword_lists):
        """SLCA ⊆ ELCA ⊆ LCA."""
        slcas = slca_by_containment(keyword_lists)
        elcas = set(elca(keyword_lists))
        lcas = all_lca_by_containment(keyword_lists)
        assert slcas <= elcas <= lcas


class TestEngineIntegration:
    def test_search_elcas(self, school):
        from repro.xksearch.system import XKSearch

        system = XKSearch.from_tree(school)
        results = system.search_elcas("john ben")
        assert [r.dewey for r in results] == [(0, 0), (0, 1), (0, 2, 0)]

    def test_engine_empty_keyword(self, school):
        from repro.xksearch.system import XKSearch

        system = XKSearch.from_tree(school)
        assert system.search_elcas("john zebra") == []

    def test_cli_elca_flag(self, tmp_path, capsys):
        from repro.xksearch.cli import main
        from repro.xmltree.generate import school_xml

        doc = tmp_path / "school.xml"
        doc.write_text(school_xml(), encoding="utf-8")
        assert main(["build", str(doc), str(tmp_path / "i")]) == 0
        capsys.readouterr()
        assert main(["search", str(tmp_path / "i"), "John Ben", "--elca"]) == 0
        assert "ELCA answer(s)" in capsys.readouterr().out
