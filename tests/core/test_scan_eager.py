"""Unit tests for the Scan Eager algorithm."""

from repro.core.counters import OpCounters
from repro.core.indexed_lookup import indexed_lookup_slca
from repro.core.scan_eager import scan_eager_slca


class TestEquivalenceWithIL:
    def test_school_example(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"]]
        assert scan_eager_slca(kl) == indexed_lookup_slca(kl)

    def test_three_keywords(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"], lists["class"]]
        assert scan_eager_slca(kl) == indexed_lookup_slca(kl)

    def test_k1(self):
        kl = [[(0, 1), (0, 1, 2), (0, 3)]]
        assert scan_eager_slca(kl) == [(0, 1, 2), (0, 3)]

    def test_empty_list(self):
        assert scan_eager_slca([[(0, 1)], []]) == []


class TestCostProfile:
    def test_cursor_advances_bounded_by_total_size(self):
        counters = OpCounters()
        lists = [
            [(0, i) for i in range(5)],
            [(0, i, 0) for i in range(40)],
            [(0, i, 1) for i in range(40)],
        ]
        scan_eager_slca(lists, counters)
        total = sum(len(lst) for lst in lists)
        # Each non-head cursor moves forward at most once past each element;
        # reseeks are bounded binary searches, not advances.
        assert counters.cursor_advances <= total

    def test_head_list_never_probed(self):
        """S1 under Scan Eager is pure scan — no lm/rm ever hits it."""
        from repro.core.indexed_lookup import eager_slca
        from repro.core.scan_eager import SortedCursorHead
        from repro.core.sources import CursorListSource

        class TrapHead(SortedCursorHead):
            def lm(self, v):
                raise AssertionError("head list was probed")

            def rm(self, v):
                raise AssertionError("head list was probed")

        counters = OpCounters()
        head = TrapHead([(0, 0), (0, 3)], counters)
        other = CursorListSource([(0, 1), (0, 4)], counters)
        assert list(eager_slca([head, other], counters)) == [(0,)]

    def test_same_answers_under_heavy_interleaving(self):
        # Lists that force many small forward steps and some regressions.
        s1 = [(0, i, 1) for i in range(30)]
        s2 = [(0, i, 0) for i in range(30)] + [(0, 30)]
        s3 = [(0, i, 2) for i in range(0, 30, 3)]
        kl = [s1, sorted(s2), s3]
        assert scan_eager_slca(kl) == indexed_lookup_slca(kl)
