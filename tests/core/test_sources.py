"""Unit tests for the match sources (lm/rm accessors)."""

import pytest

from repro.core.counters import OpCounters
from repro.core.sources import (
    CursorListSource,
    LazyCursorSource,
    SortedListSource,
    memory_sources,
)

LIST = [(0, 1), (0, 1, 2), (0, 3), (0, 5, 0), (0, 5, 2)]


class TestSortedListSource:
    def test_rm_exact(self):
        src = SortedListSource(LIST)
        assert src.rm((0, 3)) == (0, 3)

    def test_rm_between(self):
        src = SortedListSource(LIST)
        assert src.rm((0, 2)) == (0, 3)

    def test_rm_past_end(self):
        src = SortedListSource(LIST)
        assert src.rm((0, 9)) is None

    def test_lm_exact(self):
        src = SortedListSource(LIST)
        assert src.lm((0, 3)) == (0, 3)

    def test_lm_between(self):
        src = SortedListSource(LIST)
        assert src.lm((0, 4)) == (0, 3)

    def test_lm_before_start(self):
        src = SortedListSource(LIST)
        assert src.lm((0, 0)) is None

    def test_lm_rm_with_ancestor_probe(self):
        src = SortedListSource(LIST)
        # (0,1) is an ancestor of (0,1,2): it sorts before it.
        assert src.rm((0, 1, 0)) == (0, 1, 2)
        assert src.lm((0, 1, 0)) == (0, 1)

    def test_scan_and_len(self):
        src = SortedListSource(LIST)
        assert list(src.scan()) == LIST
        assert len(src) == 5

    def test_counters_incremented(self):
        counters = OpCounters()
        src = SortedListSource(LIST, counters)
        src.lm((0, 3))
        src.rm((0, 3))
        src.rm((0, 4))
        assert counters.lm_ops == 1
        assert counters.rm_ops == 2

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            SortedListSource([(0, 2), (0, 1)])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SortedListSource([(0, 1), (0, 1)])

    def test_empty_list_ok(self):
        src = SortedListSource([])
        assert src.lm((0,)) is None
        assert src.rm((0,)) is None
        assert len(src) == 0


class TestCursorListSource:
    def test_monotone_probes_match_sorted_source(self):
        sorted_src = SortedListSource(LIST)
        cursor_src = CursorListSource(LIST)
        for probe in [(0, 0), (0, 1), (0, 2), (0, 3), (0, 4), (0, 5, 1), (0, 9)]:
            assert cursor_src.rm(probe) == sorted_src.rm(probe), probe
            assert cursor_src.lm(probe) == sorted_src.lm(probe), probe

    def test_regressing_probe_still_correct(self):
        cursor_src = CursorListSource(LIST)
        sorted_src = SortedListSource(LIST)
        assert cursor_src.rm((0, 5, 1)) == (0, 5, 2)   # cursor moves deep
        for probe in [(0, 2), (0, 1), (0, 0)]:          # regress hard
            assert cursor_src.rm(probe) == sorted_src.rm(probe), probe
            assert cursor_src.lm(probe) == sorted_src.lm(probe), probe

    def test_regression_counted_as_reseek(self):
        counters = OpCounters()
        cursor_src = CursorListSource(LIST, counters)
        cursor_src.rm((0, 5, 1))
        cursor_src.rm((0, 1))
        assert counters.cursor_reseeks == 1

    def test_advances_counted(self):
        counters = OpCounters()
        cursor_src = CursorListSource(LIST, counters)
        cursor_src.rm((0, 9))
        assert counters.cursor_advances == len(LIST)

    def test_total_advances_bounded_by_list_size(self):
        counters = OpCounters()
        cursor_src = CursorListSource(LIST, counters)
        for probe in LIST:
            cursor_src.rm(probe)
            cursor_src.lm(probe)
        assert counters.cursor_advances <= len(LIST)

    def test_exhaustive_vs_sorted_on_every_probe(self):
        # Fresh cursor per probe: must agree with binary search everywhere.
        sorted_src = SortedListSource(LIST)
        probes = LIST + [(0,), (0, 0), (0, 2), (0, 4), (0, 9), (0, 5, 1), (0, 1, 2, 0)]
        for probe in probes:
            fresh = CursorListSource(LIST)
            assert fresh.rm(probe) == sorted_src.rm(probe), probe
            fresh = CursorListSource(LIST)
            assert fresh.lm(probe) == sorted_src.lm(probe), probe


class TestLazyCursorSource:
    def test_behaves_like_cursor_source(self):
        lazy = LazyCursorSource(iter(LIST), len(LIST))
        plain = CursorListSource(LIST)
        for probe in [(0, 0), (0, 1, 2), (0, 2), (0, 4), (0, 5, 1), (0, 9)]:
            assert lazy.rm(probe) == plain.rm(probe), probe
            assert lazy.lm(probe) == plain.lm(probe), probe

    def test_scan_streams_everything_once(self):
        lazy = LazyCursorSource(iter(LIST), len(LIST))
        assert list(lazy.scan()) == LIST

    def test_scan_after_partial_matching(self):
        lazy = LazyCursorSource(iter(LIST), len(LIST))
        lazy.rm((0, 3))
        assert list(lazy.scan()) == LIST

    def test_len_is_declared_length(self):
        lazy = LazyCursorSource(iter(LIST), 5)
        assert len(lazy) == 5

    def test_unsorted_stream_detected(self):
        lazy = LazyCursorSource(iter([(0, 2), (0, 1)]), 2)
        with pytest.raises(ValueError, match="sorted"):
            lazy.rm((0, 9))

    def test_regression_fallback(self):
        lazy = LazyCursorSource(iter(LIST), len(LIST))
        assert lazy.rm((0, 5, 1)) == (0, 5, 2)
        assert lazy.lm((0, 1, 1)) == (0, 1)
        assert lazy.rm((0, 2)) == (0, 3)


class TestMemorySources:
    def test_shared_counters(self):
        counters = OpCounters()
        sources = memory_sources([LIST, LIST], counters)
        sources[0].rm((0,))
        sources[1].rm((0,))
        assert counters.rm_ops == 2

    def test_cursor_flag(self):
        sources = memory_sources([LIST], cursor=True)
        assert isinstance(sources[0], CursorListSource)

    def test_default_sorted(self):
        sources = memory_sources([LIST])
        assert isinstance(sources[0], SortedListSource)
