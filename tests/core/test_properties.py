"""Property-based tests: every algorithm against every oracle.

These are the strongest correctness guarantees in the suite: on arbitrary
keyword lists over a collision-rich Dewey space, the three production
algorithms (Indexed Lookup Eager, Scan Eager, Stack) must produce exactly
the SLCA set defined by two *independent* oracles — the paper's
definitional brute force over node combinations and the containment
characterization — and Algorithm 3 must produce exactly the brute-force
all-LCA set.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    all_lca,
    all_lca_by_containment,
    brute_lca_set,
    brute_slca,
    indexed_lookup_slca,
    scan_eager_slca,
    slca_by_containment,
    stack_slca,
)
from repro.core.brute import MAX_COMBINATIONS
from repro.core.counters import OpCounters
from repro.core.indexed_lookup import indexed_lookup_blocked
from repro.core.sources import SortedListSource

from tests.conftest import query_lists_st


def small_enough_for_brute(keyword_lists) -> bool:
    combos = 1
    for lst in keyword_lists:
        combos *= max(1, len(lst))
    return combos <= MAX_COMBINATIONS


@given(keyword_lists=query_lists_st)
@settings(max_examples=400, deadline=None)
def test_oracles_agree(keyword_lists):
    if small_enough_for_brute(keyword_lists):
        assert brute_slca(keyword_lists) == slca_by_containment(keyword_lists)


@given(keyword_lists=query_lists_st)
@settings(max_examples=400, deadline=None)
def test_indexed_lookup_matches_oracle(keyword_lists):
    got = indexed_lookup_slca(keyword_lists)
    assert got == sorted(got)
    assert len(got) == len(set(got))
    assert set(got) == slca_by_containment(keyword_lists)


@given(keyword_lists=query_lists_st)
@settings(max_examples=400, deadline=None)
def test_scan_eager_matches_oracle(keyword_lists):
    got = scan_eager_slca(keyword_lists)
    assert got == sorted(got)
    assert set(got) == slca_by_containment(keyword_lists)


@given(keyword_lists=query_lists_st)
@settings(max_examples=400, deadline=None)
def test_stack_matches_oracle(keyword_lists):
    got = list(stack_slca(keyword_lists))
    assert got == sorted(got)
    assert set(got) == slca_by_containment(keyword_lists)


@given(keyword_lists=query_lists_st)
@settings(max_examples=300, deadline=None)
def test_all_lca_matches_containment_oracle(keyword_lists):
    got = all_lca(keyword_lists)
    assert len(got) == len(set(got))
    assert set(got) == all_lca_by_containment(keyword_lists)


@given(keyword_lists=query_lists_st)
@settings(max_examples=200, deadline=None)
def test_all_lca_matches_brute_product(keyword_lists):
    if small_enough_for_brute(keyword_lists):
        assert set(all_lca(keyword_lists)) == brute_lca_set(keyword_lists)


@given(keyword_lists=query_lists_st)
@settings(max_examples=200, deadline=None)
def test_slca_subset_of_all_lca(keyword_lists):
    assert set(indexed_lookup_slca(keyword_lists)) <= set(all_lca(keyword_lists))


@given(keyword_lists=query_lists_st, block_size=st.integers(min_value=1, max_value=7))
@settings(max_examples=200, deadline=None)
def test_blocked_il_equals_plain_il(keyword_lists, block_size):
    counters = OpCounters()
    ordered = sorted(keyword_lists, key=len)
    srcs = [SortedListSource(lst, counters) for lst in ordered]
    blocks = list(indexed_lookup_blocked(srcs, block_size, counters))
    flat = [node for block in blocks for node in block]
    assert flat == indexed_lookup_slca(keyword_lists)


@given(keyword_lists=query_lists_st)
@settings(max_examples=200, deadline=None)
def test_list_order_does_not_change_answer(keyword_lists):
    """The algorithm is correct for any list order, not just smallest-first."""
    counters = OpCounters()
    srcs = [SortedListSource(lst, counters) for lst in keyword_lists]
    from repro.core.indexed_lookup import eager_slca

    got = sorted(eager_slca(srcs, counters))
    assert set(got) == slca_by_containment(keyword_lists)


@given(keyword_lists=query_lists_st)
@settings(max_examples=200, deadline=None)
def test_slca_is_an_antichain(keyword_lists):
    got = indexed_lookup_slca(keyword_lists)
    for i, a in enumerate(got):
        for b in got[i + 1:]:
            assert b[: len(a)] != a, "an SLCA is an ancestor of another"
