"""Unit tests for the Indexed Lookup Eager algorithm."""

import pytest

from repro.core.counters import OpCounters
from repro.core.indexed_lookup import (
    eager_slca,
    indexed_lookup_blocked,
    indexed_lookup_slca,
    slca_candidate,
)
from repro.core.sources import SortedListSource


def sources(*lists, counters=None):
    counters = counters if counters is not None else OpCounters()
    return [SortedListSource(lst, counters) for lst in lists]


class TestCandidate:
    """Properties 1 and 2: the per-node SLCA candidate."""

    def test_candidate_is_lca_with_closest_match(self):
        counters = OpCounters()
        (s2,) = sources([(0, 0), (0, 2)], counters=counters)
        # v=(0,1,5): lm=(0,0) -> lca=(0,), rm=(0,2) -> lca=(0,). Root wins.
        assert slca_candidate((0, 1, 5), [s2], counters) == (0,)

    def test_candidate_prefers_deeper_side(self):
        counters = OpCounters()
        (s2,) = sources([(0, 1, 0), (0, 9)], counters=counters)
        # lm=(0,1,0) -> lca with (0,1,5) is (0,1); rm=(0,9) -> lca (0,).
        assert slca_candidate((0, 1, 5), [s2], counters) == (0, 1)

    def test_candidate_with_self_match(self):
        counters = OpCounters()
        (s2,) = sources([(0, 1, 5)], counters=counters)
        assert slca_candidate((0, 1, 5), [s2], counters) == (0, 1, 5)

    def test_candidate_with_ancestor_match(self):
        counters = OpCounters()
        (s2,) = sources([(0, 1)], counters=counters)
        # (0,1) is an ancestor of v: lm=(0,1), lca=(0,1).
        assert slca_candidate((0, 1, 5), [s2], counters) == (0, 1)

    def test_candidate_folds_across_lists(self):
        counters = OpCounters()
        s2, s3 = sources([(0, 1, 0)], [(0, 2)], counters=counters)
        # After s2: x=(0,1); after s3: lca((0,1),(0,2))=(0,) either side.
        assert slca_candidate((0, 1, 5), [s2, s3], counters) == (0,)

    def test_candidate_subtree_contains_all_keywords(self):
        """The candidate's subtree must contain v and a node of each list."""
        counters = OpCounters()
        lists = [[(0, 0, 1), (0, 2, 2)], [(0, 1), (0, 2, 0)]]
        srcs = sources(*lists, counters=counters)
        for v in [(0, 0, 0), (0, 2, 1), (0, 3)]:
            x = slca_candidate(v, srcs, counters)
            assert v[: len(x)] == x  # x is an ancestor-or-self of v
            for lst in lists:
                assert any(n[: len(x)] == x for n in lst)


class TestEagerPipeline:
    def test_school_example(self, school):
        lists = school.keyword_lists()
        assert indexed_lookup_slca([lists["john"], lists["ben"]]) == [
            (0, 0),
            (0, 1),
            (0, 2, 0),
        ]

    def test_results_in_document_order(self):
        got = indexed_lookup_slca([[(0, 0, 0), (0, 5)], [(0, 0, 1), (0, 5, 2)]])
        assert got == sorted(got)

    def test_lemma1_discards_backward_candidate(self):
        # S1 = [(0,1,0), (0,2)]; S2 = [(0,1,1), (0,0)]
        # candidate((0,1,0)) = (0,1); candidate((0,2)) = (0,) which precedes
        # (0,1) and must be discarded as its ancestor.
        got = indexed_lookup_slca([[(0, 1, 0), (0, 2)], [(0, 0), (0, 1, 1)]])
        assert got == [(0, 1)]

    def test_lemma2_held_ancestor_replaced(self):
        # candidate of first v is an ancestor of candidate of second v:
        # held (0,1) replaced by (0,1,2) without being emitted.
        got = indexed_lookup_slca([[(0, 1, 0), (0, 1, 2, 0)], [(0, 1, 1), (0, 1, 2, 1)]])
        assert got == [(0, 1, 2)]

    def test_duplicate_candidates_collapse(self):
        # Two S1 nodes under one answer root produce the same candidate.
        got = indexed_lookup_slca([[(0, 1, 0), (0, 1, 1)], [(0, 1, 2)]])
        assert got == [(0, 1)]

    def test_k1_removes_ancestors(self):
        got = indexed_lookup_slca([[(0, 1), (0, 1, 2), (0, 3)]])
        assert got == [(0, 1, 2), (0, 3)]

    def test_k1_single_node(self):
        assert indexed_lookup_slca([[(0,)]]) == [(0,)]

    def test_empty_list_short_circuits(self):
        counters = OpCounters()
        got = list(eager_slca(sources([(0, 1)], [], counters=counters), counters))
        assert got == []
        assert counters.candidates == 0

    def test_no_lists_raises(self):
        with pytest.raises(ValueError):
            list(eager_slca([]))

    def test_wrapper_orders_smallest_first(self):
        counters = OpCounters()
        small = [(0, 1)]
        big = [(0, i) for i in range(2, 20)]
        indexed_lookup_slca([big, small], counters)
        # Candidates are computed per node of the smallest list only.
        assert counters.candidates == len(small)

    def test_streaming_is_eager(self):
        """The first SLCA must be available before S1 is exhausted."""
        seen_probes = []

        class SpySource(SortedListSource):
            def scan(self):
                for node in super().scan():
                    seen_probes.append(node)
                    yield node

        counters = OpCounters()
        s1 = SpySource([(0, 0, 0), (0, 1, 0), (0, 2, 0)], counters)
        s2 = SortedListSource([(0, 0, 1), (0, 1, 1), (0, 2, 1)], counters)
        stream = eager_slca([s1, s2], counters)
        first = next(stream)
        assert first == (0, 0)
        # Only the first two S1 nodes were needed to confirm the answer.
        assert len(seen_probes) == 2

    def test_match_op_budget(self):
        """IL performs at most 2·(k-1) match ops per S1 node (Table 1)."""
        counters = OpCounters()
        lists = [
            [(0, i) for i in range(0, 10)],
            [(0, i, 0) for i in range(0, 50, 2)],
            [(0, i, 1) for i in range(0, 50, 2)],
        ]
        indexed_lookup_slca([lists[0][:5], lists[1], lists[2]], counters)
        k = 3
        s1 = 5
        assert counters.match_ops <= 2 * (k - 1) * s1


class TestBlockedVariant:
    def test_blocks_concatenate_to_full_answer(self, school):
        lists = school.keyword_lists()
        counters = OpCounters()
        srcs = sources(lists["john"], lists["ben"], counters=counters)
        blocks = list(indexed_lookup_blocked(srcs, block_size=1, counters=counters))
        flat = [node for block in blocks for node in block]
        assert flat == [(0, 0), (0, 1), (0, 2, 0)]

    def test_various_block_sizes_agree(self):
        lists = [
            [(0, 0, 0), (0, 1, 0), (0, 2, 0), (0, 3, 0)],
            [(0, 0, 1), (0, 1, 1), (0, 2, 1), (0, 3, 1)],
        ]
        want = indexed_lookup_slca(lists)
        for b in (1, 2, 3, 100):
            srcs = sources(*lists)
            flat = [n for blk in indexed_lookup_blocked(srcs, b) for n in blk]
            assert flat == want, b

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            list(indexed_lookup_blocked(sources([(0,)]), 0))

    def test_empty_input(self):
        assert list(indexed_lookup_blocked(sources([], [(0,)]), 2)) == []
