"""Unit tests for the Stack (XRANK-derived) algorithm."""

import pytest

from repro.core.counters import OpCounters
from repro.core.indexed_lookup import indexed_lookup_slca
from repro.core.stack import _merge_with_masks, stack_slca


class TestMerge:
    def test_masks_tag_source_list(self):
        merged = list(_merge_with_masks([[(0, 1)], [(0, 2)]]))
        assert merged == [((0, 1), 0b01), ((0, 2), 0b10)]

    def test_duplicate_node_masks_union(self):
        merged = list(_merge_with_masks([[(0, 1)], [(0, 1)]]))
        assert merged == [((0, 1), 0b11)]

    def test_interleaving_is_document_order(self):
        merged = list(_merge_with_masks([[(0, 0), (0, 2)], [(0, 1), (0, 3)]]))
        assert [d for d, _ in merged] == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_ancestor_before_descendant(self):
        merged = list(_merge_with_masks([[(0, 1)], [(0, 1, 0)]]))
        assert [d for d, _ in merged] == [(0, 1), (0, 1, 0)]


class TestStackSLCA:
    def test_school_example(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"]]
        assert list(stack_slca(kl)) == [(0, 0), (0, 1), (0, 2, 0)]

    def test_matches_il_on_three_keywords(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"], lists["title"]]
        assert list(stack_slca(kl)) == indexed_lookup_slca(kl)

    def test_single_node_all_keywords(self):
        assert list(stack_slca([[(0, 1)], [(0, 1)]])) == [(0, 1)]

    def test_ancestor_of_slca_not_reported(self):
        # (0,1) contains both keywords, but so does its child (0,1,0).
        kl = [[(0, 1), (0, 1, 0, 0)], [(0, 1), (0, 1, 0, 1)]]
        assert list(stack_slca(kl)) == [(0, 1, 0)]

    def test_keyword_at_internal_node(self):
        # keyword 1 at an ancestor, keyword 2 below it.
        kl = [[(0, 1)], [(0, 1, 2)]]
        assert list(stack_slca(kl)) == [(0, 1)]

    def test_k1_removes_ancestors(self):
        assert list(stack_slca([[(0, 1), (0, 1, 2), (0, 3)]])) == [(0, 1, 2), (0, 3)]

    def test_empty_list(self):
        assert list(stack_slca([[(0, 1)], []])) == []

    def test_no_lists_raises(self):
        with pytest.raises(ValueError):
            list(stack_slca([]))

    def test_document_order_output(self):
        kl = [
            [(0, 0, 0), (0, 2, 0), (0, 4, 0)],
            [(0, 0, 1), (0, 2, 1), (0, 4, 1)],
        ]
        got = list(stack_slca(kl))
        assert got == sorted(got) == [(0, 0), (0, 2), (0, 4)]

    def test_streaming_yields_before_exhaustion(self):
        seen = []

        def spy(lst):
            for node in lst:
                seen.append(node)
                yield node

        kl = [
            [(0, i, 0) for i in range(50)],
            [(0, i, 1) for i in range(50)],
        ]
        stream = stack_slca([spy(kl[0]), spy(kl[1])])
        first = next(stream)
        assert first == (0, 0)
        # Only a constant lookahead beyond the first answer was consumed.
        assert len(seen) < 10


class TestCostProfile:
    def test_merges_every_node(self):
        counters = OpCounters()
        kl = [[(0, i) for i in range(20)], [(0, i, 0) for i in range(30)]]
        list(stack_slca(kl, counters))
        assert counters.nodes_merged == 50

    def test_merge_count_includes_small_and_large(self):
        """The Stack baseline pays for every list — the cost IL avoids."""
        counters = OpCounters()
        small = [(0, 25)]
        large = [(0, i, 0) for i in range(100)]
        list(stack_slca([small, large], counters))
        assert counters.nodes_merged == 101
