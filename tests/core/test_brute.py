"""Unit tests for the brute-force oracles themselves."""

import pytest

from repro.core.brute import (
    all_lca_by_containment,
    brute_lca_set,
    brute_slca,
    remove_ancestors,
    slca_by_containment,
)


class TestRemoveAncestors:
    def test_drops_proper_ancestors(self):
        nodes = {(0,), (0, 1), (0, 1, 2), (0, 2)}
        assert remove_ancestors(nodes) == {(0, 1, 2), (0, 2)}

    def test_keeps_antichain(self):
        nodes = {(0, 1), (0, 2), (0, 3, 1)}
        assert remove_ancestors(nodes) == nodes

    def test_empty(self):
        assert remove_ancestors(set()) == set()

    def test_single(self):
        assert remove_ancestors({(0,)}) == {(0,)}

    def test_chain_keeps_deepest(self):
        assert remove_ancestors({(0,), (0, 1), (0, 1, 1)}) == {(0, 1, 1)}


class TestBruteLCASet:
    def test_two_singletons(self):
        assert brute_lca_set([[(0, 1, 0)], [(0, 1, 2)]]) == {(0, 1)}

    def test_cross_product(self):
        s1 = [(0, 0), (0, 1)]
        s2 = [(0, 0, 1), (0, 2)]
        # lca pairs: (0,0)&(0,0,1)->(0,0); (0,0)&(0,2)->(0,); (0,1)&(0,0,1)->(0,); (0,1)&(0,2)->(0,)
        assert brute_lca_set([s1, s2]) == {(0, 0), (0,)}

    def test_single_list_is_identity(self):
        s = [(0, 1), (0, 2, 3)]
        assert brute_lca_set([s]) == set(s)

    def test_empty_list_gives_empty(self):
        assert brute_lca_set([[(0, 1)], []]) == set()

    def test_combination_cap(self):
        big = [(0, i) for i in range(700)]
        with pytest.raises(ValueError, match="cap"):
            brute_lca_set([big, big])

    def test_no_lists_rejected(self):
        with pytest.raises(ValueError):
            brute_lca_set([])


class TestSLCAOracles:
    def test_paper_school_example(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"]]
        want = {(0, 0), (0, 1), (0, 2, 0)}
        assert brute_slca(kl) == want
        assert slca_by_containment(kl) == want

    def test_node_containing_all_keywords_is_its_own_slca(self):
        kl = [[(0, 1)], [(0, 1)]]
        assert brute_slca(kl) == {(0, 1)}
        assert slca_by_containment(kl) == {(0, 1)}

    def test_ancestor_descendant_witnesses(self):
        # keyword 1 at an ancestor of keyword 2's node.
        kl = [[(0, 1)], [(0, 1, 2)]]
        want = {(0, 1)}
        assert brute_slca(kl) == want
        assert slca_by_containment(kl) == want

    def test_disjoint_subtrees_meet_at_root(self):
        kl = [[(0, 0, 0)], [(0, 5, 5)]]
        assert slca_by_containment(kl) == {(0,)}

    def test_empty_list_empty_answer(self):
        assert slca_by_containment([[(0, 1)], []]) == set()


class TestAllLCAOracle:
    def test_school_example(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"]]
        got = all_lca_by_containment(kl)
        # All SLCAs plus the root (pairs across classes meet at School).
        assert got == {(0,), (0, 0), (0, 1), (0, 2, 0)}

    def test_matches_brute_product(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"]]
        assert all_lca_by_containment(kl) == brute_lca_set(kl)

    def test_single_list(self):
        s = [(0, 1), (0, 1, 2)]
        assert all_lca_by_containment([s]) == set(s)

    def test_self_hit_makes_lca(self):
        # Node (0,1) itself holds keyword 1; keyword 2 is below it only in
        # one child, but (0,1) is still an exact LCA via its own label.
        kl = [[(0, 1)], [(0, 1, 0, 0)]]
        assert all_lca_by_containment(kl) == {(0, 1), (0, 1, 0, 0)} & all_lca_by_containment(kl) | {(0, 1)}
        assert (0, 1) in all_lca_by_containment(kl)

    def test_confined_to_one_child_not_lca(self):
        # Both keywords live only under child (0,1,0): (0,1) is never an
        # exact meeting point.
        kl = [[(0, 1, 0, 0)], [(0, 1, 0, 1)]]
        got = all_lca_by_containment(kl)
        assert (0, 1) not in got
        assert (0, 1, 0) in got

    def test_lca_superset_of_slca(self):
        kl = [
            [(0, 0, 0), (0, 2)],
            [(0, 0, 1), (0, 3)],
        ]
        assert slca_by_containment(kl) <= all_lca_by_containment(kl)
