"""Unit tests for the IL execution trace."""

from hypothesis import given, settings

from repro.core import indexed_lookup_slca
from repro.core.trace import format_trace, traced_slca

from tests.conftest import query_lists_st


class TestTracedRun:
    def test_results_match_production_algorithm(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"]]
        trace = traced_slca(kl)
        assert trace.results == indexed_lookup_slca(kl)

    def test_one_step_per_s1_node(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"]]
        assert len(traced_slca(kl).steps) == 3

    def test_match_steps_probe_every_other_list(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"], lists["title"]]
        trace = traced_slca(kl)
        for step in trace.steps:
            assert len(step.matches) == 2  # k - 1 lists probed per v
            assert [m.list_index for m in step.matches] == [2, 3]

    def test_first_candidate_held(self, school):
        lists = school.keyword_lists()
        trace = traced_slca([lists["john"], lists["ben"]])
        assert trace.steps[0].decision == "hold"

    def test_emit_steps_reference_lemma2(self, school):
        lists = school.keyword_lists()
        trace = traced_slca([lists["john"], lists["ben"]])
        emits = [s for s in trace.steps if s.decision == "emit+hold"]
        assert emits
        assert all("Lemma 2" in s.rule for s in emits)

    def test_discard_uses_lemma1(self):
        # Second S1 node's candidate precedes the first's: Lemma 1 discard.
        kl = [[(0, 1, 0), (0, 2)], [(0, 0), (0, 1, 1)]]
        trace = traced_slca(kl)
        assert trace.steps[-1].decision == "discard"
        assert "Lemma 1" in trace.steps[-1].rule
        assert trace.results == [(0, 1)]

    def test_replace_on_ancestor_candidate(self):
        kl = [[(0, 1, 0), (0, 1, 2, 0)], [(0, 1, 1), (0, 1, 2, 1)]]
        trace = traced_slca(kl)
        assert trace.steps[-1].decision == "replace"
        assert trace.results == [(0, 1, 2)]

    def test_empty_inputs(self):
        assert traced_slca([]).results == []
        assert traced_slca([[(0, 1)], []]).results == []

    @given(keyword_lists=query_lists_st)
    @settings(max_examples=150, deadline=None)
    def test_trace_always_agrees_with_algorithm(self, keyword_lists):
        assert traced_slca(keyword_lists).results == indexed_lookup_slca(keyword_lists)


class TestFormatting:
    def test_format_contains_steps_and_answer(self, school):
        lists = school.keyword_lists()
        out = format_trace(traced_slca([lists["john"], lists["ben"]]))
        assert "step 1: v = 0.0.1.0" in out
        assert "SLCA confirmed: 0.0" in out
        assert "answer: [0.0, 0.1, 0.2.0]" in out

    def test_format_without_matches(self, school):
        lists = school.keyword_lists()
        out = format_trace(traced_slca([lists["john"], lists["ben"]]), show_matches=False)
        assert "lm(" not in out
        assert "candidate =" in out

    def test_empty_answer_formatting(self):
        assert "answer: []" in format_trace(traced_slca([[(0, 1)], []]))
