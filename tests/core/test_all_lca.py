"""Unit tests for Algorithm 3 (all LCAs)."""

import pytest

from repro.core.all_lca import all_lca, check_lca, find_all_lcas
from repro.core.brute import all_lca_by_containment, brute_lca_set
from repro.core.counters import OpCounters
from repro.core.sources import SortedListSource


def sources(*lists, counters=None):
    counters = counters if counters is not None else OpCounters()
    return [SortedListSource(lst, counters) for lst in lists]


class TestCheckLCA:
    def test_left_part_hit(self):
        counters = OpCounters()
        # SLCA s=(0,2,0); ancestor u=(0,); keyword node (0,1) is left of the
        # path child (0,2).
        srcs = sources([(0, 1), (0, 2, 0)], counters=counters)
        assert check_lca((0,), (0, 2, 0), srcs, counters)

    def test_right_part_hit_via_uncle(self):
        counters = OpCounters()
        # keyword node (0,3) is right of path child (0,2): uncle probe.
        srcs = sources([(0, 2, 0), (0, 3)], counters=counters)
        assert check_lca((0,), (0, 2, 0), srcs, counters)

    def test_ancestor_own_label_hit(self):
        counters = OpCounters()
        # u itself carries a keyword: rm(u) returns u, inside [u, c).
        srcs = sources([(0, 1), (0, 1, 0, 0)], counters=counters)
        assert check_lca((0, 1), (0, 1, 0, 0), srcs, counters)

    def test_no_witness_outside_path_child(self):
        counters = OpCounters()
        # All keyword nodes are inside the path child's subtree.
        srcs = sources([(0, 2, 0)], [(0, 2, 1)], counters=counters)
        assert not check_lca((0,), (0, 2, 0), srcs, counters)

    def test_nodes_under_other_slca_count(self):
        counters = OpCounters()
        # u=(0,) has two satisfied subtrees; checking against the right one
        # must still see the left one's nodes in the left part.
        srcs = sources([(0, 0, 0), (0, 5, 0)], [(0, 0, 1), (0, 5, 1)], counters=counters)
        assert check_lca((0,), (0, 5), srcs, counters)


class TestFindAllLCAs:
    def test_school_example(self, school):
        lists = school.keyword_lists()
        got = all_lca([lists["john"], lists["ben"]])
        assert got == [(0,), (0, 0), (0, 1), (0, 2, 0)]

    def test_every_slca_is_reported(self, school):
        from repro.core import slca

        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"]]
        assert set(slca(kl)) <= set(all_lca(kl))

    def test_matches_containment_oracle(self, school):
        lists = school.keyword_lists()
        kl = [lists["john"], lists["ben"], lists["title"]]
        assert set(all_lca(kl)) == all_lca_by_containment(kl)

    def test_matches_brute_product(self):
        kl = [
            [(0, 0, 0), (0, 2), (0, 3, 1)],
            [(0, 0, 1), (0, 3, 0)],
        ]
        assert set(all_lca(kl)) == brute_lca_set(kl)

    def test_k1_returns_whole_list(self):
        s = [(0, 1), (0, 1, 2), (0, 3)]
        assert all_lca([s]) == s

    def test_empty_list(self):
        assert all_lca([[(0, 1)], []]) == []

    def test_no_duplicates(self):
        kl = [
            [(0, 0, 0), (0, 1, 0), (0, 2, 0)],
            [(0, 0, 1), (0, 1, 1), (0, 2, 1)],
        ]
        got = all_lca(kl)
        assert len(got) == len(set(got))

    def test_each_ancestor_checked_once(self):
        """Algorithm 3's walk visits each SLCA ancestor exactly once."""
        checked = []
        import importlib

        # `repro.core.all_lca` the *attribute* is the function (re-exported
        # by the package); fetch the submodule itself to patch its global.
        mod = importlib.import_module("repro.core.all_lca")
        original = mod.check_lca

        def spying_check(u, s, srcs, counters):
            checked.append(u)
            return original(u, s, srcs, counters)

        kl = [
            [(0, 0, 0, 0), (0, 0, 1, 0), (0, 5, 0)],
            [(0, 0, 0, 1), (0, 0, 1, 1), (0, 5, 1)],
        ]
        counters = OpCounters()
        srcs = sources(*kl, counters=counters)
        # Patch within this test only.
        mod.check_lca = spying_check
        try:
            list(mod.find_all_lcas(srcs, counters))
        finally:
            mod.check_lca = original
        assert len(checked) == len(set(checked))

    def test_pipelined_generator(self):
        kl = [
            [(0, 0, 0), (0, 9, 0)],
            [(0, 0, 1), (0, 9, 1)],
        ]
        stream = find_all_lcas(sources(*kl))
        first = next(stream)
        assert first == (0, 0)
