"""Unit tests for the per-figure query generators."""

from repro.workloads.queries import (
    FREQUENCY_LADDER,
    fig8_points,
    fig9_points,
    fig10_points,
    needed_frequencies,
)


class TestFig8:
    def test_x_axis_is_frequency_ladder(self):
        points = fig8_points(10)
        assert [p.x for p in points] == list(FREQUENCY_LADDER)

    def test_two_keywords_per_query(self):
        for point in fig8_points(100, variants=3):
            for query in point.queries:
                assert len(query) == 2

    def test_variants_count(self):
        points = fig8_points(10, variants=3)
        assert all(len(p.queries) == 3 for p in points)

    def test_equal_frequency_point_uses_distinct_keywords(self):
        (point,) = fig8_points(10, large_frequencies=(10,), variants=2)
        for small, large in point.queries:
            assert small != large


class TestFig9:
    def test_keyword_counts(self):
        points = fig9_points(10)
        assert [p.x for p in points] == [2, 3, 4, 5]
        for point in points:
            for query in point.queries:
                assert len(query) == point.x

    def test_one_small_rest_large(self):
        points = fig9_points(10, large_frequency=100000)
        for point in points:
            for query in point.queries:
                assert query[0].startswith("xk10_")
                assert all(kw.startswith("xk100000_") for kw in query[1:])

    def test_large_keywords_distinct_within_query(self):
        for point in fig9_points(10, variants=2):
            for query in point.queries:
                assert len(set(query)) == len(query)


class TestFig10:
    def test_all_same_frequency(self):
        for point in fig10_points(1000):
            for query in point.queries:
                assert all(kw.startswith("xk1000_") for kw in query)

    def test_keywords_distinct(self):
        for point in fig10_points(100, variants=2):
            for query in point.queries:
                assert len(set(query)) == len(query)


class TestNeededFrequencies:
    def test_fig8_needs(self):
        needs = dict(needed_frequencies(fig8_points(10, variants=2)))
        # small keyword 10 also appears as a large keyword with extra
        # variants at the equal-frequency point.
        assert needs[10] >= 2
        assert needs[100000] == 2

    def test_fig10_needs_k_times_variants(self):
        needs = dict(needed_frequencies(fig10_points(100, variants=2)))
        assert needs[100] == 2 * 5  # variants × max keyword count
