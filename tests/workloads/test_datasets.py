"""Unit tests for the experiment corpora."""

import pytest

from repro.workloads.datasets import (
    CorpusShape,
    PlantedCorpus,
    keyword_name,
    plant_virtual_lists,
)


class TestCorpusShape:
    def test_slot_count(self):
        shape = CorpusShape(venues=2, years=3, papers=4)
        assert shape.slots == 24

    def test_slot_deweys_are_distinct_and_ordered(self):
        shape = CorpusShape(venues=2, years=3, papers=4)
        deweys = [shape.slot_dewey(s) for s in range(shape.slots)]
        assert len(set(deweys)) == shape.slots
        assert deweys == sorted(deweys)

    def test_slot_dewey_geometry(self):
        shape = CorpusShape(venues=2, years=3, papers=4)
        # slot 0: first venue, first year (child 1), first paper (child 1).
        assert shape.slot_dewey(0) == (0, 0, 1, 1, 0, 0)
        # last slot: last venue, last year, last paper.
        assert shape.slot_dewey(shape.slots - 1) == (0, 1, 3, 4, 0, 0)

    def test_out_of_range_slot(self):
        shape = CorpusShape(venues=1, years=1, papers=1)
        with pytest.raises(ValueError):
            shape.slot_dewey(1)

    def test_sized_for_has_headroom(self):
        shape = CorpusShape.sized_for(1000)
        assert shape.slots >= 2000

    def test_level_table_fits_all_slots(self):
        shape = CorpusShape(venues=3, years=2, papers=5)
        table = shape.level_table()
        for slot in range(shape.slots):
            table.check_fits(shape.slot_dewey(slot))


class TestPlanting:
    def test_exact_frequencies(self):
        lists, _ = plant_virtual_lists({"a": 7, "b": 100}, seed=1)
        assert len(lists["a"]) == 7
        assert len(lists["b"]) == 100

    def test_lists_sorted_unique(self):
        lists, _ = plant_virtual_lists({"a": 500}, seed=2)
        assert lists["a"] == sorted(set(lists["a"]))

    def test_deterministic(self):
        a, _ = plant_virtual_lists({"x": 50}, seed=3)
        b, _ = plant_virtual_lists({"x": 50}, seed=3)
        assert a == b

    def test_seed_changes_placement(self):
        a, _ = plant_virtual_lists({"x": 50}, seed=3)
        b, _ = plant_virtual_lists({"x": 50}, seed=4)
        assert a != b

    def test_frequency_exceeding_slots_rejected(self):
        shape = CorpusShape(venues=1, years=1, papers=10)
        with pytest.raises(ValueError, match="slots"):
            plant_virtual_lists({"a": 11}, shape=shape)


class TestPlantedCorpus:
    def test_for_frequencies(self):
        corpus = PlantedCorpus.for_frequencies([(10, 2), (100, 1)], seed=5)
        assert len(corpus.lists[keyword_name(10, 0)]) == 10
        assert len(corpus.lists[keyword_name(10, 1)]) == 10
        assert len(corpus.lists[keyword_name(100, 0)]) == 100
        assert corpus.total_postings == 120

    def test_keyword_lookup(self):
        corpus = PlantedCorpus.for_frequencies([(10, 1)], seed=5)
        assert corpus.keyword(10) == "xk10_0"
        with pytest.raises(KeyError):
            corpus.keyword(10, 5)

    def test_level_table_covers_lists(self):
        corpus = PlantedCorpus.for_frequencies([(10, 1), (1000, 1)], seed=6)
        table = corpus.level_table()
        for lst in corpus.lists.values():
            for dewey in lst:
                table.check_fits(dewey)
