"""Unit tests for the experiment runner."""

import pytest

from repro.storage.pager import CostModel
from repro.workloads.datasets import PlantedCorpus
from repro.workloads.queries import QueryPoint, fig8_points
from repro.workloads.runner import (
    ExperimentRunner,
    Measurement,
    average_measurements,
)


@pytest.fixture(scope="module")
def corpus():
    return PlantedCorpus.for_frequencies([(10, 4), (100, 2), (1000, 2)], seed=7)


@pytest.fixture
def runner(corpus):
    with ExperimentRunner(corpus, page_size=1024) as r:
        yield r


class TestModes:
    def test_memory_mode(self, runner):
        m = runner.run_query(("xk10_0", "xk1000_0"), "il", "memory")
        assert m.mode == "memory"
        assert m.wall_ms > 0
        assert m.page_reads == 0
        assert m.counters.candidates == 10

    def test_disk_hot_mode_reads_nothing(self, runner):
        m = runner.run_query(("xk10_0", "xk1000_0"), "il", "disk-hot")
        assert m.mode == "disk-hot"
        assert m.page_reads == 0
        assert m.modeled_io_ms == 0

    def test_disk_cold_mode_counts_reads(self, runner):
        m = runner.run_query(("xk10_0", "xk1000_0"), "il", "disk-cold")
        assert m.page_reads > 0
        assert m.modeled_io_ms > 0
        assert m.total_ms > m.wall_ms

    def test_unknown_mode_rejected(self, runner):
        with pytest.raises(ValueError, match="mode"):
            runner.run_query(("xk10_0",), "il", "warp")

    def test_all_algorithms_same_results(self, runner):
        counts = {
            alg: runner.run_query(("xk10_0", "xk100_0"), alg, "memory").n_results
            for alg in ("il", "scan", "stack")
        }
        assert len(set(counts.values())) == 1

    def test_cold_scan_is_mostly_sequential(self, runner):
        m = runner.run_query(("xk10_0", "xk1000_0"), "scan", "disk-cold")
        assert m.sequential_reads >= m.random_reads

    def test_cost_model_applied(self, corpus):
        model = CostModel(random_ms=100.0, sequential_ms=0.0)
        with ExperimentRunner(corpus, page_size=1024, cost_model=model) as r:
            m = r.run_query(("xk10_0", "xk1000_0"), "il", "disk-cold")
            assert m.modeled_io_ms == pytest.approx(m.random_reads * 100.0)


class TestPoints:
    def test_run_point_averages_variants(self, runner):
        point = QueryPoint(x=100, queries=(("xk10_0", "xk100_0"), ("xk10_1", "xk100_1")))
        m = runner.run_point(point, "il", "memory")
        assert isinstance(m, Measurement)
        assert m.counters.candidates == 10  # average of two 10-candidate runs

    def test_run_points_sweep_structure(self, runner):
        points = fig8_points(10, large_frequencies=(10, 100), variants=2)
        sweep = runner.run_points(points, ("il", "stack"), "memory")
        assert set(sweep) == {10, 100}
        assert set(sweep[10]) == {"il", "stack"}

    def test_repeats(self, runner):
        point = QueryPoint(x=1, queries=(("xk10_0", "xk100_0"),))
        m = runner.run_point(point, "il", "memory", repeats=3)
        assert m.n_results == runner.run_query(("xk10_0", "xk100_0"), "il").n_results


class TestAveraging:
    def test_average_of_one(self):
        m = Measurement("il", "memory", wall_ms=2.0, n_results=3)
        assert average_measurements([m]).wall_ms == 2.0

    def test_average_of_two(self):
        a = Measurement("il", "memory", wall_ms=2.0, page_reads=4)
        b = Measurement("il", "memory", wall_ms=4.0, page_reads=6)
        avg = average_measurements([a, b])
        assert avg.wall_ms == pytest.approx(3.0)
        assert avg.page_reads == 5

    def test_average_empty_rejected(self):
        with pytest.raises(ValueError):
            average_measurements([])
