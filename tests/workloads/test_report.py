"""Unit tests for the report formatting."""

from repro.core.counters import OpCounters
from repro.workloads.report import format_table, io_table, ops_table, sweep_table
from repro.workloads.runner import Measurement


def fake_sweep():
    def m(alg, ms, reads=0):
        return Measurement(
            alg,
            "memory",
            wall_ms=ms,
            page_reads=reads,
            random_reads=reads,
            counters=OpCounters(lm_ops=3, rm_ops=3, nodes_merged=reads),
        )

    return {
        10: {"il": m("il", 0.5), "scan": m("scan", 0.4), "stack": m("stack", 1.0)},
        100: {"il": m("il", 0.6), "scan": m("scan", 2.0), "stack": m("stack", 6.0)},
    }


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table("T", ["a", "bb"], [["1", "2"], ["10", "20"]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}

    def test_wide_cells_stretch_columns(self):
        out = format_table("T", ["x"], [["very-long-cell"]])
        assert "very-long-cell" in out


class TestSweepTable:
    def test_rows_sorted_by_x(self):
        out = sweep_table("Fig", "|S2|", fake_sweep())
        lines = out.splitlines()
        assert lines[3].strip().startswith("10")
        assert lines[4].strip().startswith("100")

    def test_ratio_column(self):
        out = sweep_table("Fig", "x", fake_sweep())
        assert "stack/il" in out
        assert "2.0x" in out  # 1.0 / 0.5

    def test_ratio_suppressed(self):
        out = sweep_table("Fig", "x", fake_sweep(), ratio=False)
        assert "stack/il" not in out

    def test_custom_value_function(self):
        out = sweep_table(
            "Fig", "x", fake_sweep(), value=lambda m: float(m.counters.match_ops),
            value_label="ops",
        )
        assert "ops" in out
        assert "6.00" in out

    def test_millisecond_formatting_ranges(self):
        sweep = {
            1: {
                "il": Measurement("il", "memory", wall_ms=0.1234),
                "scan": Measurement("scan", "memory", wall_ms=12.345),
                "stack": Measurement("stack", "memory", wall_ms=1234.5),
            }
        }
        out = sweep_table("Fig", "x", sweep)
        assert "0.123" in out
        assert "12.35" in out or "12.34" in out
        assert "1235" in out or "1234" in out


class TestBreakdownTables:
    def test_io_table_columns(self):
        out = io_table("IO", "x", fake_sweep())
        assert "IL reads" in out and "Stack seq" in out

    def test_ops_table_columns(self):
        out = ops_table("Ops", "x", fake_sweep())
        assert "IL match" in out and "Stack merged" in out


class TestBandAttributionTable:
    def _populated_registry(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.xksearch.engine import _EXEC_BUCKETS_MS

        registry = MetricsRegistry()
        family = registry.histogram(
            "xks_query_exec_ms",
            "exec",
            buckets=_EXEC_BUCKETS_MS,
            labelnames=("band", "algorithm"),
        )
        for value in (0.5, 1.5, 2.5):
            family.labels(band="10-99", algorithm="il").observe(value)
        family.labels(band="1000+", algorithm="scan").observe(40.0)
        return registry

    def test_rows_grouped_by_band_then_algorithm(self):
        from repro.workloads.report import band_attribution_table

        out = band_attribution_table(registry=self._populated_registry())
        lines = out.splitlines()
        assert any("10-99" in line and "il" in line and "3" in line for line in lines)
        assert any("1000+" in line and "scan" in line for line in lines)
        # Band order follows the frequency axis, not lexicographic order.
        assert out.index("10-99") < out.index("1000+")

    def test_empty_registry_renders_header_only(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.workloads.report import band_attribution_table

        out = band_attribution_table(registry=MetricsRegistry())
        assert "band" in out and "p99 ms" in out
