"""Packed posting segments: codec, reader, oracle properties, invalidation.

The packed-segment tier must be indistinguishable from the B+tree tier in
every answer it produces — these tests pin that down against the
:class:`~repro.core.sources.SortedListSource` oracle (randomized and
hypothesis-driven), through the full engine (segments on vs off across
all three algorithms and all three semantics), across the generation
protocol (an updater bump stales segments instantly; close rebuilds
them), and through the cross-process posting-block cache.
"""

import multiprocessing
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counters import OpCounters
from repro.core.sources import SortedListSource, gallop_leftmost_ge, gallop_rightmost_le
from repro.errors import IndexFormatError
from repro.index.builder import build_index
from repro.index.inverted import DiskKeywordIndex
from repro.index.segments import (
    DEFAULT_BLOCK_ENTRIES,
    PackedListSource,
    SegmentReader,
    decode_block,
    decode_tuple,
    encode_block,
    encode_tuple,
    segments_path,
    write_segments,
)
from repro.index.updates import IndexUpdater
from repro.xksearch.cache import bump_generation, current_generation
from repro.xksearch.shared_cache import PostingBlockCache
from repro.xksearch.system import XKSearch

# -- strategies ---------------------------------------------------------------

#: Dewey components stress the varint codec: multi-byte values at every
#: LEB128 boundary, plus genuinely large ids.
component_st = st.one_of(
    st.integers(min_value=0, max_value=300),
    st.sampled_from([127, 128, 16383, 16384, 2**21, 2**28, 2**40]),
)

#: Deep, shared-prefix-rich Dewey numbers (up to depth 12).
deep_dewey_st = st.lists(
    st.integers(min_value=0, max_value=2), min_size=0, max_size=11
).map(lambda tail: (0, *tail))

wide_dewey_st = st.lists(component_st, min_size=1, max_size=6).map(tuple)


def sorted_list(deweys):
    return sorted(set(deweys))


# -- codec --------------------------------------------------------------------


class TestCodec:
    @given(dewey=wide_dewey_st)
    @settings(max_examples=300, deadline=None)
    def test_tuple_round_trip(self, dewey):
        buf = encode_tuple(dewey)
        decoded, pos = decode_tuple(buf)
        assert decoded == dewey
        assert pos == len(buf)

    @given(deweys=st.lists(deep_dewey_st, min_size=1, max_size=40))
    @settings(max_examples=300, deadline=None)
    def test_block_round_trip_deep(self, deweys):
        entries = sorted_list(deweys)
        buf = encode_block(entries)
        assert decode_block(buf, 0, len(buf), len(entries)) == tuple(entries)

    @given(deweys=st.lists(wide_dewey_st, min_size=1, max_size=40))
    @settings(max_examples=300, deadline=None)
    def test_block_round_trip_wide(self, deweys):
        entries = sorted_list(deweys)
        buf = encode_block(entries)
        assert decode_block(buf, 0, len(buf), len(entries)) == tuple(entries)

    def test_block_round_trip_max_depth(self):
        # A pathological chain: every entry extends the previous by one
        # component, maximizing the prefix-sharing the delta codec exploits.
        entries = [tuple(range(depth + 1)) for depth in range(64)]
        buf = encode_block(entries)
        assert decode_block(buf, 0, len(buf), len(entries)) == tuple(entries)
        # The delta form must actually be smaller than re-encoding each
        # tuple standalone, or the format is pointless.
        standalone = sum(len(encode_tuple(e)) for e in entries)
        assert len(buf) < standalone

    def test_decode_rejects_trailing_garbage(self):
        entries = [(0, 1), (0, 2)]
        buf = encode_block(entries) + b"\x00"
        with pytest.raises(IndexFormatError):
            decode_block(buf, 0, len(buf), len(entries))


class TestGallopHelpers:
    @given(
        values=st.lists(st.integers(0, 500), min_size=1, max_size=60),
        probe=st.integers(-5, 505),
        hint=st.integers(-3, 70),
    )
    @settings(max_examples=400, deadline=None)
    def test_matches_bisect_oracle(self, values, probe, hint):
        import bisect

        nodes = sorted(set(values))
        le = gallop_rightmost_le(nodes, probe, hint)
        ge = gallop_leftmost_ge(nodes, probe, hint)
        assert le == bisect.bisect_right(nodes, probe) - 1
        assert ge == bisect.bisect_left(nodes, probe)


# -- writer / reader ----------------------------------------------------------


class TestWriterReader:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "segments.dat")
        lists = {
            "alpha": [(0,), (0, 1), (0, 1, 2), (0, 5)],
            "beta": [(0, i) for i in range(500)],
            "empty": [],
        }
        wrote = write_segments(path, sorted(lists.items()), generation=7)
        assert wrote == 2  # the empty list is skipped
        with SegmentReader(path) as reader:
            assert reader.generation == 7
            assert reader.keywords() == ["alpha", "beta"]
            assert "empty" not in reader
            assert reader.count("beta") == 500
            assert list(reader.scan("alpha")) == lists["alpha"]
            assert list(reader.scan("beta")) == lists["beta"]

    def test_single_entry_blocks(self, tmp_path):
        path = str(tmp_path / "segments.dat")
        nodes = [(0, i, i % 3) for i in range(17)]
        write_segments(path, [("kw", nodes)], generation=1, block_entries=1)
        with SegmentReader(path) as reader:
            assert list(reader.scan("kw")) == nodes
            table = reader.skip_table("kw")
            assert len(table) == 17
            assert table.first_ids == nodes

    def test_truncated_file_raises(self, tmp_path):
        path = str(tmp_path / "segments.dat")
        write_segments(path, [("kw", [(0, 1)])], generation=1)
        with open(path, "r+b") as fh:
            fh.truncate(10)
        with pytest.raises(IndexFormatError):
            SegmentReader(path)

    def test_bad_magic_raises(self, tmp_path):
        path = str(tmp_path / "segments.dat")
        write_segments(path, [("kw", [(0, 1)])], generation=1)
        with open(path, "r+b") as fh:
            fh.write(b"NOPE")
        with pytest.raises(IndexFormatError):
            SegmentReader(path)

    def test_rejects_zero_block_entries(self, tmp_path):
        with pytest.raises(ValueError):
            write_segments(
                str(tmp_path / "s.dat"), [("kw", [(0,)])], generation=1, block_entries=0
            )


# -- PackedListSource vs the in-memory oracle ---------------------------------


def _probe_set(nodes, rng):
    """Present nodes, absent neighbours, and out-of-range extremes."""
    probes = list(nodes)
    probes += [n + (0,) for n in nodes]  # just after (child of) each node
    probes += [n[:-1] for n in nodes if len(n) > 1]  # just before: the parent
    probes += [(), (0,), (10**9,), (0, 10**9)]
    rng.shuffle(probes)
    return probes


class TestPackedSourceOracle:
    @pytest.mark.parametrize("block_entries", [1, 2, 7, DEFAULT_BLOCK_ENTRIES])
    def test_randomized_against_sorted_source(self, tmp_path, block_entries):
        rng = random.Random(block_entries * 7919)
        path = str(tmp_path / "segments.dat")
        for trial in range(40):
            nodes = sorted_list(
                tuple(rng.randint(0, 3) for _ in range(rng.randint(1, 8)))
                for _ in range(rng.randint(1, 120))
            )
            write_segments(path, [("kw", nodes)], generation=trial, block_entries=block_entries)
            with SegmentReader(path) as reader:
                packed = PackedListSource(reader, "kw")
                oracle = SortedListSource(nodes)
                assert len(packed) == len(oracle) == len(nodes)
                assert list(packed.scan()) == nodes
                for probe in _probe_set(nodes, rng):
                    assert packed.lm(probe) == oracle.lm(probe), (trial, probe)
                    assert packed.rm(probe) == oracle.rm(probe), (trial, probe)

    @given(
        deweys=st.lists(deep_dewey_st, min_size=1, max_size=60),
        probes=st.lists(deep_dewey_st, min_size=1, max_size=30),
        block_entries=st.sampled_from([1, 3, 8, 128]),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_oracle(self, deweys, probes, block_entries):
        import tempfile

        nodes = sorted_list(deweys)
        with tempfile.TemporaryDirectory(prefix="xks-seg-") as tmp:
            path = os.path.join(tmp, "segments.dat")
            write_segments(path, [("kw", nodes)], generation=0, block_entries=block_entries)
            self._check(path, nodes, probes)

    @staticmethod
    def _check(path, nodes, probes):
        with SegmentReader(path) as reader:
            packed = PackedListSource(reader, "kw")
            oracle = SortedListSource(nodes)
            for probe in probes:
                assert packed.lm(probe) == oracle.lm(probe)
                assert packed.rm(probe) == oracle.rm(probe)

    def test_singleton_list(self, tmp_path):
        path = str(tmp_path / "segments.dat")
        write_segments(path, [("kw", [(0, 2)])], generation=0)
        with SegmentReader(path) as reader:
            packed = PackedListSource(reader, "kw")
            assert packed.lm((0, 1)) is None
            assert packed.lm((0, 2)) == (0, 2)
            assert packed.rm((0, 3)) is None
            assert packed.rm((0,)) == (0, 2)

    def test_counter_accounting(self, tmp_path):
        path = str(tmp_path / "segments.dat")
        write_segments(path, [("kw", [(0, i) for i in range(40)])], generation=0)
        with SegmentReader(path) as reader:
            counters = OpCounters()
            packed = PackedListSource(reader, "kw", counters)
            for i in range(10):
                packed.lm((0, i))
                packed.rm((0, i))
            assert counters.lm_ops == 10
            assert counters.rm_ops == 10


# -- tier selection over a real index -----------------------------------------


@pytest.fixture
def built(tmp_path, planted_dblp):
    build_index(planted_dblp, tmp_path / "idx", page_size=1024)
    index = DiskKeywordIndex(tmp_path / "idx", pool_capacity=512)
    yield index, planted_dblp, tmp_path / "idx"
    index.close()


class TestTierSelection:
    def test_builder_emits_segments(self, built):
        index, _, index_dir = built
        assert os.path.exists(segments_path(index_dir))
        assert index.segments_active()
        assert index.posting_tier() == "segment"
        assert "segments" in index.manifest

    def test_indexed_sources_are_packed(self, built):
        index, _, _ = built
        sources = index.sources_for(["xkrare", "xkbig"], mode="indexed")
        assert all(isinstance(s, PackedListSource) for s in sources)

    def test_opt_out_forces_bptree(self, built):
        _, _, index_dir = built
        index = DiskKeywordIndex(index_dir, use_segments=False)
        try:
            assert not index.segments_active()
            assert index.posting_tier() == "bptree"
            sources = index.sources_for(["xkrare"], mode="indexed")
            assert not isinstance(sources[0], PackedListSource)
        finally:
            index.close()

    def test_scan_matches_bptree_scan(self, built):
        index, tree, _ = built
        lists = tree.keyword_lists()
        for kw in ("xkrare", "xkmid", "xkbig"):
            assert list(index.scan(kw)) == lists[kw]
            assert index.keyword_list(kw) == lists[kw]

    def test_stats_expose_segment_section(self, built):
        index, _, _ = built
        stats = index.stats()
        assert stats["posting_tier"] == "segment"
        assert stats["segments"]["keywords"] > 0


# -- generation protocol ------------------------------------------------------


class TestGenerationInvalidation:
    def test_bump_stales_segments_instantly(self, built):
        index, _, index_dir = built
        assert index.segments_active()
        bump_generation(index_dir)
        assert not index.segments_active()
        assert index.posting_tier() == "bptree"
        # The fallback still answers correctly.
        sources = index.sources_for(["xkrare"], mode="indexed")
        assert not isinstance(sources[0], PackedListSource)

    def test_updater_close_rebuilds_segments(self, built):
        index, tree, index_dir = built
        new_posting = ((0, 0, 0, 0, 0, 0), "title")
        with IndexUpdater(index_dir) as updater:
            assert updater.add_postings({"xkfresh": [new_posting]}) == 1
            # Mid-update: segments are stale, B+tree serves reads.
            assert not index.segments_active()
        # Close rebuilt segments.dat at the new generation; the reader
        # handle notices through the usual generation machinery.
        index.generation()
        assert index.segments_active()
        assert list(index.scan("xkfresh")) == [new_posting[0]]
        sources = index.sources_for(["xkfresh"], mode="indexed")
        assert isinstance(sources[0], PackedListSource)
        # Pre-existing lists survived the rebuild byte-identically.
        assert list(index.scan("xkrare")) == tree.keyword_lists()["xkrare"]

    def test_stamped_generation_matches_registry(self, built):
        index, _, index_dir = built
        reader = index._segments
        assert reader is not None
        assert reader.generation == current_generation(index_dir)


# -- posting-block cache ------------------------------------------------------


class TestPostingCache:
    def test_shared_hits_after_local_eviction(self, tmp_path):
        path = str(tmp_path / "segments.dat")
        nodes = [(0, i) for i in range(600)]
        write_segments(path, [("kw", nodes)], generation=3, block_entries=16)
        cache = PostingBlockCache(slot_count=64, slot_size=4096)
        try:
            # Warm the shared cache with one reader...
            with SegmentReader(path, posting_cache=cache) as warm:
                assert list(warm.scan("kw")) == nodes
                assert warm.stats.decodes > 0
            # ...then a fresh reader (cold local LRU) should hit it.
            with SegmentReader(path, posting_cache=cache) as reader:
                assert list(reader.scan("kw")) == nodes
                assert reader.stats.shared_hits > 0
                assert reader.stats.decodes == 0
        finally:
            cache.close()

    def test_generation_mismatch_misses(self, tmp_path):
        path = str(tmp_path / "segments.dat")
        nodes = [(0, i) for i in range(64)]
        cache = PostingBlockCache(slot_count=64, slot_size=4096)
        try:
            write_segments(path, [("kw", nodes)], generation=1, block_entries=16)
            with SegmentReader(path, posting_cache=cache) as reader:
                list(reader.scan("kw"))
            # Same blocks, new generation: the stamped entries must miss.
            write_segments(path, [("kw", nodes)], generation=2, block_entries=16)
            with SegmentReader(path, posting_cache=cache) as reader:
                assert reader.generation == 2
                assert list(reader.scan("kw")) == nodes
                assert reader.stats.shared_hits == 0
                assert reader.stats.decodes > 0
        finally:
            cache.close()

    def test_local_lru_hits(self, tmp_path):
        path = str(tmp_path / "segments.dat")
        write_segments(path, [("kw", [(0, i) for i in range(64)])], generation=0, block_entries=8)
        with SegmentReader(path) as reader:
            list(reader.scan("kw"))
            decodes = reader.stats.decodes
            list(reader.scan("kw"))
            assert reader.stats.decodes == decodes
            assert reader.stats.local_hits > 0


# -- end-to-end: segments on vs off must be byte-identical --------------------


QUERIES = ["xkrare xkbig", "xkmid xkbig", "xkrare xkmid xkbig", "xkmid", "smith"]


class TestEngineByteIdentical:
    @pytest.fixture
    def systems(self, tmp_path, planted_dblp):
        build_index(planted_dblp, tmp_path / "idx", page_size=1024)
        on = XKSearch.open(tmp_path / "idx", load_document=False)
        off = XKSearch.open(tmp_path / "idx", load_document=False, use_segments=False)
        assert on.index.posting_tier() == "segment"
        assert off.index.posting_tier() == "bptree"
        yield on, off
        on.close()
        off.close()

    def test_slca_all_algorithms(self, systems):
        on, off = systems
        for query in QUERIES:
            for algorithm in ("auto", "il", "scan", "stack"):
                got = list(on.search_ids(query, algorithm=algorithm))
                want = list(off.search_ids(query, algorithm=algorithm))
                assert got == want, (query, algorithm)

    def test_elca_and_all_lca(self, systems):
        on, off = systems
        for query in QUERIES:
            assert list(on.engine.execute_elca(query)) == list(
                off.engine.execute_elca(query)
            ), ("elca", query)
            assert list(on.engine.execute_all_lca(query)) == list(
                off.engine.execute_all_lca(query)
            ), ("lca", query)

    def test_explain_reports_tier(self, systems):
        from repro.xksearch.engine import ExecutionStats

        on, off = systems
        for system, tier in ((on, "segment"), (off, "bptree")):
            stats = ExecutionStats()
            list(system.search_ids("xkrare xkbig", algorithm="il", stats=stats, profile=True))
            assert stats.profile.plan["posting_tier"] == tier


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process pool requires the fork start method",
)
class TestPoolWorkers:
    def test_workers_use_segments_and_match(self, tmp_path, planted_dblp):
        from repro.xksearch.parallel import WorkerPool

        build_index(planted_dblp, tmp_path / "idx", page_size=1024)
        cache = PostingBlockCache(slot_count=128, slot_size=8192)
        pool = WorkerPool(tmp_path / "idx", workers=2, posting_cache=cache)
        system = XKSearch.open(tmp_path / "idx", load_document=False)
        system.engine.attach_pool(pool)
        system.index.attach_posting_cache(cache)
        reference = XKSearch.open(
            tmp_path / "idx", load_document=False, use_segments=False
        )
        try:
            for query in QUERIES:
                got = list(system.search_ids(query, algorithm="il"))
                want = list(reference.search_ids(query, algorithm="il"))
                assert got == want, query
            assert sum(w["tasks"] for w in pool.stats_dict()["workers"]) > 0
        finally:
            pool.close()
            cache.close()
            system.close()
            reference.close()
