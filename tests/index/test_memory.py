"""Unit tests for the in-memory keyword index."""

import pytest

from repro.core.sources import CursorListSource, SortedListSource
from repro.index.memory import MemoryKeywordIndex


class TestConstruction:
    def test_from_tree(self, school):
        index = MemoryKeywordIndex.from_tree(school)
        assert index.frequency("john") == 3

    def test_lowercases_keys(self):
        index = MemoryKeywordIndex({"John": [(0, 1)]})
        assert index.frequency("john") == 1
        assert "JOHN" in index

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            MemoryKeywordIndex({"a": [(0, 2), (0, 1)]})

    def test_len_and_keywords(self):
        index = MemoryKeywordIndex({"a": [(0, 1)], "b": [(0, 2)]})
        assert len(index) == 2
        assert index.keywords() == ["a", "b"]


class TestAccess:
    def test_keyword_list_copy(self):
        index = MemoryKeywordIndex({"a": [(0, 1)]})
        lst = index.keyword_list("a")
        lst.append((0, 9))
        assert index.keyword_list("a") == [(0, 1)]

    def test_scan_unknown_is_empty(self):
        index = MemoryKeywordIndex({})
        assert list(index.scan("ghost")) == []

    def test_sources_modes(self):
        index = MemoryKeywordIndex({"a": [(0, 1)]})
        (indexed,) = index.sources_for(["a"], "indexed")
        (cursor,) = index.sources_for(["a"], "scan")
        assert isinstance(indexed, SortedListSource)
        assert isinstance(cursor, CursorListSource)

    def test_sources_for_missing_keyword_empty(self):
        index = MemoryKeywordIndex({"a": [(0, 1)]})
        (src,) = index.sources_for(["ghost"])
        assert len(src) == 0

    def test_bad_mode(self):
        index = MemoryKeywordIndex({})
        with pytest.raises(ValueError):
            index.sources_for(["a"], "turbo")

    def test_shared_counters_across_sources(self):
        from repro.core.counters import OpCounters

        index = MemoryKeywordIndex({"a": [(0, 1)], "b": [(0, 2)]})
        counters = OpCounters()
        sources = index.sources_for(["a", "b"], counters=counters)
        sources[0].rm((0,))
        sources[1].rm((0,))
        assert counters.rm_ops == 2
