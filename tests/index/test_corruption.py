"""Failure injection: corrupted or incomplete index directories must fail
with the library's own exceptions, never crash or loop."""

import json
import os

import pytest

from repro.errors import (
    IndexFormatError,
    IndexNotFoundError,
    PageError,
    ReproError,
)
from repro.index.builder import build_index
from repro.index.inverted import DiskKeywordIndex


@pytest.fixture
def built(tmp_path, school):
    target = tmp_path / "idx"
    build_index(school, target, page_size=512)
    return target


def open_and_query(target):
    with DiskKeywordIndex(target) as index:
        return index.keyword_list("john")


class TestMissingPieces:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(IndexNotFoundError):
            DiskKeywordIndex(tmp_path / "nope")

    def test_missing_manifest(self, built):
        os.remove(built / "manifest.json")
        with pytest.raises(IndexNotFoundError):
            DiskKeywordIndex(built)

    def test_missing_level_table(self, built):
        os.remove(built / "level_table.json")
        with pytest.raises(IndexNotFoundError):
            DiskKeywordIndex(built)

    def test_missing_index_file(self, built):
        os.remove(built / "index.db")
        with pytest.raises(ReproError):
            open_and_query(built)

    def test_missing_tags_tolerated(self, built, school):
        # Tag file is an extension artifact: absence degrades gracefully to
        # untagged behaviour rather than failing.
        os.remove(built / "tags.json")
        with DiskKeywordIndex(built) as index:
            assert index.keyword_list("john") == school.keyword_lists()["john"]


class TestCorruptBytes:
    def test_garbage_manifest(self, built):
        (built / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises((IndexFormatError, ValueError)):
            DiskKeywordIndex(built)

    def test_wrong_manifest_version(self, built):
        manifest = json.loads((built / "manifest.json").read_text())
        manifest["version"] = 42
        (built / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(IndexFormatError):
            DiskKeywordIndex(built)

    def test_unknown_codec_in_manifest(self, built):
        manifest = json.loads((built / "manifest.json").read_text())
        manifest["codec"] = "zstd"
        (built / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(IndexFormatError):
            DiskKeywordIndex(built)

    def test_zeroed_header_page(self, built):
        with open(built / "index.db", "r+b") as fh:
            fh.write(b"\x00" * 64)
        with pytest.raises(PageError):
            DiskKeywordIndex(built)

    def test_truncated_index_file(self, built):
        path = built / "index.db"
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - (size % 512) - 512 or 512)
        with pytest.raises(ReproError):
            open_and_query(built)

    def test_misaligned_index_file(self, built):
        path = built / "index.db"
        with open(path, "ab") as fh:
            fh.write(b"junk")
        with pytest.raises(PageError):
            DiskKeywordIndex(built)

    def test_flipped_page_type_byte(self, built):
        # Corrupt the first byte of every data page: node decode must raise
        # a TreeCorruptError (or another ReproError), not misbehave silently.
        path = built / "index.db"
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            for offset in range(512, size, 512):
                fh.seek(offset)
                fh.write(b"\x77")
        with pytest.raises(ReproError):
            open_and_query(built)

    def test_garbage_level_table(self, built):
        (built / "level_table.json").write_text("[]", encoding="utf-8")
        with pytest.raises((ReproError, ValueError, KeyError, TypeError)):
            open_and_query(built)


class TestRecoveryPath:
    def test_rebuild_fixes_corruption(self, built, school, tmp_path):
        path = built / "index.db"
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            for offset in range(512, size, 512):
                fh.seek(offset)
                fh.write(b"\xff" * 64)
        with pytest.raises(ReproError):
            open_and_query(built)
        # A rebuild into the same directory restores service.
        build_index(school, built, page_size=512)
        assert open_and_query(built) == school.keyword_lists()["john"]
