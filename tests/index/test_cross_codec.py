"""End-to-end parity across Dewey codecs and page sizes.

The codec and page size are storage knobs: for any combination, every
query path (indexed, scan, stack; SLCA, all-LCA) must produce identical
answers, and updates must keep working.
"""

import pytest

from repro.core import OpCounters, eager_slca, find_all_lcas, slca, stack_slca
from repro.index.builder import build_index
from repro.index.inverted import DiskKeywordIndex
from repro.index.updates import IndexUpdater
from repro.index.verify import verify_index

COMBOS = [
    ("packed", 512),
    ("packed", 4096),
    ("varint", 512),
    ("varint", 4096),
]


@pytest.fixture(scope="module")
def reference(planted_dblp_module):
    lists = planted_dblp_module.keyword_lists()
    query = ("xkrare", "xkmid", "xkbig")
    return {
        "slca": slca([lists[k] for k in query]),
        "query": query,
        "lists": lists,
    }


@pytest.fixture(scope="module")
def planted_dblp_module():
    from repro.xmltree.generate import dblp_like_tree, plant_keywords

    tree = dblp_like_tree(5, venues=3, years_per_venue=3, papers_per_year=10)
    plant_keywords(tree, {"xkrare": 4, "xkmid": 20, "xkbig": 60}, seed=9)
    return tree


@pytest.mark.parametrize("codec,page_size", COMBOS)
class TestCodecPageSizeMatrix:
    @pytest.fixture
    def index(self, planted_dblp_module, tmp_path, codec, page_size):
        target = tmp_path / f"{codec}-{page_size}"
        build_index(planted_dblp_module, target, codec=codec, page_size=page_size)
        with DiskKeywordIndex(target) as opened:
            yield opened

    def test_all_query_paths_agree(self, index, reference):
        query = reference["query"]
        want = reference["slca"]
        il = list(eager_slca(index.sources_for(query, "indexed", OpCounters())))
        scan = list(eager_slca(index.sources_for(query, "scan", OpCounters())))
        stack = list(stack_slca([index.scan(k) for k in query]))
        assert il == scan == stack == want

    def test_all_lca_agrees(self, index, reference):
        query = reference["query"]
        got = sorted(
            find_all_lcas(index.sources_for(query, "indexed", OpCounters()))
        )
        from repro.core import all_lca

        want = all_lca([reference["lists"][k] for k in query])
        assert got == want

    def test_lists_roundtrip(self, index, reference):
        for keyword in ("xkrare", "xkbig", "title"):
            assert index.keyword_list(keyword) == reference["lists"][keyword]

    def test_verifies_clean(self, index):
        report = verify_index(index.index_dir)
        assert report.ok, report.summary()

    def test_update_then_query(self, index, reference, tmp_path, codec, page_size):
        # Work on a private copy: updates mutate the directory.
        import shutil

        target = tmp_path / "updated"
        shutil.copytree(index.index_dir, target)
        with IndexUpdater(target) as updater:
            updater.add_postings({"xkrare": [((0, 1, 1, 1, 0, 0), "title")]})
        with DiskKeywordIndex(target) as updated:
            assert updated.frequency("xkrare") == 5
            answers = list(
                eager_slca(updated.sources_for(reference["query"], "indexed"))
            )
            recomputed = slca(
                [updated.keyword_list(k) for k in reference["query"]]
            )
            assert answers == recomputed
        assert verify_index(target).ok
