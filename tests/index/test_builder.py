"""Unit tests for the index builder."""

import json
import os

import pytest

from repro.errors import IndexFormatError, IndexNotFoundError
from repro.index.builder import (
    IndexBuildReport,
    build_index,
    load_manifest,
    make_codec,
)
from repro.index.inverted import DiskKeywordIndex
from repro.xmltree.codec import PackedDeweyCodec, VarintDeweyCodec
from repro.xmltree.level_table import LevelTable


class TestBuildFromTree:
    def test_files_created(self, tmp_path, school):
        build_index(school, tmp_path / "idx")
        for name in ("manifest.json", "level_table.json", "frequency.json", "index.db"):
            assert (tmp_path / "idx" / name).exists(), name

    def test_document_stored_by_default(self, tmp_path, school):
        build_index(school, tmp_path / "idx")
        assert (tmp_path / "idx" / "document.xml").exists()

    def test_document_omitted_on_request(self, tmp_path, school):
        build_index(school, tmp_path / "idx", keep_document=False)
        assert not (tmp_path / "idx" / "document.xml").exists()

    def test_report_counts(self, tmp_path, school):
        report = build_index(school, tmp_path / "idx")
        lists = school.keyword_lists()
        assert report.keywords == len(lists)
        assert report.postings == sum(len(lst) for lst in lists.values())
        assert report.bytes_on_disk == report.pages * report.page_size

    def test_roundtrip_all_keyword_lists(self, tmp_path, planted_dblp):
        build_index(planted_dblp, tmp_path / "idx", page_size=1024)
        lists = planted_dblp.keyword_lists()
        with DiskKeywordIndex(tmp_path / "idx") as index:
            for keyword, want in lists.items():
                assert index.keyword_list(keyword) == want, keyword


class TestBuildFromLists:
    def test_lists_without_level_table(self, tmp_path):
        lists = {"a": [(0, 1), (0, 5, 3)], "b": [(0, 2)]}
        build_index(lists, tmp_path / "idx")
        with DiskKeywordIndex(tmp_path / "idx") as index:
            assert index.keyword_list("a") == lists["a"]
            assert index.frequency("b") == 1

    def test_explicit_level_table(self, tmp_path):
        lists = {"a": [(0, 1)]}
        table = LevelTable([100, 100])
        build_index(lists, tmp_path / "idx", level_table=table)
        with DiskKeywordIndex(tmp_path / "idx") as index:
            assert index.level_table == table

    def test_unsorted_list_rejected(self, tmp_path):
        with pytest.raises(IndexFormatError, match="sorted"):
            build_index({"a": [(0, 2), (0, 1)]}, tmp_path / "idx")

    def test_no_document_for_list_source(self, tmp_path):
        build_index({"a": [(0, 1)]}, tmp_path / "idx", keep_document=True)
        assert not (tmp_path / "idx" / "document.xml").exists()


class TestCodecs:
    def test_varint_codec_roundtrips(self, tmp_path, school):
        build_index(school, tmp_path / "idx", codec="varint")
        lists = school.keyword_lists()
        with DiskKeywordIndex(tmp_path / "idx") as index:
            assert index.manifest["codec"] == "varint"
            assert index.keyword_list("john") == lists["john"]

    def test_unknown_codec_rejected(self, tmp_path, school):
        with pytest.raises(IndexFormatError, match="codec"):
            build_index(school, tmp_path / "idx", codec="gzip")

    def test_make_codec(self):
        table = LevelTable([4])
        assert isinstance(make_codec("packed", table), PackedDeweyCodec)
        assert isinstance(make_codec("varint", table), VarintDeweyCodec)


class TestManifest:
    def test_load_manifest(self, tmp_path, school):
        build_index(school, tmp_path / "idx")
        manifest = load_manifest(tmp_path / "idx")
        assert manifest["version"] == 1
        assert manifest["codec"] == "packed"

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(IndexNotFoundError):
            load_manifest(tmp_path / "nowhere")

    def test_wrong_version_rejected(self, tmp_path, school):
        build_index(school, tmp_path / "idx")
        path = tmp_path / "idx" / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["version"] = 99
        path.write_text(json.dumps(manifest))
        with pytest.raises(IndexFormatError, match="version"):
            load_manifest(tmp_path / "idx")


class TestScanBlocks:
    def test_small_block_budget_many_blocks(self, tmp_path):
        lists = {"a": [(0, i) for i in range(100)]}
        build_index(lists, tmp_path / "idx", scan_block_budget=16)
        with DiskKeywordIndex(tmp_path / "idx") as index:
            assert index.keyword_list("a") == lists["a"]

    def test_page_size_sweep(self, tmp_path, planted_dblp):
        lists = planted_dblp.keyword_lists()
        for page_size in (512, 2048, 8192):
            target = tmp_path / f"idx{page_size}"
            build_index(planted_dblp, target, page_size=page_size)
            with DiskKeywordIndex(target) as index:
                assert index.keyword_list("xkmid") == lists["xkmid"]
