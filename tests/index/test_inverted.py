"""Unit tests for the disk keyword index and its match sources."""

import random

import pytest

from repro.core import eager_slca, slca, stack_slca
from repro.core.counters import OpCounters
from repro.index.builder import build_index
from repro.index.inverted import DiskIndexedSource, DiskKeywordIndex
from repro.index.memory import MemoryKeywordIndex


@pytest.fixture
def built(tmp_path, planted_dblp):
    build_index(planted_dblp, tmp_path / "idx", page_size=1024)
    index = DiskKeywordIndex(tmp_path / "idx", pool_capacity=512)
    yield index, planted_dblp
    index.close()


class TestCatalogue:
    def test_frequency(self, built):
        index, tree = built
        lists = tree.keyword_lists()
        assert index.frequency("xkrare") == len(lists["xkrare"]) == 4

    def test_contains(self, built):
        index, _ = built
        assert "xkmid" in index
        assert "definitely_absent" not in index

    def test_keywords_sorted(self, built):
        index, tree = built
        assert index.keywords() == sorted(tree.keyword_lists())

    def test_case_insensitive(self, built):
        index, _ = built
        assert index.frequency("XKMID") == 20


class TestMatches:
    def test_lm_rm_match_memory_reference(self, built):
        index, tree = built
        lists = tree.keyword_lists()
        memory = MemoryKeywordIndex(lists)
        rng = random.Random(4)
        probes = [n.dewey for n in tree]
        for keyword in ("xkrare", "xkmid", "xkbig", "smith"):
            counters = OpCounters()
            disk_src = DiskIndexedSource(index, keyword, counters)
            mem_src = memory.sources_for([keyword])[0]
            for _ in range(200):
                probe = rng.choice(probes)
                assert disk_src.lm(probe) == mem_src.lm(probe), (keyword, probe)
                assert disk_src.rm(probe) == mem_src.rm(probe), (keyword, probe)

    def test_match_counters(self, built):
        index, _ = built
        counters = OpCounters()
        src = DiskIndexedSource(index, "xkmid", counters)
        src.lm((0,))
        src.rm((0,))
        assert counters.lm_ops == 1 and counters.rm_ops == 1

    def test_one_off_helpers(self, built):
        index, tree = built
        lists = tree.keyword_lists()
        assert index.rm("xkmid", (0,)) == lists["xkmid"][0]
        assert index.lm("xkmid", (0,)) is None

    def test_scan_matches_lists(self, built):
        index, tree = built
        lists = tree.keyword_lists()
        for keyword in ("xkrare", "xkbig", "title"):
            assert list(index.scan(keyword)) == lists[keyword]

    def test_scan_unknown_keyword_empty(self, built):
        index, _ = built
        assert list(index.scan("ghost")) == []

    def test_indexed_source_scan_equals_block_scan(self, built):
        index, _ = built
        counters = OpCounters()
        src = DiskIndexedSource(index, "xkmid", counters)
        assert list(src.scan()) == list(index.scan("xkmid"))


class TestQueriesOverDisk:
    QUERY = ("xkrare", "xkmid", "xkbig")

    def test_il_scan_stack_agree_with_memory(self, built):
        index, tree = built
        lists = tree.keyword_lists()
        want = slca([lists[k] for k in self.QUERY])
        il = list(eager_slca(index.sources_for(self.QUERY, "indexed")))
        scan = list(eager_slca(index.sources_for(self.QUERY, "scan")))
        stack = list(stack_slca([index.scan(k) for k in self.QUERY]))
        assert il == scan == stack == want

    def test_bad_source_mode(self, built):
        index, _ = built
        with pytest.raises(ValueError, match="mode"):
            index.sources_for(["xkmid"], "hash")

    def test_keyword_list_mixed_case(self, built):
        # Regression: the tagged branch used to pass the raw keyword to
        # scan_tagged (which lowercases internally) while the untagged
        # branch lowercased first — both must normalize identically.
        index, _ = built
        want = index.keyword_list("xkmid")
        assert want
        assert index.keyword_list("XKMID") == want
        assert index.keyword_list("XkMid") == want
        tag = next(iter(index.scan_tagged("xkmid")))[1]
        tagged = index.keyword_list("xkmid", tag=tag)
        assert tagged
        assert index.keyword_list("XKMID", tag=tag.upper()) == tagged


class TestCacheTemperature:
    """Cache-temperature semantics of the B+tree tier.

    These measure the paper's physical disk-access dimension, which only
    the tree path exercises — the segment fast path reads an mmap and
    never touches the pager — so the index is opened with
    ``use_segments=False``.
    """

    @pytest.fixture
    def built(self, tmp_path, planted_dblp):
        build_index(planted_dblp, tmp_path / "idx", page_size=1024)
        index = DiskKeywordIndex(
            tmp_path / "idx", pool_capacity=512, use_segments=False
        )
        yield index, planted_dblp
        index.close()

    def test_hot_run_reads_nothing(self, built):
        index, _ = built
        list(eager_slca(index.sources_for(self.q(), "indexed")))
        before = index.io_snapshot()
        list(eager_slca(index.sources_for(self.q(), "indexed")))
        assert index.pager.stats.delta(before).reads == 0

    def test_cold_run_reads_pages(self, built):
        index, _ = built
        list(eager_slca(index.sources_for(self.q(), "indexed")))
        index.make_cold()
        before = index.io_snapshot()
        list(eager_slca(index.sources_for(self.q(), "indexed")))
        assert index.pager.stats.delta(before).reads > 0

    def test_pinned_internal_pages_survive_cold(self, built):
        index, _ = built
        assert index.pool.pinned_pages
        index.make_cold()
        assert index.pool.pinned_pages

    def test_fully_cold_unpins(self, built):
        index, _ = built
        index.make_fully_cold()
        assert not index.pool.pinned_pages

    def test_unpinned_index_still_correct(self, tmp_path, planted_dblp):
        build_index(planted_dblp, tmp_path / "i2", page_size=1024)
        lists = planted_dblp.keyword_lists()
        with DiskKeywordIndex(tmp_path / "i2", pin_internal=False) as index:
            assert index.keyword_list("xkmid") == lists["xkmid"]
            assert not index.pool.pinned_pages

    @staticmethod
    def q():
        return ("xkrare", "xkbig")


class TestLifecycle:
    def test_context_manager(self, tmp_path, school):
        build_index(school, tmp_path / "cm")
        with DiskKeywordIndex(tmp_path / "cm") as index:
            assert index.frequency("john") == 3

    def test_document_path(self, tmp_path, school):
        build_index(school, tmp_path / "doc")
        with DiskKeywordIndex(tmp_path / "doc") as index:
            assert index.document_path() is not None

    def test_document_path_absent(self, tmp_path, school):
        build_index(school, tmp_path / "nodoc", keep_document=False)
        with DiskKeywordIndex(tmp_path / "nodoc") as index:
            assert index.document_path() is None

    def test_missing_index_dir(self, tmp_path):
        from repro.errors import IndexNotFoundError

        with pytest.raises(IndexNotFoundError):
            DiskKeywordIndex(tmp_path / "ghost")
