"""Unit tests for the frequency table."""

from repro.index.frequency import FrequencyTable


class TestBasics:
    def test_from_lists(self):
        table = FrequencyTable.from_lists({"a": [(0, 1)], "b": [(0, 1), (0, 2)]})
        assert table.frequency("a") == 1
        assert table.frequency("b") == 2

    def test_missing_keyword_is_zero(self):
        assert FrequencyTable().frequency("nope") == 0

    def test_case_insensitive_lookup(self):
        table = FrequencyTable({"john": 3})
        assert table.frequency("John") == 3
        assert "JOHN" in table

    def test_contains_and_len(self):
        table = FrequencyTable({"a": 1, "b": 2})
        assert "a" in table and "c" not in table
        assert len(table) == 2

    def test_keywords_iteration(self):
        table = FrequencyTable({"a": 1, "b": 2})
        assert sorted(table.keywords()) == ["a", "b"]


class TestOrdering:
    def test_rarest_first(self):
        table = FrequencyTable({"common": 1000, "rare": 2, "mid": 30})
        assert table.order_by_frequency(["common", "rare", "mid"]) == [
            "rare",
            "mid",
            "common",
        ]

    def test_absent_keywords_sort_first(self):
        table = FrequencyTable({"a": 5})
        assert table.order_by_frequency(["a", "ghost"]) == ["ghost", "a"]

    def test_stable_on_ties(self):
        table = FrequencyTable({"x": 5, "y": 5, "z": 5})
        assert table.order_by_frequency(["y", "z", "x"]) == ["y", "z", "x"]


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        table = FrequencyTable({"john": 3, "ben": 2})
        path = tmp_path / "freq.json"
        table.save(path)
        again = FrequencyTable.load(path)
        assert dict(again.items()) == {"john": 3, "ben": 2}
