"""Unit tests for incremental index maintenance."""

import pytest

from repro.core import eager_slca, slca
from repro.errors import DeweyError
from repro.index.builder import build_index
from repro.index.inverted import DiskKeywordIndex
from repro.index.updates import IndexUpdater
from repro.xmltree.generate import dblp_like_tree, plant_keywords
from repro.xmltree.parser import parse
from repro.xmltree.tree import renumber_subtree


@pytest.fixture
def indexed(tmp_path):
    tree = dblp_like_tree(8, venues=2, years_per_venue=2, papers_per_year=6)
    plant_keywords(tree, {"xka": 6, "xkb": 12}, seed=4)
    target = tmp_path / "idx"
    build_index(tree, target, page_size=1024)
    return target, tree


class TestAddPostings:
    def test_new_keyword(self, indexed):
        target, _ = indexed
        with IndexUpdater(target) as updater:
            added = updater.add_postings(
                {"zzz": [((0, 0, 1, 1, 0, 0), "title"), ((0, 1, 2, 3, 0, 0), "title")]}
            )
        assert added == 2
        with DiskKeywordIndex(target) as index:
            assert index.frequency("zzz") == 2
            assert index.keyword_list("zzz") == [
                (0, 0, 1, 1, 0, 0),
                (0, 1, 2, 3, 0, 0),
            ]

    def test_extend_existing_keyword(self, indexed):
        target, tree = indexed
        before = len(tree.keyword_lists()["xka"])
        with IndexUpdater(target) as updater:
            assert updater.add_postings({"xka": [((0, 0, 1, 2, 0, 0), "title")]}) == 1
        with DiskKeywordIndex(target) as index:
            assert index.frequency("xka") == before + 1

    def test_duplicate_add_updates_tag_only(self, indexed):
        target, _ = indexed
        with IndexUpdater(target) as updater:
            updater.add_postings({"zzz": [((0, 0, 1, 1, 0, 0), "title")]})
            assert updater.add_postings({"zzz": [((0, 0, 1, 1, 0, 0), "author")]}) == 0
        with DiskKeywordIndex(target) as index:
            assert index.frequency("zzz") == 1
            assert dict(index.scan_tagged("zzz"))[(0, 0, 1, 1, 0, 0)] == "author"

    def test_oversized_dewey_rejected(self, indexed):
        target, _ = indexed
        with IndexUpdater(target) as updater:
            with pytest.raises(DeweyError):
                updater.add_postings({"zzz": [((0, 99), "")]})

    def test_lookup_paths_consistent_after_add(self, indexed):
        target, _ = indexed
        with IndexUpdater(target) as updater:
            updater.add_postings({"zzz": [((0, 0, 1, 1, 0, 0), ""), ((0, 1, 1, 1, 0, 0), "")]})
        with DiskKeywordIndex(target) as index:
            il = list(eager_slca(index.sources_for(("zzz", "xkb"), "indexed")))
            scan = list(eager_slca(index.sources_for(("zzz", "xkb"), "scan")))
            assert il == scan


class TestRemovePostings:
    def test_remove_and_requery(self, indexed):
        target, tree = indexed
        victims = tree.keyword_lists()["xka"][:2]
        with IndexUpdater(target) as updater:
            assert updater.remove_postings({"xka": victims}) == 2
        with DiskKeywordIndex(target) as index:
            remaining = index.keyword_list("xka")
            assert len(remaining) == 4
            assert not set(victims) & set(remaining)
            # The engine agrees with a fresh in-memory computation.
            want = slca([remaining, index.keyword_list("xkb")])
            got = list(eager_slca(index.sources_for(("xka", "xkb"), "indexed")))
            assert got == want

    def test_remove_nonexistent_is_zero(self, indexed):
        target, _ = indexed
        with IndexUpdater(target) as updater:
            assert updater.remove_postings({"xka": [(0, 1, 1, 1, 1, 0)]}) in (0, 1)
            assert updater.remove_postings({"ghost": [(0, 0, 1, 1, 0, 0)]}) == 0

    def test_remove_all_drops_keyword(self, indexed):
        target, tree = indexed
        with IndexUpdater(target) as updater:
            updater.remove_postings({"xka": tree.keyword_lists()["xka"]})
        with DiskKeywordIndex(target) as index:
            assert index.frequency("xka") == 0
            assert index.keyword_list("xka") == []
            assert "xka" not in index


class TestSubtrees:
    def test_add_subtree(self, indexed):
        target, _ = indexed
        fragment = parse("<paper><title>fresh unseen words</title></paper>")
        renumber_subtree(fragment.root, (0, 1, 2, 4))
        with IndexUpdater(target) as updater:
            added = updater.add_subtree(fragment.root)
        assert added > 0
        with DiskKeywordIndex(target) as index:
            assert index.keyword_list("unseen") == [(0, 1, 2, 4, 0, 0)]
            # element tags are indexed too
            assert (0, 1, 2, 4) in index.keyword_list("paper")

    def test_remove_subtree_inverts_add(self, indexed):
        target, _ = indexed
        fragment = parse("<paper><title>fresh unseen words</title></paper>")
        renumber_subtree(fragment.root, (0, 1, 2, 4))
        with IndexUpdater(target) as updater:
            updater.add_subtree(fragment.root)
        with IndexUpdater(target) as updater:
            updater.remove_subtree(fragment.root)
        with DiskKeywordIndex(target) as index:
            assert index.keyword_list("unseen") == []


class TestMetadata:
    def test_manifest_postings_updated(self, indexed):
        target, _ = indexed
        from repro.index.builder import load_manifest

        before = load_manifest(target)["postings"]
        with IndexUpdater(target) as updater:
            updater.add_postings({"zzz": [((0, 0, 1, 1, 0, 0), "")]})
        after = load_manifest(target)
        assert after["postings"] == before + 1

    def test_stored_document_invalidated(self, indexed):
        target, _ = indexed
        assert (target / "document.xml").exists()
        with IndexUpdater(target) as updater:
            updater.add_postings({"zzz": [((0, 0, 1, 1, 0, 0), "")]})
        assert not (target / "document.xml").exists()
        from repro.index.builder import load_manifest

        assert load_manifest(target)["has_document"] is False

    def test_noop_update_keeps_document(self, indexed):
        target, _ = indexed
        with IndexUpdater(target):
            pass
        assert (target / "document.xml").exists()

    def test_new_tags_persisted(self, indexed):
        target, _ = indexed
        with IndexUpdater(target) as updater:
            updater.add_postings({"zzz": [((0, 0, 1, 1, 0, 0), "brandnewtag")]})
        with DiskKeywordIndex(target) as index:
            assert "brandnewtag" in index.tags
            assert index.keyword_list("zzz", tag="brandnewtag") == [(0, 0, 1, 1, 0, 0)]

    def test_close_idempotent(self, indexed):
        target, _ = indexed
        updater = IndexUpdater(target)
        updater.close()
        updater.close()


class TestScanBlockRewrite:
    def test_many_small_blocks_survive_update(self, tmp_path):
        lists = {"a": [(0, i) for i in range(0, 400, 2)]}
        build_index(lists, tmp_path / "i", scan_block_budget=32)
        with IndexUpdater(tmp_path / "i") as updater:
            updater.add_postings({"a": [((0, j), "") for j in range(1, 400, 2)]})
        with DiskKeywordIndex(tmp_path / "i") as index:
            assert index.keyword_list("a") == [(0, i) for i in range(400)]

    def test_shrinking_blocks_removes_stale_tail(self, tmp_path):
        lists = {"a": [(0, i) for i in range(300)]}
        build_index(lists, tmp_path / "i", scan_block_budget=32)
        with IndexUpdater(tmp_path / "i") as updater:
            updater.remove_postings({"a": [(0, i) for i in range(10, 300)]})
        with DiskKeywordIndex(tmp_path / "i") as index:
            assert index.keyword_list("a") == [(0, i) for i in range(10)]
