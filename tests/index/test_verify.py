"""Unit tests for index verification."""

import json

import pytest

from repro.index.builder import build_index
from repro.index.updates import IndexUpdater
from repro.index.verify import verify_index
from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager


@pytest.fixture
def built(tmp_path, planted_dblp):
    target = tmp_path / "idx"
    build_index(planted_dblp, target, page_size=1024)
    return target


class TestCleanIndex:
    def test_fresh_index_verifies(self, built):
        report = verify_index(built)
        assert report.ok, report.summary()
        assert report.postings > 0
        assert report.keywords > 0

    def test_summary_mentions_ok(self, built):
        assert "OK" in verify_index(built).summary()

    def test_updated_index_verifies(self, built):
        with IndexUpdater(built) as updater:
            updater.add_postings({"brandnew": [((0, 0, 1, 1, 0, 0), "title")]})
            updater.remove_postings({"xkmid": [(0, 9, 9)]})
        report = verify_index(built)
        assert report.ok, report.summary()

    def test_verify_after_heavy_update_cycle(self, built, planted_dblp):
        lists = planted_dblp.keyword_lists()
        victims = lists["xkbig"][:30]
        with IndexUpdater(built) as updater:
            updater.remove_postings({"xkbig": victims})
        with IndexUpdater(built) as updater:
            updater.add_postings({"xkbig": [(d, "title") for d in victims]})
        report = verify_index(built)
        assert report.ok, report.summary()


class TestDetection:
    def test_missing_index(self, tmp_path):
        report = verify_index(tmp_path / "ghost")
        assert not report.ok

    def test_frequency_drift_detected(self, built):
        path = built / "frequency.json"
        table = json.loads(path.read_text())
        table["xkmid"] = table["xkmid"] + 5
        path.write_text(json.dumps(table))
        report = verify_index(built)
        assert not report.ok
        assert any("frequency table" in e for e in report.errors)

    def test_phantom_keyword_detected(self, built):
        path = built / "frequency.json"
        table = json.loads(path.read_text())
        table["phantom"] = 3
        path.write_text(json.dumps(table))
        report = verify_index(built)
        assert any("phantom" in e for e in report.errors)

    def test_scan_il_divergence_detected(self, built):
        # Surgically delete one IL posting without rewriting scan blocks.
        with Pager(built / "index.db") as pager:
            pool = BufferPool(pager, capacity=256)
            il = BPlusTree(pool, "il")
            key = next(iter(il.scan()))[0]
            il.delete(key)
        report = verify_index(built)
        assert not report.ok
        assert any("divergence" in e or "frequency" in e for e in report.errors)

    def test_corrupt_page_reported_not_raised(self, built):
        import os

        path = built / "index.db"
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            for offset in range(1024, size, 1024):
                fh.seek(offset)
                fh.write(b"\x77")
        report = verify_index(built)
        assert not report.ok

    def test_error_cap(self, built):
        path = built / "frequency.json"
        table = json.loads(path.read_text())
        for i in range(200):
            table[f"phantom{i}"] = 1
        path.write_text(json.dumps(table))
        report = verify_index(built)
        assert len(report.errors) <= 50


class TestCLI:
    def test_verify_command_ok(self, built, capsys):
        from repro.xksearch.cli import main

        assert main(["verify", str(built)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_command_failure(self, built, capsys):
        from repro.xksearch.cli import main

        path = built / "frequency.json"
        table = json.loads(path.read_text())
        table["phantom"] = 1
        path.write_text(json.dumps(table))
        assert main(["verify", str(built)]) == 1
        assert "FAILED" in capsys.readouterr().out
