"""Structured logging: one JSON schema, level control, trace-id context.

Every line must carry ``ts``/``level``/``component``/``event``; the
``trace_id`` rides along whenever the context variable is bound (the
server binds it per request).  Unconfigured logging emits nothing.
"""

import io
import json
import logging as stdlib_logging

import pytest

from repro.obs.logging import (
    LOG_LEVEL_ENV,
    JsonLogFormatter,
    LogSampler,
    TextLogFormatter,
    configure_logging,
    current_trace_id,
    get_logger,
    get_log_sampler,
    logging_configured,
    parse_level,
    reset_current_trace_id,
    reset_logging,
    set_current_trace_id,
    set_log_sampling,
)


@pytest.fixture(autouse=True)
def clean_logging_state(monkeypatch):
    monkeypatch.delenv(LOG_LEVEL_ENV, raising=False)
    reset_logging()
    yield
    reset_logging()


def capture(level="info", json_mode=True):
    stream = io.StringIO()
    configure_logging(level=level, json_mode=json_mode, stream=stream)
    return stream


def lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestSchema:
    def test_one_json_object_per_line_with_required_keys(self):
        stream = capture()
        log = get_logger("engine")
        log.info("query_executed", algorithm="il", exec_ms=1.25)
        (record,) = lines(stream)
        assert record["level"] == "info"
        assert record["component"] == "engine"
        assert record["event"] == "query_executed"
        assert record["algorithm"] == "il"
        assert record["exec_ms"] == 1.25
        assert isinstance(record["ts"], float)

    def test_trace_id_attached_from_context(self):
        stream = capture()
        log = get_logger("server")
        token = set_current_trace_id("aaaabbbbccccdddd")
        try:
            log.info("request", path="/api/search")
        finally:
            reset_current_trace_id(token)
        log.info("request", path="/api/search")
        first, second = lines(stream)
        assert first["trace_id"] == "aaaabbbbccccdddd"
        assert "trace_id" not in second

    def test_context_reset_restores_previous_binding(self):
        outer = set_current_trace_id("0000000000000001")
        inner = set_current_trace_id("0000000000000002")
        assert current_trace_id() == "0000000000000002"
        reset_current_trace_id(inner)
        assert current_trace_id() == "0000000000000001"
        reset_current_trace_id(outer)
        assert current_trace_id() is None

    def test_non_serializable_fields_are_stringified(self):
        stream = capture()
        get_logger("test").info("event", value=object())
        (record,) = lines(stream)
        assert isinstance(record["value"], str)

    def test_text_mode_renders_key_values(self):
        stream = io.StringIO()
        configure_logging(level="info", json_mode=False, stream=stream)
        get_logger("cache").info("invalidated", generation=3)
        line = stream.getvalue().strip()
        assert "cache" in line and "invalidated" in line and "generation=3" in line


class TestLevels:
    def test_parse_level(self):
        assert parse_level("info") == stdlib_logging.INFO
        assert parse_level("WARNING") == stdlib_logging.WARNING
        assert parse_level("nope") is None
        assert parse_level(None) is None

    def test_below_threshold_is_suppressed(self):
        stream = capture(level="warning")
        log = get_logger("engine")
        log.debug("noisy")
        log.info("still_noisy")
        log.warning("kept")
        records = lines(stream)
        assert [r["event"] for r in records] == ["kept"]
        assert records[0]["level"] == "warning"

    def test_enabled_for_gates_hot_paths(self):
        capture(level="warning")
        log = get_logger("engine")
        assert not log.enabled_for("debug")
        assert log.enabled_for("error")


class TestConfiguration:
    def test_unconfigured_logging_is_silent(self, capsys):
        get_logger("engine").info("event")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""
        assert not logging_configured()

    def test_env_variable_auto_configures(self, monkeypatch, capsys):
        monkeypatch.setenv(LOG_LEVEL_ENV, "debug")
        get_logger("engine").debug("auto_configured")
        assert logging_configured()
        err = capsys.readouterr().err
        record = json.loads(err.strip())
        assert record["event"] == "auto_configured"

    def test_env_level_respected_by_explicit_configure(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "error")
        stream = io.StringIO()
        configure_logging(stream=stream)  # no explicit level -> env wins
        log = get_logger("engine")
        log.warning("dropped")
        log.error("kept")
        assert [r["event"] for r in lines(stream)] == ["kept"]

    def test_reconfigure_replaces_handler(self):
        first = capture()
        second = capture()
        get_logger("engine").info("event")
        assert first.getvalue() == ""
        assert lines(second)


class TestFormatters:
    def _record(self, **extra):
        record = stdlib_logging.LogRecord(
            "repro.test", stdlib_logging.INFO, __file__, 1, "msg", (), None
        )
        for key, value in extra.items():
            setattr(record, key, value)
        return record

    def test_json_formatter_compact_separators(self):
        line = JsonLogFormatter().format(
            self._record(component="c", event="e", trace_id=None, fields={"k": 1})
        )
        assert ", " not in line and ": " not in line
        assert json.loads(line)["k"] == 1

    def test_text_formatter_includes_trace_id_when_bound(self):
        line = TextLogFormatter().format(
            self._record(
                component="c", event="e", trace_id="aaaabbbbccccdddd", fields={}
            )
        )
        assert "trace_id=aaaabbbbccccdddd" in line


class TestSampling:
    """Token-bucket adaptive sampling: lossy only where it is safe to be."""

    @pytest.fixture(autouse=True)
    def clean_sampler(self):
        set_log_sampling(None)
        yield
        set_log_sampling(None)

    def test_burst_then_deny_with_exact_drop_counts(self):
        # A tiny rate means no measurable refill during the test: the
        # bucket passes exactly `burst` lines, then denies.
        sampler = LogSampler(rate=0.0001, burst=2)
        allowed = [sampler.allow("engine", "hot") for _ in range(10)]
        assert allowed == [True, True] + [False] * 8
        assert sampler.dropped() == {"hot": 8}
        assert sampler.dropped_total == 8

    def test_streams_have_independent_buckets(self):
        sampler = LogSampler(rate=0.0001, burst=1)
        assert sampler.allow("engine", "a")
        assert not sampler.allow("engine", "a")
        assert sampler.allow("engine", "b")  # different event, fresh bucket
        assert sampler.allow("cache", "a")  # different component, fresh bucket

    def test_burst_defaults_to_twice_rate_with_floor_of_one(self):
        assert LogSampler(rate=5.0).burst == 10.0
        assert LogSampler(rate=0.1).burst == 1.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            LogSampler(rate=0.0)

    def test_set_log_sampling_installs_and_disables(self):
        sampler = set_log_sampling(3.0)
        assert get_log_sampler() is sampler
        assert sampler.rate == 3.0
        assert set_log_sampling(None) is None
        assert get_log_sampler() is None
        assert set_log_sampling(-1) is None  # non-positive also disables

    def test_info_chatter_is_sampled(self):
        stream = capture()
        set_log_sampling(0.0001, burst=2)
        log = get_logger("engine")
        for _ in range(10):
            log.info("hot_event")
        assert len(lines(stream)) == 2
        assert get_log_sampler().dropped() == {"hot_event": 8}

    def test_warnings_bypass_sampling(self):
        stream = capture()
        set_log_sampling(0.0001, burst=1)
        log = get_logger("engine")
        for _ in range(5):
            log.warning("always_kept")
        assert len(lines(stream)) == 5
        assert get_log_sampler().dropped_total == 0

    def test_traced_requests_bypass_sampling(self):
        stream = capture()
        set_log_sampling(0.0001, burst=1)
        log = get_logger("engine")
        token = set_current_trace_id("aaaabbbbccccdddd")
        try:
            for _ in range(5):
                log.info("traced_event")
        finally:
            reset_current_trace_id(token)
        assert len(lines(stream)) == 5
        assert get_log_sampler().dropped_total == 0

    def test_disabled_levels_never_consume_tokens(self):
        capture(level="warning")
        set_log_sampling(0.0001, burst=1)
        log = get_logger("engine")
        for _ in range(5):
            log.info("below_threshold")  # suppressed before the sampler
        assert get_log_sampler().dropped_total == 0

    def test_drop_counts_exposed_via_registry_collector(self):
        from repro.obs.metrics import get_registry

        capture()
        set_log_sampling(0.0001, burst=1)
        log = get_logger("engine")
        for _ in range(4):
            log.info("scraped_event")
        rendered = get_registry().render()
        assert 'xks_log_sampled_total{event="scraped_event"} 3' in rendered
