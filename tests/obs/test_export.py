"""Export pipeline: sinks, background exporter accounting, retry/backoff,
queue-full drops and flush-on-close.

The contract under test (see repro/obs/export.py): ``submit`` never
blocks, every submitted record is eventually either sent or counted in a
drop bucket, and after ``close()`` the accounting is exact::

    submitted == sent + dropped_total
"""

import json
import threading
import time

import pytest

from repro.obs.export import (
    DROP_QUEUE_FULL,
    DROP_SEND_FAILED,
    DROP_SHUTDOWN,
    BackgroundExporter,
    ExportError,
    ExportSink,
    HttpCollectorSink,
    JsonlFileSink,
    MemorySink,
    MetricsExporter,
    TraceExporter,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Trace


class FlakySink(ExportSink):
    """Fails the first ``failures`` sends, then succeeds."""

    def __init__(self, failures: int):
        self.failures = failures
        self.attempts = 0
        self.records = []
        self._lock = threading.Lock()

    def send(self, records):
        with self._lock:
            self.attempts += 1
            if self.attempts <= self.failures:
                raise ExportError("transient collector failure")
            self.records.extend(records)


class DeadSink(ExportSink):
    """Every send fails (collector permanently down)."""

    def __init__(self):
        self.attempts = 0

    def send(self, records):
        self.attempts += 1
        raise ExportError("collector down")


def fast_exporter(sink, **kwargs):
    """An exporter with test-friendly timings (no multi-second backoffs)."""
    defaults = dict(
        flush_interval=0.01,
        backoff_base=0.001,
        backoff_max=0.01,
        jitter=0.0,
        registry=MetricsRegistry(),
    )
    defaults.update(kwargs)
    return BackgroundExporter(sink, **defaults)


class TestSinks:
    def test_memory_sink_collects(self):
        sink = MemorySink()
        sink.send([{"a": 1}, {"b": 2}])
        assert len(sink) == 2
        assert sink.records[0] == {"a": 1}

    def test_jsonl_sink_appends_one_object_per_line(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = JsonlFileSink(str(path))
        sink.send([{"a": 1}])
        sink.send([{"b": 2}])
        sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == [{"a": 1}, {"b": 2}]

    def test_jsonl_sink_is_lazy(self, tmp_path):
        path = tmp_path / "sub" / "out.jsonl"
        sink = JsonlFileSink(str(path))  # constructing never touches the disk
        assert not path.exists()
        with pytest.raises(ExportError):
            sink.send([{"a": 1}])  # parent dir missing -> ExportError, not OSError

    def test_jsonl_sink_describe(self, tmp_path):
        assert JsonlFileSink(str(tmp_path / "t.jsonl")).describe().startswith("jsonl:")

    def test_http_sink_raises_export_error_when_unreachable(self):
        sink = HttpCollectorSink("http://127.0.0.1:9/never", timeout=0.2)
        with pytest.raises(ExportError):
            sink.send([{"a": 1}])


class TestAccounting:
    def test_all_sent_invariant(self):
        sink = MemorySink()
        with fast_exporter(sink) as exporter:
            for i in range(50):
                assert exporter.submit({"i": i})
            assert exporter.flush(timeout=5.0)
        stats = exporter.stats.as_dict()
        assert stats["submitted"] == 50
        assert stats["sent"] == 50
        assert stats["dropped_total"] == 0
        assert len(sink) == 50

    def test_queue_full_drops_are_counted(self):
        # A dead sink with huge backoff wedges the flusher, so the bounded
        # queue fills and further submits drop without blocking.
        sink = DeadSink()
        exporter = BackgroundExporter(
            sink,
            queue_size=4,
            batch_size=4,
            flush_interval=30.0,
            backoff_base=30.0,
            backoff_max=30.0,
            max_retries=4,
            registry=MetricsRegistry(),
        )
        try:
            results = [exporter.submit({"i": i}) for i in range(10)]
            assert results.count(False) >= 10 - 4 - 4  # queue + one in-flight batch
            stats = exporter.stats.as_dict()
            assert stats["dropped"].get(DROP_QUEUE_FULL, 0) >= 2
        finally:
            exporter.close(flush_timeout=0.1)
        stats = exporter.stats.as_dict()
        assert stats["submitted"] == stats["sent"] + stats["dropped_total"]

    def test_submit_after_close_is_a_shutdown_drop(self):
        exporter = fast_exporter(MemorySink())
        exporter.close()
        assert exporter.submit({"late": True}) is False
        assert exporter.stats.as_dict()["dropped"].get(DROP_SHUTDOWN, 0) == 1

    def test_registry_mirror(self):
        registry = MetricsRegistry()
        with fast_exporter(MemorySink(), registry=registry, name="t") as exporter:
            exporter.submit({"a": 1})
            exporter.flush(timeout=5.0)
        text = registry.render()
        assert 'xks_export_sent_total{exporter="t"} 1' in text
        assert 'xks_export_queue_depth{exporter="t"} 0' in text


class TestRetryBackoff:
    def test_transient_failure_is_retried_and_delivered(self):
        sink = FlakySink(failures=2)
        with fast_exporter(sink, max_retries=4) as exporter:
            exporter.submit({"a": 1})
            assert exporter.flush(timeout=5.0)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not sink.records:
                time.sleep(0.01)
        stats = exporter.stats.as_dict()
        assert stats["sent"] == 1
        assert stats["retries"] == 2
        assert sink.records == [{"a": 1}]

    def test_exhausted_retries_drop_the_batch(self):
        sink = DeadSink()
        with fast_exporter(sink, max_retries=2) as exporter:
            exporter.submit({"a": 1})
            deadline = time.monotonic() + 5.0
            while (
                time.monotonic() < deadline
                and not exporter.stats.as_dict()["dropped_total"]
            ):
                time.sleep(0.01)
        stats = exporter.stats.as_dict()
        assert stats["dropped"].get(DROP_SEND_FAILED, 0) >= 1
        assert sink.attempts >= 3  # 1 initial + 2 retries
        assert stats["submitted"] == stats["sent"] + stats["dropped_total"]

    def test_backoff_grows_and_is_capped(self):
        exporter = fast_exporter(
            MemorySink(), backoff_base=0.05, backoff_max=0.2, jitter=0.0
        )
        try:
            delays = [exporter._backoff(attempt) for attempt in range(6)]
            assert delays[0] == pytest.approx(0.05)
            assert delays[1] == pytest.approx(0.10)
            assert all(d <= 0.2 for d in delays[2:])
            assert sorted(delays) == delays
        finally:
            exporter.close()

    def test_jitter_spreads_the_backoff(self):
        exporter = fast_exporter(
            MemorySink(), backoff_base=0.1, backoff_max=10.0, jitter=0.5
        )
        try:
            delays = {round(exporter._backoff(0), 6) for _ in range(20)}
            assert len(delays) > 1
            assert all(0.1 <= d <= 0.15 + 1e-9 for d in delays)
        finally:
            exporter.close()


class TestClose:
    def test_close_flushes_pending_records(self):
        sink = MemorySink()
        exporter = fast_exporter(sink, flush_interval=60.0)  # flusher asleep
        for i in range(10):
            exporter.submit({"i": i})
        exporter.close(flush_timeout=5.0)
        assert len(sink) == 10
        assert exporter.stats.as_dict()["dropped_total"] == 0

    def test_close_counts_undeliverable_as_shutdown_drops(self):
        exporter = BackgroundExporter(
            DeadSink(),
            flush_interval=30.0,
            backoff_base=30.0,
            backoff_max=30.0,
            registry=MetricsRegistry(),
        )
        for i in range(5):
            exporter.submit({"i": i})
        exporter.close(flush_timeout=0.2)
        stats = exporter.stats.as_dict()
        assert stats["submitted"] == 5
        assert stats["sent"] == 0
        assert stats["submitted"] == stats["sent"] + stats["dropped_total"]

    def test_close_is_idempotent(self):
        exporter = fast_exporter(MemorySink())
        exporter.submit({"a": 1})
        exporter.close()
        exporter.close()
        assert exporter.stats.as_dict()["submitted"] == 1


class TestTraceExporter:
    def test_export_trace_serializes_the_span_tree(self):
        sink = MemorySink()
        exporter = TraceExporter(
            sink, flush_interval=0.01, registry=MetricsRegistry()
        )
        trace = Trace("request", trace_id="aaaabbbbccccdddd")
        with trace.span("engine"):
            pass
        trace.finish()
        exporter.export_trace(trace)
        exporter.close()
        assert len(sink) == 1
        record = sink.records[0]
        assert record["kind"] == "trace"
        assert record["trace_id"] == "aaaabbbbccccdddd"
        assert record["children"][0]["name"] == "engine"
        assert "exported_at" in record


class TestMetricsExporter:
    def test_snapshot_ships_registry_samples(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "d").inc(3)
        sink = MemorySink()
        exporter = MetricsExporter(
            registry=registry, sink=sink, interval=3600.0, flush_interval=0.01
        )
        exporter.snapshot()
        exporter.close()
        assert len(sink) == 1
        record = sink.records[0]
        assert record["kind"] == "metrics"
        names = {sample["name"] for sample in record["samples"]}
        assert "demo_total" in names
        # The exporter's own pipeline metrics are excluded from snapshots.
        assert not any(name.startswith("xks_export_") for name in names)


class TestOtlpRecord:
    def _samples(self):
        from repro.obs.metrics import Sample

        return [
            Sample("xks_queries_total", 7.0, {"algorithm": "il"}, kind="counter"),
            Sample("xks_cache_entries", 3.0, {}, kind="gauge"),
            Sample(
                "xks_query_exec_ms_bucket", 5.0, {"le": "16"}, kind="histogram"
            ),
        ]

    def test_counters_and_histograms_become_monotonic_sums(self):
        from repro.obs.export import otlp_metrics_record

        record = otlp_metrics_record(self._samples(), ts=100.0)
        metrics = {
            m["name"]: m
            for m in record["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        }
        for name in ("xks_queries_total", "xks_query_exec_ms_bucket"):
            sum_block = metrics[name]["sum"]
            assert sum_block["aggregationTemporality"] == 2  # CUMULATIVE
            assert sum_block["isMonotonic"] is True
        assert "gauge" in metrics["xks_cache_entries"]
        point = metrics["xks_queries_total"]["sum"]["dataPoints"][0]
        assert point["asDouble"] == 7.0
        assert point["timeUnixNano"] == int(100.0 * 1e9)
        assert point["attributes"] == [
            {"key": "algorithm", "value": {"stringValue": "il"}}
        ]

    def test_resource_carries_service_name(self):
        from repro.obs.export import otlp_metrics_record

        record = otlp_metrics_record([], ts=1.0, service_name="svc")
        attrs = record["resourceMetrics"][0]["resource"]["attributes"]
        assert {"key": "service.name", "value": {"stringValue": "svc"}} in attrs
        assert record["format"] == "otlp"
        json.dumps(record)  # collector-ready JSON


class TestSnapshotShipper:
    def _shipper(self, sink, registry, **kwargs):
        from repro.obs.export import SnapshotShipper

        kwargs.setdefault("interval", 3600.0)
        kwargs.setdefault("flush_interval", 0.01)
        return SnapshotShipper(registry=registry, sink=sink, **kwargs)

    def test_flat_snapshot_record(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "d").inc(2)
        sink = MemorySink()
        shipper = self._shipper(sink, registry)
        shipper.snapshot()
        shipper.close()
        (record,) = sink.records
        assert record["kind"] == "metrics"
        assert {"name": "demo_total", "labels": {}, "value": 2.0} in record[
            "samples"
        ]

    def test_otlp_snapshot_record(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "d").inc(2)
        sink = MemorySink()
        shipper = self._shipper(sink, registry, otlp=True)
        shipper.snapshot()
        shipper.close()
        (record,) = sink.records
        assert record["format"] == "otlp"
        metrics = record["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        assert any(m["name"] == "demo_total" and "sum" in m for m in metrics)

    def test_alerts_and_snapshots_share_the_pipeline(self):
        registry = MetricsRegistry()
        sink = MemorySink()
        shipper = self._shipper(sink, registry)
        alert = {"kind": "alert", "alert": "lat:fast", "from": "ok", "to": "firing"}
        assert shipper.ship_alert(alert)
        shipper.snapshot()
        shipper.close()
        kinds = [record["kind"] for record in sink.records]
        assert kinds == ["alert", "metrics"]
        stats = shipper.stats.as_dict()
        assert stats["submitted"] == 2
        assert stats["submitted"] == stats["sent"] + stats["dropped_total"]

    def test_timer_ships_without_explicit_snapshot_calls(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "d").inc()
        sink = MemorySink()
        shipper = self._shipper(sink, registry, interval=0.02)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and len(sink) < 2:
            time.sleep(0.01)
        shipper.close()
        assert len(sink) >= 2  # the flusher thread snapshots on its own

    def test_pipeline_metrics_use_snapshot_exporter_label(self):
        registry = MetricsRegistry()
        sink = MemorySink()
        shipper = self._shipper(sink, registry)
        shipper.snapshot()
        shipper.flush(5.0)
        shipper.close()
        rendered = registry.render()
        assert 'xks_export_sent_total{exporter="snapshot"} 1' in rendered


class TestHttpSinkHardening:
    def test_non_positive_timeout_rejected(self):
        for bad in (None, 0, -1.0):
            with pytest.raises(ValueError):
                HttpCollectorSink("http://localhost:9", timeout=bad)

    def test_default_timeout_is_finite(self):
        sink = HttpCollectorSink("http://localhost:9")
        assert sink.timeout > 0

    def test_post_sends_explicit_content_type(self):
        import http.server

        seen = {}

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_POST(self):
                seen["content_type"] = self.headers["Content-Type"]
                length = int(self.headers["Content-Length"])
                seen["body"] = self.rfile.read(length)
                self.send_response(204)
                self.end_headers()

            def log_message(self, *args):
                pass

        server = http.server.HTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}/v1/records"
            sink = HttpCollectorSink(url, timeout=5.0)
            sink.send([{"kind": "alert", "to": "firing"}])
        finally:
            server.shutdown()
            server.server_close()
        assert seen["content_type"] == "application/json"
        assert json.loads(seen["body"])["records"][0]["to"] == "firing"


class TestFanoutExporter:
    def test_fans_out_to_every_target(self):
        from repro.obs.export import FanoutExporter

        sink_a, sink_b = MemorySink(), MemorySink()
        fanout = FanoutExporter([fast_exporter(sink_a), fast_exporter(sink_b)])
        assert fanout.submit({"kind": "alert", "to": "firing"})
        assert fanout.flush(5.0)
        fanout.close()
        assert len(sink_a) == 1 and len(sink_b) == 1

    def test_dead_target_does_not_steal_from_live_one(self):
        from repro.obs.export import FanoutExporter

        live = MemorySink()
        fanout = FanoutExporter(
            [
                fast_exporter(DeadSink(), max_retries=0),
                fast_exporter(live),
            ]
        )
        assert fanout.submit({"i": 1})  # accepted by at least one queue
        fanout.flush(5.0)
        fanout.close(flush_timeout=0.5)
        assert len(live) == 1

    def test_none_targets_filtered_empty_rejected(self):
        from repro.obs.export import FanoutExporter

        sink = MemorySink()
        fanout = FanoutExporter([None, fast_exporter(sink)])
        assert len(fanout.targets) == 1
        fanout.close()
        with pytest.raises(ValueError):
            FanoutExporter([None])

    def test_owns_controls_which_targets_close(self):
        from repro.obs.export import FanoutExporter

        shared_sink, owned_sink = MemorySink(), MemorySink()
        shared = fast_exporter(shared_sink)
        owned = fast_exporter(owned_sink)
        fanout = FanoutExporter([shared, owned], owns=[owned])
        fanout.submit({"i": 1})
        fanout.close()  # closes only the owned exporter
        assert shared.submit({"i": 2})  # the shared one still runs
        shared.close()
        assert len(shared_sink) == 2
        assert len(owned_sink) == 1
