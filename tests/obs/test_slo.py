"""SLO definitions, burn-rate evaluation, and the alert state machine.

Everything runs against a private registry and an injected fake clock —
no sleeps, no background threads (``evaluate(now)`` is called directly),
so every transition is deterministic.
"""

import json

import pytest

from repro.obs.export import MemorySink, SnapshotShipper
from repro.obs.metrics import MetricsRegistry, exponential_buckets
from repro.obs.slo import (
    ALERT_STATES,
    Alert,
    BurnRule,
    SLODefinition,
    SLOEngine,
    WindowPolicy,
    default_slos,
    parse_duration,
    parse_slo,
)

EXEC_BUCKETS = exponential_buckets(0.01, 2.0, 20)


class TestParsing:
    def test_duration_units(self):
        assert parse_duration("90s") == 90.0
        assert parse_duration("5m") == 300.0
        assert parse_duration("6h") == 21600.0
        assert parse_duration("30d") == 30 * 86400.0
        with pytest.raises(ValueError):
            parse_duration("5 fortnights")

    def test_availability_spec(self):
        slo = parse_slo("availability:99.9")
        assert slo.kind == "availability"
        assert slo.objective == pytest.approx(0.999)
        assert slo.budget == pytest.approx(0.001)
        assert slo.window_s == 30 * 86400.0

    def test_latency_spec_with_options(self):
        slo = parse_slo("latency:p99<=250ms:band=1000+:window=7d:name=heavy")
        assert slo.kind == "latency"
        assert slo.objective == pytest.approx(0.99)
        assert slo.threshold_ms == 250.0
        assert slo.band == "1000+"
        assert slo.window_s == 7 * 86400.0
        assert slo.name == "heavy"

    def test_generated_names_are_stable(self):
        assert parse_slo("availability:99.9").name == "availability-99.9"
        assert "p99" in parse_slo("latency:p99<=50ms").name

    def test_bad_specs_rejected(self):
        for spec in (
            "",
            "availability",
            "availability:150",
            "latency:p99<=fastms",
            "wibble:99",
            "latency:p99<=50ms:frobnicate=1",
            "availability:99.9:band=1000+",  # band is a latency-only option
        ):
            with pytest.raises(ValueError):
                parse_slo(spec)

    def test_endpoint_option(self):
        slo = parse_slo("availability:99.9:endpoint=/api/search")
        assert slo.endpoints == ("/api/search",)

    def test_default_slos_parse(self):
        slos = default_slos()
        assert len(slos) >= 2
        assert len({slo.name for slo in slos}) == len(slos)

    def test_definition_validation(self):
        with pytest.raises(ValueError):
            SLODefinition(name="x", kind="latency", objective=0.99)  # no threshold
        with pytest.raises(ValueError):
            SLODefinition(name="x", kind="availability", objective=1.5)
        with pytest.raises(ValueError):
            SLODefinition(name="bad name!", kind="availability", objective=0.99)


class TestWindowPolicy:
    def test_default_rules_are_google_sre(self):
        policy = WindowPolicy()
        severities = {rule.severity: rule for rule in policy.rules}
        assert severities["fast"].short_s == 300.0
        assert severities["fast"].long_s == 3600.0
        assert severities["fast"].max_burn == pytest.approx(14.4)
        assert severities["slow"].long_s == 21600.0
        assert policy.horizon_s == 21600.0

    def test_scaled_shrinks_every_duration(self):
        scaled = WindowPolicy().scaled(0.01)
        fast = [rule for rule in scaled.rules if rule.severity == "fast"][0]
        assert fast.short_s == pytest.approx(3.0)
        assert fast.long_s == pytest.approx(36.0)
        assert fast.max_burn == pytest.approx(14.4)  # thresholds unscaled
        assert scaled.resolution_s == pytest.approx(0.15)

    def test_duplicate_severities_rejected(self):
        with pytest.raises(ValueError):
            WindowPolicy(rules=(BurnRule(1, 2, 3, "x"), BurnRule(4, 5, 6, "x")))


class TestAlertStateMachine:
    def mk(self, for_s=2.0, resolved_keep_s=5.0):
        slo = parse_slo("availability:99:name=t")
        rule = BurnRule(short_s=1.0, long_s=2.0, max_burn=10.0,
                        severity="fast", for_s=for_s)
        return Alert(slo, rule, resolved_keep_s=resolved_keep_s)

    def test_full_lifecycle(self):
        alert = self.mk()
        assert alert.update(True, 0.0) == ("ok", "pending")
        assert alert.update(True, 1.0) is None  # for-duration not yet held
        assert alert.update(True, 2.0) == ("pending", "firing")
        assert alert.update(True, 3.0) is None
        assert alert.update(False, 4.0) == ("firing", "resolved")
        assert alert.update(False, 5.0) is None  # resolved_keep_s not over
        assert alert.update(False, 10.0) == ("resolved", "ok")

    def test_pending_cancels_without_firing(self):
        alert = self.mk(for_s=10.0)
        alert.update(True, 0.0)
        assert alert.update(False, 1.0) == ("pending", "ok")

    def test_zero_for_duration_fires_immediately(self):
        alert = self.mk(for_s=0.0)
        assert alert.update(True, 0.0) == ("ok", "firing")

    def test_refire_from_resolved(self):
        alert = self.mk(for_s=0.0)
        alert.update(True, 0.0)
        alert.update(False, 1.0)
        assert alert.state == "resolved"
        assert alert.update(True, 2.0) == ("resolved", "firing")

    def test_state_indexes_match_gauge_doc(self):
        assert ALERT_STATES == ("ok", "pending", "firing", "resolved")


def make_engine(registry, *, exporter=None, resolved_keep_s=5.0, clock):
    policy = WindowPolicy(
        rules=(BurnRule(short_s=5.0, long_s=20.0, max_burn=14.4,
                        severity="fast", for_s=2.0),),
        resolution_s=1.0,
    )
    return SLOEngine(
        slos=[
            parse_slo("latency:p99<=5ms:name=lat"),
            parse_slo("availability:99:name=avail"),
        ],
        registry=registry,
        policy=policy,
        exporter=exporter,
        resolved_keep_s=resolved_keep_s,
        clock=clock,
    )


class TestSLOEngine:
    def setup_method(self):
        self.now = 0.0
        self.registry = MetricsRegistry()
        self.exec_ms = self.registry.histogram(
            "xks_query_exec_ms", labelnames=("band", "algorithm"),
            buckets=EXEC_BUCKETS,
        )
        self.http = self.registry.counter(
            "xks_http_requests_total", labelnames=("endpoint", "status")
        )

    def clock(self):
        return self.now

    def tick(self, engine, seconds=1.0):
        self.now += seconds
        return engine.evaluate()

    def test_no_traffic_no_burn(self):
        engine = make_engine(self.registry, clock=self.clock)
        status = self.tick(engine)
        for block in status:
            assert block["error_budget_remaining"] == 1.0
            assert all(rate == 0.0 for rate in block["burn_rates"].values())
            assert all(a["state"] == "ok" for a in block["alerts"])
        engine.close()

    def test_latency_burn_fires_and_resolves(self):
        engine = make_engine(self.registry, clock=self.clock)
        child = self.exec_ms.labels(band="1-9", algorithm="il")
        # Sustained bad latency: p99 SLO at 5 ms, every execution 50 ms.
        for _ in range(10):
            child.observe(50.0)
            self.tick(engine)
        lat = [b for b in engine.evaluate() if b["name"] == "lat"][0]
        assert lat["alerts"][0]["state"] == "firing"
        # The gauge mirrors the state machine (firing = 2).
        rendered = self.registry.render()
        assert 'xks_alert_state{alert="lat:fast"} 2' in rendered
        # Recovery: fast traffic until the bad events age out of both
        # windows (long window is 20 s).
        for _ in range(30):
            for _ in range(20):
                child.observe(0.5)
            self.tick(engine)
        lat = [b for b in engine.evaluate() if b["name"] == "lat"][0]
        assert lat["alerts"][0]["state"] == "ok"
        engine.close()

    def test_availability_burn(self):
        engine = make_engine(self.registry, clock=self.clock)
        for _ in range(10):
            self.http.labels(endpoint="/search", status="error").inc()
            self.tick(engine)
        avail = [b for b in engine.evaluate() if b["name"] == "avail"][0]
        assert avail["alerts"][0]["state"] == "firing"
        assert avail["error_budget_remaining"] < 0.0  # overdrawn, reported raw
        engine.close()

    def test_unknown_endpoints_do_not_count(self):
        engine = make_engine(self.registry, clock=self.clock)
        for _ in range(10):
            self.http.labels(endpoint="/metrics", status="error").inc()
            self.tick(engine)
        avail = [b for b in engine.evaluate() if b["name"] == "avail"][0]
        assert avail["total"] == 0.0
        assert avail["alerts"][0]["state"] == "ok"
        engine.close()

    def test_band_filter_isolates_slo(self):
        policy = WindowPolicy(
            rules=(BurnRule(5.0, 20.0, 14.4, "fast", 0.0),), resolution_s=1.0
        )
        engine = SLOEngine(
            slos=[parse_slo("latency:p99<=5ms:band=1000+:name=heavy")],
            registry=self.registry, policy=policy, clock=self.clock,
        )
        # Slowness in another band must not trip the banded SLO.
        self.exec_ms.labels(band="1-9", algorithm="il").observe(50.0)
        self.tick(engine)
        block = engine.evaluate()[0]
        assert block["total"] == 0.0
        assert block["alerts"][0]["state"] == "ok"
        self.exec_ms.labels(band="1000+", algorithm="scan").observe(50.0)
        self.tick(engine)
        block = engine.evaluate()[0]
        assert block["alerts"][0]["state"] == "firing"
        engine.close()

    def test_transitions_ship_alert_records(self):
        sink = MemorySink()
        shipper = SnapshotShipper(
            registry=self.registry, sink=sink, interval=10_000,
            flush_interval=0.02,
        )
        engine = make_engine(self.registry, exporter=shipper, clock=self.clock)
        child = self.exec_ms.labels(band="0", algorithm="il")
        for _ in range(10):
            child.observe(50.0)
            self.tick(engine)
        assert shipper.flush(5.0)
        records = [r for r in sink.records if r["kind"] == "alert"]
        transitions = [(r["from"], r["to"]) for r in records]
        assert ("ok", "pending") in transitions
        assert ("pending", "firing") in transitions
        firing = [r for r in records if r["to"] == "firing"][0]
        assert firing["slo"] == "lat"
        assert firing["burn_short"] > 14.4
        json.dumps(records)  # every record is JSON-serializable
        engine.close()
        shipper.close()
        stats = shipper.stats.as_dict()
        assert stats["submitted"] == stats["sent"] + stats["dropped_total"]

    def test_budget_gauge_clamped_and_exposed(self):
        engine = make_engine(self.registry, clock=self.clock)
        for _ in range(5):
            self.http.labels(endpoint="/search", status="error").inc()
            self.tick(engine)
        rendered = self.registry.render()
        assert 'xks_slo_error_budget_remaining{slo="avail"} 0' in rendered
        engine.close()

    def test_status_shape(self):
        engine = make_engine(self.registry, clock=self.clock)
        self.tick(engine)
        status = engine.status()
        assert status["enabled"] is True
        assert {rule["severity"] for rule in status["policy"]["rules"]} == {"fast"}
        assert {block["name"] for block in status["slos"]} == {"lat", "avail"}
        summary = engine.summary()
        assert set(summary["slos"]) == {"lat", "avail"}
        assert summary["alerts"]["lat:fast"] == "ok"
        engine.close()

    def test_duplicate_slo_names_rejected(self):
        with pytest.raises(ValueError):
            SLOEngine(
                slos=[parse_slo("availability:99:name=x"),
                      parse_slo("availability:99.9:name=x")],
                registry=self.registry, clock=self.clock,
            )

    def test_close_unregisters_windows(self):
        engine = make_engine(self.registry, clock=self.clock)
        assert len(self.registry._windows) > 0
        engine.close()
        assert len(self.registry._windows) == 0
        engine.close()  # idempotent

    def test_background_thread_evaluates(self):
        import time as _time

        engine = SLOEngine(
            slos=[parse_slo("availability:99:name=bg")],
            registry=self.registry,
            policy=WindowPolicy(
                rules=(BurnRule(1.0, 2.0, 14.4, "fast", 0.0),),
                resolution_s=0.01,
            ),
            eval_interval=0.02,
        ).start()
        deadline = _time.monotonic() + 5.0
        while _time.monotonic() < deadline:
            if engine._eval_counter.value >= 2:
                break
            _time.sleep(0.01)
        engine.close()
        assert engine._eval_counter.value >= 2


class TestPersistence:
    """save_state/load_state: window rings survive a simulated restart."""

    def setup_method(self):
        self.now = 0.0

    def clock(self):
        return self.now

    def make_registry(self):
        registry = MetricsRegistry()
        exec_ms = registry.histogram(
            "xks_query_exec_ms", labelnames=("band", "algorithm"),
            buckets=EXEC_BUCKETS,
        )
        http = registry.counter(
            "xks_http_requests_total", labelnames=("endpoint", "status")
        )
        return registry, exec_ms, http

    def run_traffic(self, engine, exec_ms, http):
        child = exec_ms.labels(band="1-9", algorithm="il")
        for _ in range(5):
            child.observe(50.0)   # bad: over the 5 ms threshold
            child.observe(0.5)    # good
            http.labels(endpoint="/search", status="ok").inc(4)
            http.labels(endpoint="/search", status="error").inc()
            self.now += 1.0
            engine.evaluate()

    def test_round_trip_restores_totals_and_windows(self, tmp_path):
        path = str(tmp_path / "slo_state.json")
        registry, exec_ms, http = self.make_registry()
        engine = make_engine(registry, clock=self.clock)
        self.run_traffic(engine, exec_ms, http)
        before = {b["name"]: b for b in engine.evaluate()}
        engine.save_state(path)
        engine.close()

        # "Restart": fresh registry (all metrics zero), fresh engine.
        registry2, _, _ = self.make_registry()
        engine2 = make_engine(registry2, clock=self.clock)
        assert engine2.load_state(path) == 2
        after = {b["name"]: b for b in engine2.evaluate()}
        for name in ("lat", "avail"):
            assert after[name]["total"] == before[name]["total"]
            assert after[name]["error_budget_remaining"] == pytest.approx(
                before[name]["error_budget_remaining"]
            )
        # The restored ring gives windowed burn continuity: essentially
        # no wall time passed across the "restart", so every trailing
        # window sees the same traffic it saw before the save.
        for window, rate in after["avail"]["burn_rates"].items():
            assert rate == pytest.approx(
                before["avail"]["burn_rates"][window]
            ), window
        engine2.close()

    def test_save_chains_across_restarts(self, tmp_path):
        path = str(tmp_path / "slo_state.json")
        registry, exec_ms, http = self.make_registry()
        engine = make_engine(registry, clock=self.clock)
        self.run_traffic(engine, exec_ms, http)
        engine.save_state(path)
        engine.close()

        registry2, exec2, http2 = self.make_registry()
        engine2 = make_engine(registry2, clock=self.clock)
        engine2.load_state(path)
        self.run_traffic(engine2, exec2, http2)  # second life's traffic
        engine2.save_state(path)  # baseline + new events, re-serialized
        engine2.close()

        registry3, _, _ = self.make_registry()
        engine3 = make_engine(registry3, clock=self.clock)
        assert engine3.load_state(path) == 2
        blocks = {b["name"]: b for b in engine3.evaluate()}
        assert blocks["avail"]["total"] == 50.0  # 25 per life, twice
        engine3.close()

    def test_stale_file_ignored(self, tmp_path):
        path = tmp_path / "slo_state.json"
        registry, exec_ms, http = self.make_registry()
        engine = make_engine(registry, clock=self.clock)
        self.run_traffic(engine, exec_ms, http)
        engine.save_state(str(path))
        engine.close()
        # Age the file beyond every SLO window.
        data = json.loads(path.read_text())
        data["saved_at"] -= 365 * 86400.0
        path.write_text(json.dumps(data))
        registry2, _, _ = self.make_registry()
        engine2 = make_engine(registry2, clock=self.clock)
        assert engine2.load_state(str(path)) == 0
        blocks = {b["name"]: b for b in engine2.evaluate()}
        assert blocks["avail"]["total"] == 0.0
        engine2.close()

    def test_old_ring_entries_clamped_out(self, tmp_path):
        path = tmp_path / "slo_state.json"
        registry, exec_ms, http = self.make_registry()
        engine = make_engine(registry, clock=self.clock)
        self.run_traffic(engine, exec_ms, http)
        engine.save_state(str(path))
        engine.close()
        data = json.loads(path.read_text())
        # Push every ring entry far past the horizon; cumulative survives.
        for entry in data["slos"].values():
            for item in entry["ring"]:
                item[0] -= 7 * 86400.0
        path.write_text(json.dumps(data))
        registry2, _, _ = self.make_registry()
        engine2 = make_engine(registry2, clock=self.clock)
        assert engine2.load_state(str(path)) == 2
        blocks = {b["name"]: b for b in engine2.evaluate()}
        assert blocks["avail"]["total"] == 25.0  # baseline kept
        engine2.close()

    def test_missing_corrupt_and_wrong_version(self, tmp_path):
        registry, _, _ = self.make_registry()
        engine = make_engine(registry, clock=self.clock)
        assert engine.load_state(str(tmp_path / "nope.json")) == 0
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        assert engine.load_state(str(corrupt)) == 0
        import time as _time

        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps(
            {"version": 99, "saved_at": _time.time(), "slos": {}}
        ))
        assert engine.load_state(str(wrong)) == 0
        engine.close()

    def test_mismatched_slo_skipped_rest_restore(self, tmp_path):
        path = tmp_path / "slo_state.json"
        registry, exec_ms, http = self.make_registry()
        engine = make_engine(registry, clock=self.clock)
        self.run_traffic(engine, exec_ms, http)
        engine.save_state(str(path))
        engine.close()
        data = json.loads(path.read_text())
        data["slos"]["lat"]["kind"] = "availability"  # shape change
        path.write_text(json.dumps(data))
        registry2, _, _ = self.make_registry()
        engine2 = make_engine(registry2, clock=self.clock)
        assert engine2.load_state(str(path)) == 1  # avail only
        blocks = {b["name"]: b for b in engine2.evaluate()}
        assert blocks["avail"]["total"] == 25.0
        assert blocks["lat"]["total"] == 0.0
        engine2.close()
