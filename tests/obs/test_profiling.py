"""Continuous profiling: sampler, folded stacks, kill switch, heap."""

import threading
import time

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    set_instrumentation_enabled,
)
from repro.obs.profiling import (
    OVERFLOW_STACK,
    SamplingProfiler,
    _fold_stack,
    heap_snapshot,
    heap_tracking_active,
    merge_folded,
    render_folded,
    start_heap_tracking,
    stop_heap_tracking,
)


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestFolding:
    def test_fold_stack_root_first(self):
        import sys

        frame = sys._current_frames()[threading.get_ident()]
        folded = _fold_stack(frame, max_depth=48)
        parts = folded.split(";")
        # The leaf (this test function) is last, the interpreter entry
        # point first — root-first is what flamegraph.pl expects.
        assert "test_fold_stack_root_first" in parts[-1]
        assert all(":" in part for part in parts)

    def test_max_depth_truncates(self):
        import sys

        frame = sys._current_frames()[threading.get_ident()]
        folded = _fold_stack(frame, max_depth=2)
        assert len(folded.split(";")) == 2

    def test_merge_folded_sums(self):
        merged = merge_folded([{"a;b": 2, "a;c": 1}, {"a;b": 3}, {}])
        assert merged == {"a;b": 5, "a;c": 1}

    def test_render_folded_hottest_first(self):
        text = render_folded({"cold;path": 1, "hot;path": 9, "zero": 0})
        lines = text.splitlines()
        assert lines[0] == "hot;path 9"
        assert lines[1] == "cold;path 1"
        assert "zero" not in text
        assert text.endswith("\n")

    def test_render_folded_empty(self):
        assert render_folded({}) == ""


class TestSamplingProfiler:
    def test_samples_accumulate_and_counter_tracks(self):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(hz=200.0, registry=registry).start()
        try:
            assert profiler.running
            assert wait_until(lambda: profiler.totals()["samples"] >= 5)
            stacks = profiler.snapshot()
            assert stacks  # at least this test thread was sampled
            assert sum(stacks.values()) == profiler.totals()["samples"]
            metric = registry.get_metric("xks_profile_samples_total")
            assert metric.value == profiler.totals()["samples"]
        finally:
            profiler.close()
        assert not profiler.running

    def test_kill_switch_skips_ticks(self):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(hz=200.0, registry=registry).start()
        try:
            assert wait_until(lambda: profiler.totals()["ticks"] >= 2)
            set_instrumentation_enabled(False)
            try:
                assert wait_until(
                    lambda: profiler.totals()["skipped_ticks"] >= 2
                )
                before = profiler.totals()["samples"]
                time.sleep(0.05)
                assert profiler.totals()["samples"] == before
            finally:
                set_instrumentation_enabled(True)
            # Re-enabled: sampling resumes without a restart.
            resumed = profiler.totals()["samples"]
            assert wait_until(lambda: profiler.totals()["samples"] > resumed)
        finally:
            profiler.close()

    def test_collect_window_diffs(self):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(hz=200.0, registry=registry).start()
        try:
            assert wait_until(lambda: profiler.totals()["samples"] >= 1)
            window = profiler.collect_window(0.1)
            assert window
            assert sum(window.values()) <= profiler.totals()["samples"]
        finally:
            profiler.close()

    def test_collect_window_not_running(self):
        profiler = SamplingProfiler(hz=10.0, registry=MetricsRegistry())
        assert profiler.collect_window(0.01) == {}

    def test_max_stacks_overflow(self):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(hz=10.0, max_stacks=1, registry=registry)
        # Drive _sample_once directly (no thread) with synthetic pressure:
        # first stack claims the only slot, every new one overflows.
        profiler._counts["existing;stack"] = 1
        own = -1  # keep every real thread
        taken = profiler._sample_once(own)
        assert taken >= 1
        stacks = profiler.snapshot()
        assert set(stacks) == {"existing;stack", OVERFLOW_STACK}

    def test_bad_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)


class TestHeap:
    def test_snapshot_off_by_default(self):
        stop_heap_tracking()
        assert not heap_tracking_active()
        assert heap_snapshot() == {"tracing": False, "top": []}

    def test_start_snapshot_stop(self):
        assert start_heap_tracking()
        try:
            assert heap_tracking_active()
            ballast = [bytearray(4096) for _ in range(64)]  # noqa: F841
            snap = heap_snapshot(top=5)
            assert snap["tracing"] is True
            assert snap["current_kb"] > 0
            assert snap["peak_kb"] >= snap["current_kb"]
            assert len(snap["top"]) <= 5
            for site in snap["top"]:
                assert ":" in site["site"]
                assert site["size_kb"] >= 0
        finally:
            assert stop_heap_tracking()
        assert not heap_tracking_active()
        assert stop_heap_tracking() is False  # idempotent
