"""Ring-buffer trailing windows over cumulative metrics.

The SLO engine's foundation: ``delta(window)`` must equal exactly what
happened inside the window (cumulative snapshots diffed against a stored
base), percentiles of a windowed histogram delta must land in the same
bucket as an oracle over only the in-window observations, rollover must
degrade to the oldest surviving snapshot, and an empty window must be a
well-formed zero — not an error.
"""

import random

import pytest

from repro.obs.metrics import (
    Counter,
    CounterWindow,
    Histogram,
    HistogramSnapshot,
    HistogramWindow,
    MetricsRegistry,
    exponential_buckets,
)

BOUNDS = exponential_buckets(1.0, 2.0, 10)  # 1, 2, 4, … 512 ms


def oracle_percentile(values, q):
    """Rank-based oracle: the exact order statistic the estimate targets."""
    ordered = sorted(values)
    rank = q * (len(ordered) - 1)
    return ordered[int(round(rank))]


def bucket_of(bounds, value):
    from bisect import bisect_left

    return bisect_left(bounds, value)


class TestHistogramSnapshot:
    def test_snapshot_captures_cumulative_state(self):
        histogram = Histogram(BOUNDS)
        for value in (0.5, 3.0, 700.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap.count == 3
        assert snap.sum == pytest.approx(703.5)
        assert sum(snap.counts) == 3
        assert snap.counts[-1] == 1  # 700 ms lands in the +Inf bucket

    def test_delta_is_exact_per_bucket(self):
        histogram = Histogram(BOUNDS)
        histogram.observe(1.5)
        earlier = histogram.snapshot()
        histogram.observe(3.0)
        histogram.observe(100.0)
        delta = histogram.snapshot().delta(earlier)
        assert delta.count == 2
        assert delta.sum == pytest.approx(103.0)
        assert delta.counts[bucket_of(BOUNDS, 1.5)] == 0  # diffed away

    def test_delta_of_none_is_identity(self):
        histogram = Histogram(BOUNDS)
        histogram.observe(2.0)
        snap = histogram.snapshot()
        assert snap.delta(None) is snap

    def test_mismatched_bounds_rejected(self):
        a = HistogramSnapshot.zero((1.0, 2.0))
        b = HistogramSnapshot.zero((1.0, 4.0))
        with pytest.raises(ValueError):
            a.delta(b)
        with pytest.raises(ValueError):
            a.add(b)

    def test_count_le_is_bucket_quantized(self):
        histogram = Histogram(BOUNDS)
        for value in (0.5, 1.5, 3.0, 10.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        # Threshold 3.0 snaps up to bucket bound 4: counts 0.5, 1.5, 3.0.
        assert snap.count_le(3.0) == 3
        assert snap.count_le(4.0) == 3
        # 0.1 snaps up to the first bound (1.0): the 0.5 observation counts.
        assert snap.count_le(0.1) == 1
        assert snap.count_le(1.0) == 1
        assert snap.count_le(10_000.0) == 4  # above the top bound: everything

    def test_empty_snapshot_percentile_is_zero(self):
        assert HistogramSnapshot.zero(BOUNDS).percentile(0.99) == 0.0


class TestWindowedPercentileVsOracle:
    def test_windowed_percentile_matches_oracle_bucket(self):
        """The windowed p50/p90/p99 must land in the same bucket as the
        oracle computed over only the in-window values."""
        rng = random.Random(42)
        histogram = Histogram(BOUNDS)
        window = HistogramWindow(histogram, horizon_s=100.0, resolution_s=1.0)

        old = [rng.uniform(0.5, 400.0) for _ in range(300)]
        for value in old:
            histogram.observe(value)
        window.record(now=0.0)  # boundary snapshot: everything before is "old"

        recent = [rng.uniform(0.5, 400.0) for _ in range(500)]
        for i, value in enumerate(recent):
            histogram.observe(value)
            window.record(now=1.0 + i * 0.01)

        # cutoff = 0.5: the base is the t=0 boundary snapshot, so the
        # delta holds exactly the `recent` observations.
        delta = window.delta(window_s=10.0, now=10.5)
        assert delta.count == len(recent)
        for q in (0.5, 0.9, 0.99):
            estimate = delta.percentile(q)
            oracle = oracle_percentile(recent, q)
            assert bucket_of(BOUNDS, estimate) == bucket_of(BOUNDS, oracle), (
                f"q={q}: estimate {estimate} vs oracle {oracle}"
            )

    def test_window_boundary_excludes_older_observations(self):
        histogram = Histogram(BOUNDS)
        window = HistogramWindow(histogram, horizon_s=60.0, resolution_s=1.0)
        histogram.observe(100.0)  # before the window
        window.record(now=0.0)
        histogram.observe(1.5)  # inside the window
        delta = window.delta(window_s=5.0, now=5.0)
        assert delta.count == 1
        # Only the in-window 1.5 ms observation: p99 stays in its bucket.
        assert delta.percentile(0.99) <= 2.0


class TestRollover:
    def test_rollover_uses_oldest_survivor(self):
        counter = Counter()
        # 10-second horizon at 1-second resolution: 12 slots.
        window = CounterWindow(counter, horizon_s=10.0, resolution_s=1.0)
        for t in range(40):
            counter.inc(1)
            window.record(now=float(t))
        # A window far beyond the horizon cannot reach t=0; the ring
        # rolled over, so the base is the oldest surviving snapshot.
        span = window.span_s(now=39.0)
        assert span <= 12.0
        delta = window.delta(window_s=1000.0, now=39.0)
        # Exact: current (40) minus the oldest survivor's value — which
        # works out to the ring's span — never the full 40.
        assert 0 < delta <= 13
        assert delta == pytest.approx(span)

    def test_young_process_uses_zero_base(self):
        """History shorter than the window without rollover: the base is
        metric birth (zero) — exact for cumulative metrics."""
        counter = Counter()
        window = CounterWindow(counter, horizon_s=3600.0, resolution_s=1.0)
        counter.inc(5)
        window.record(now=0.0)
        counter.inc(2)
        assert window.delta(window_s=3600.0, now=1.0) == pytest.approx(7.0)

    def test_denser_records_than_resolution_are_coalesced(self):
        counter = Counter()
        window = CounterWindow(counter, horizon_s=10.0, resolution_s=1.0)
        for i in range(100):
            window.record(now=i * 0.01)  # all inside one resolution slot
        assert len(window) == 1


class TestEmptyWindows:
    def test_empty_counter_window_delta(self):
        counter = Counter()
        window = CounterWindow(counter, horizon_s=10.0, resolution_s=1.0)
        assert window.delta(window_s=5.0, now=100.0) == 0.0

    def test_empty_histogram_window_delta(self):
        histogram = Histogram(BOUNDS)
        window = HistogramWindow(histogram, horizon_s=10.0, resolution_s=1.0)
        delta = window.delta(window_s=5.0, now=100.0)
        assert delta.count == 0
        assert delta.percentile(0.99) == 0.0

    def test_counter_reset_clamps_at_zero(self):
        state = {"value": 10.0}
        window = CounterWindow(lambda: state["value"], 10.0, 1.0)
        window.record(now=0.0)
        state["value"] = 3.0  # a reset (new process writing the same file)
        # cutoff = 0.5 ≥ the stored snapshot: base is 10, current is 3 —
        # the negative diff clamps to "no progress", never negative.
        assert window.delta(window_s=0.5, now=1.0) == 0.0


class TestRegistryIntegration:
    def test_record_windows_ticks_registered_windows(self):
        registry = MetricsRegistry()
        counter = registry.counter("xks_test_total")
        window = CounterWindow(counter, horizon_s=10.0, resolution_s=0.0001)
        registry.register_window(window)
        counter.inc()
        registry.record_windows(now=0.0)
        assert len(window) == 1
        registry.unregister_window(window)
        registry.record_windows(now=5.0)
        assert len(window) == 1  # unregistered: no further ticks

    def test_reset_clears_windows(self):
        registry = MetricsRegistry()
        window = CounterWindow(Counter(), 10.0, 1.0)
        registry.register_window(window)
        registry.reset()
        registry.record_windows(now=0.0)
        assert len(window) == 0
