"""Tracer, span trees, and the bounded slow-query log."""

import re

import pytest

from repro.obs.tracing import Span, Trace, Tracer, new_trace_id


class TestTraceIds:
    def test_format(self):
        trace_id = new_trace_id()
        assert re.fullmatch(r"[0-9a-f]{16}", trace_id)

    def test_unique(self):
        assert len({new_trace_id() for _ in range(100)}) == 100


class TestSpans:
    def test_nesting_follows_call_structure(self):
        trace = Trace("request")
        with trace.span("plan", algorithm="il"):
            pass
        with trace.span("execute"):
            with trace.span("prune"):
                pass
        trace.finish()
        tree = trace.to_dict()
        assert tree["name"] == "request"
        assert [child["name"] for child in tree["children"]] == ["plan", "execute"]
        assert tree["children"][0]["attrs"] == {"algorithm": "il"}
        assert tree["children"][1]["children"][0]["name"] == "prune"
        assert tree["trace_id"] == trace.trace_id

    def test_durations_recorded(self):
        trace = Trace("request")
        with trace.span("work"):
            pass
        trace.finish()
        span = trace.root.children[0]
        assert span.duration_ms is not None and span.duration_ms >= 0
        assert trace.duration_ms >= span.duration_ms

    def test_annotate_targets_current_span(self):
        trace = Trace("request")
        with trace.span("inner"):
            trace.annotate(rows=3)
        trace.annotate(query="john ben")
        assert trace.root.children[0].attrs == {"rows": 3}
        assert trace.root.attrs == {"query": "john ben"}

    def test_span_error_still_finishes(self):
        trace = Trace("request")
        with pytest.raises(RuntimeError):
            with trace.span("boom"):
                raise RuntimeError("nope")
        assert trace.root.children[0].duration_ms is not None


class TestSampling:
    def test_rate_zero_records_nothing_unforced(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.start("request") is None

    def test_forced_and_client_id_always_trace(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.start("request", force=True) is not None
        trace = tracer.start("request", trace_id="deadbeefdeadbeef")
        assert trace is not None and trace.trace_id == "deadbeefdeadbeef"

    def test_rate_one_always_traces(self):
        tracer = Tracer(sample_rate=1.0)
        assert tracer.start("request") is not None

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestSlowLog:
    def test_threshold_gate(self):
        tracer = Tracer(slow_threshold_ms=50)
        assert not tracer.note(10, {"query": "fast"})
        assert tracer.note(51, {"query": "slow"})
        entries = tracer.slow_queries()
        assert len(entries) == 1
        assert entries[0]["query"] == "slow"
        assert entries[0]["elapsed_ms"] == 51

    def test_bounded_most_recent_first(self):
        tracer = Tracer(slow_threshold_ms=0, slow_log_size=3)
        for i in range(5):
            tracer.note(float(i + 1), {"query": f"q{i}"})
        entries = tracer.slow_queries()
        assert [entry["query"] for entry in entries] == ["q4", "q3", "q2"]

    def test_trace_attached_when_present(self):
        tracer = Tracer(slow_threshold_ms=0)
        trace = tracer.start("request", force=True)
        with trace.span("execute"):
            pass
        trace.finish()
        tracer.note(5.0, {"query": "john"}, trace)
        entry = tracer.slow_queries()[0]
        assert entry["trace_id"] == trace.trace_id
        assert entry["trace"]["children"][0]["name"] == "execute"

    def test_clear(self):
        tracer = Tracer(slow_threshold_ms=0)
        tracer.note(1.0, {})
        tracer.clear_slow_log()
        assert tracer.slow_queries() == []
