"""Metrics registry: concurrency exactness, histograms, exposition format."""

import re
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    exponential_buckets,
    get_registry,
    instrumentation_enabled,
    set_instrumentation_enabled,
)

# One exposition line: "name{labels} value" or a comment.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\")*\})?"
    r" (\+Inf|-Inf|-?[0-9.e+-]+)$"
)
_COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


def assert_prometheus_parseable(text):
    assert text.endswith("\n")
    for line in text.rstrip("\n").split("\n"):
        assert _SAMPLE_LINE.match(line) or _COMMENT_LINE.match(line), (
            f"unparseable exposition line: {line!r}"
        )


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_disabled_instrumentation_skips_updates(self):
        counter = Counter()
        assert instrumentation_enabled()
        set_instrumentation_enabled(False)
        try:
            counter.inc(100)
            assert counter.value == 0
        finally:
            set_instrumentation_enabled(True)
        counter.inc()
        assert counter.value == 1


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5

    def test_callback_gauge(self):
        gauge = Gauge(callback=lambda: 42)
        assert gauge.value == 42
        with pytest.raises(ValueError):
            gauge.set(1)


class TestHistogram:
    def test_exact_count_and_sum(self):
        hist = Histogram(buckets=exponential_buckets(1, 2, 8))
        for value in (0.5, 1, 3, 300, 10_000):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(10_304.5)

    def test_buckets_are_cumulative_in_exposition(self):
        hist = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5, 50):
            hist.observe(value)
        samples = dict()
        for name, labels, value in hist._samples("h"):
            samples[(name, tuple(sorted(labels.items())))] = value
        assert samples[("h_bucket", (("le", "1"),))] == 1
        assert samples[("h_bucket", (("le", "10"),))] == 2
        assert samples[("h_bucket", (("le", "+Inf"),))] == 3
        assert samples[("h_count", ())] == 3

    @pytest.mark.parametrize("q", [0.0, 0.25, 0.5, 0.9, 0.99, 1.0])
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_percentile_against_sorted_oracle(self, q, seed):
        import random

        rng = random.Random(seed)
        values = [rng.lognormvariate(2.0, 1.5) for _ in range(5000)]
        hist = Histogram(buckets=exponential_buckets(0.05, 2, 24))
        for value in values:
            hist.observe(value)
        oracle = sorted(values)[min(len(values) - 1, round(q * (len(values) - 1)))]
        estimate = hist.percentile(q)
        # The estimate must land in (or at the edge of) the log-bucket that
        # contains the exact order statistic, i.e. bounded relative error.
        from bisect import bisect_left

        i = bisect_left(hist.bounds, oracle)
        lower = hist.bounds[i - 1] if i > 0 else 0.0
        upper = hist.bounds[i] if i < len(hist.bounds) else max(values)
        assert lower * 0.999 <= estimate <= upper * 1.001

    def test_percentile_empty(self):
        assert Histogram().percentile(0.5) == 0.0

    def test_summary_keys(self):
        hist = Histogram()
        hist.observe(3.0)
        summary = hist.summary()
        assert set(summary) == {"count", "p50", "p90", "p99", "mean"}
        assert summary["count"] == 1 and summary["mean"] == 3.0


class TestConcurrency:
    """8 threads hammering shared metrics must produce exact totals."""

    THREADS = 8
    PER_THREAD = 5_000

    def _hammer(self, work):
        barrier = threading.Barrier(self.THREADS)

        def run():
            barrier.wait()
            for i in range(self.PER_THREAD):
                work(i)

        threads = [threading.Thread(target=run) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_totals_exact(self):
        counter = Counter()
        self._hammer(lambda i: counter.inc())
        assert counter.value == self.THREADS * self.PER_THREAD

    def test_labeled_counter_totals_exact(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labelnames=("shard",))
        self._hammer(lambda i: family.labels(shard=str(i % 4)).inc())
        total = sum(family.labels(shard=str(s)).value for s in range(4))
        assert total == self.THREADS * self.PER_THREAD

    def test_histogram_totals_exact(self):
        hist = Histogram(buckets=exponential_buckets(1, 2, 10))
        self._hammer(lambda i: hist.observe(float(i % 100)))
        assert hist.count == self.THREADS * self.PER_THREAD
        assert hist.sum == self.THREADS * sum(i % 100 for i in range(self.PER_THREAD))


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("y_total", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("y_total", labelnames=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labelnames=("bad-label",))

    def test_render_is_parseable(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests.").inc(3)
        registry.gauge("temp", "Temperature.").set(21.5)
        hist = registry.histogram("lat_ms", "Latency.", buckets=(1.0, 10.0))
        hist.observe(0.2)
        registry.counter("by_kind_total", labelnames=("kind",)).labels(
            kind='we"ird\nvalue'
        ).inc()
        text = registry.render()
        assert "# TYPE req_total counter" in text
        assert "req_total 3" in text
        assert "temp 21.5" in text
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert "lat_ms_count 1" in text
        assert_prometheus_parseable(text)

    def test_collector_samples_rendered_and_grouped(self):
        registry = MetricsRegistry()

        def collector():
            yield Sample("pool_hits_total", 7, kind="counter", help="Pool hits.")
            yield Sample("pool_reads_total", 1, {"kind": "seq"}, kind="counter")
            yield Sample("pool_reads_total", 2, {"kind": "rand"}, kind="counter")

        registry.register_collector(collector)
        text = registry.render()
        assert "pool_hits_total 7" in text
        assert 'pool_reads_total{kind="seq"} 1' in text
        assert text.count("# TYPE pool_reads_total counter") == 1
        assert_prometheus_parseable(text)
        registry.unregister_collector(collector)
        assert "pool_hits_total" not in registry.render()

    def test_collector_collision_with_metric_raises(self):
        registry = MetricsRegistry()
        registry.counter("dup_total")
        registry.register_collector(lambda: [Sample("dup_total", 1)])
        with pytest.raises(ValueError):
            registry.render()

    def test_global_registry_is_singleton(self):
        assert get_registry() is get_registry()
