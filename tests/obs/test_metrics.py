"""Metrics registry: concurrency exactness, histograms, exposition format."""

import re
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    exponential_buckets,
    get_registry,
    instrumentation_enabled,
    set_instrumentation_enabled,
)

# One exposition line: "name{labels} value", optionally followed by an
# OpenMetrics exemplar ("# {labels} value [timestamp]"), or a comment.
_LABELS = (
    r"\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\")*\}"
)
_NUMBER = r"(\+Inf|-Inf|NaN|-?[0-9.e+-]+)"
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    rf"({_LABELS})?"
    rf" {_NUMBER}"
    rf"( # {_LABELS} {_NUMBER}( {_NUMBER})?)?$"
)
_COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


def assert_prometheus_parseable(text):
    assert text.endswith("\n")
    for line in text.rstrip("\n").split("\n"):
        assert _SAMPLE_LINE.match(line) or _COMMENT_LINE.match(line), (
            f"unparseable exposition line: {line!r}"
        )


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_disabled_instrumentation_skips_updates(self):
        counter = Counter()
        assert instrumentation_enabled()
        set_instrumentation_enabled(False)
        try:
            counter.inc(100)
            assert counter.value == 0
        finally:
            set_instrumentation_enabled(True)
        counter.inc()
        assert counter.value == 1


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5

    def test_callback_gauge(self):
        gauge = Gauge(callback=lambda: 42)
        assert gauge.value == 42
        with pytest.raises(ValueError):
            gauge.set(1)


class TestHistogram:
    def test_exact_count_and_sum(self):
        hist = Histogram(buckets=exponential_buckets(1, 2, 8))
        for value in (0.5, 1, 3, 300, 10_000):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(10_304.5)

    def test_buckets_are_cumulative_in_exposition(self):
        hist = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5, 50):
            hist.observe(value)
        samples = dict()
        for name, labels, value in hist._samples("h"):
            samples[(name, tuple(sorted(labels.items())))] = value
        assert samples[("h_bucket", (("le", "1"),))] == 1
        assert samples[("h_bucket", (("le", "10"),))] == 2
        assert samples[("h_bucket", (("le", "+Inf"),))] == 3
        assert samples[("h_count", ())] == 3

    @pytest.mark.parametrize("q", [0.0, 0.25, 0.5, 0.9, 0.99, 1.0])
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_percentile_against_sorted_oracle(self, q, seed):
        import random

        rng = random.Random(seed)
        values = [rng.lognormvariate(2.0, 1.5) for _ in range(5000)]
        hist = Histogram(buckets=exponential_buckets(0.05, 2, 24))
        for value in values:
            hist.observe(value)
        oracle = sorted(values)[min(len(values) - 1, round(q * (len(values) - 1)))]
        estimate = hist.percentile(q)
        # The estimate must land in (or at the edge of) the log-bucket that
        # contains the exact order statistic, i.e. bounded relative error.
        from bisect import bisect_left

        i = bisect_left(hist.bounds, oracle)
        lower = hist.bounds[i - 1] if i > 0 else 0.0
        upper = hist.bounds[i] if i < len(hist.bounds) else max(values)
        assert lower * 0.999 <= estimate <= upper * 1.001

    def test_percentile_empty(self):
        assert Histogram().percentile(0.5) == 0.0

    def test_summary_keys(self):
        hist = Histogram()
        hist.observe(3.0)
        summary = hist.summary()
        assert set(summary) == {"count", "p50", "p90", "p99", "mean"}
        assert summary["count"] == 1 and summary["mean"] == 3.0


class TestHistogramEdgeCases:
    """Bucketing and percentile oracles at the boundaries."""

    def _bucket_counts(self, hist):
        counts = {}
        for name, labels, value in hist._samples("h"):
            if name == "h_bucket":
                counts[labels["le"]] = value
        return counts

    def test_value_equal_to_bound_lands_in_that_bucket(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(10.0)
        counts = self._bucket_counts(hist)
        assert counts == {"1": 0, "10": 1, "+Inf": 1}

    def test_value_above_top_bound_counts_only_in_inf(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(10.000001)
        hist.observe(50)
        counts = self._bucket_counts(hist)
        assert counts == {"1": 0, "10": 0, "+Inf": 2}
        assert counts["+Inf"] == hist.count

    def test_nan_is_ignored(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(float("nan"))
        assert hist.count == 0
        assert hist.sum == 0.0

    def test_percentile_clamped_to_observed_range(self):
        # Both observations share the (1, 10] bucket; naive interpolation
        # over the full bucket would wander outside [5, 6].
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(5)
        hist.observe(6)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert 5.0 <= hist.percentile(q) <= 6.0
        assert hist.percentile(1.0) == pytest.approx(6.0)

    def test_percentile_in_overflow_bucket_stays_in_seen_range(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(50)
        hist.observe(60)
        for q in (0.0, 0.5, 1.0):
            assert 50.0 <= hist.percentile(q) <= 60.0

    def test_percentile_of_inf_observation_clamps_to_top_bound(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(float("inf"))
        assert hist.percentile(1.0) == 10.0
        assert self._bucket_counts(hist)["+Inf"] == 1

    def test_percentile_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)
        with pytest.raises(ValueError):
            Histogram().percentile(-0.1)


class TestExemplars:
    def test_no_trace_id_records_no_exemplar(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.5)
        assert hist.exemplars() == {}

    def test_exemplar_keyed_by_bucket_latest_wins(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(0.5, trace_id="a" * 16)
        hist.observe(0.7, trace_id="b" * 16)
        hist.observe(5.0, trace_id="c" * 16)
        exemplars = hist.exemplars()
        assert set(exemplars) == {"1", "10"}
        trace_id, value, ts = exemplars["1"]
        assert trace_id == "b" * 16 and value == 0.7 and ts > 0

    def test_exemplar_for_only_answers_bucket_samples(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.5, trace_id="a" * 16)
        assert hist.exemplar_for("h_bucket", {"le": "1"}) is not None
        assert hist.exemplar_for("h_bucket", {"le": "+Inf"}) is None
        assert hist.exemplar_for("h_count", {}) is None
        assert hist.exemplar_for("h_bucket", {}) is None

    def test_family_dispatches_exemplar_lookup_to_child(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "exec_ms", buckets=(1.0,), labelnames=("band", "algorithm")
        )
        family.labels(band="1-9", algorithm="il").observe(0.5, trace_id="d" * 16)
        hit = family.exemplar_for(
            "exec_ms_bucket", {"band": "1-9", "algorithm": "il", "le": "1"}
        )
        assert hit[0] == "d" * 16
        miss = family.exemplar_for(
            "exec_ms_bucket", {"band": "1000+", "algorithm": "il", "le": "1"}
        )
        assert miss is None

    def test_render_appends_openmetrics_exemplar_suffix(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_ms", "Latency.", buckets=(1.0, 10.0))
        hist.observe(0.5, trace_id="cafebabecafebabe")
        text = registry.render()
        line = next(
            l for l in text.splitlines() if l.startswith('lat_ms_bucket{le="1"}')
        )
        assert ' # {trace_id="cafebabecafebabe"} 0.5 ' in line
        assert_prometheus_parseable(text)


class TestExpositionEscaping:
    """Label values survive render() intact under the exposition grammar."""

    GNARLY = [
        'plain',
        'back\\slash',
        'quo"te',
        'new\nline',
        'all\\three\n"of them"',
    ]

    @staticmethod
    def _unescape(text):
        return re.sub(
            r"\\(.)", lambda m: {"n": "\n"}.get(m.group(1), m.group(1)), text
        )

    def test_label_values_round_trip_through_render(self):
        registry = MetricsRegistry()
        family = registry.counter("esc_total", "Escaping.", labelnames=("v",))
        for value in self.GNARLY:
            family.labels(v=value).inc()
        text = registry.render()
        assert_prometheus_parseable(text)
        rendered = [
            m.group(1)
            for m in re.finditer(r'^esc_total\{v="((?:\\.|[^"\\])*)"\} 1$', text, re.M)
        ]
        assert sorted(self._unescape(v) for v in rendered) == sorted(self.GNARLY)

    def test_help_text_newlines_escaped(self):
        registry = MetricsRegistry()
        registry.counter("h_total", "line one\nline two")
        text = registry.render()
        assert "# HELP h_total line one\\nline two" in text
        assert_prometheus_parseable(text)


class TestConcurrency:
    """8 threads hammering shared metrics must produce exact totals."""

    THREADS = 8
    PER_THREAD = 5_000

    def _hammer(self, work):
        barrier = threading.Barrier(self.THREADS)

        def run():
            barrier.wait()
            for i in range(self.PER_THREAD):
                work(i)

        threads = [threading.Thread(target=run) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_totals_exact(self):
        counter = Counter()
        self._hammer(lambda i: counter.inc())
        assert counter.value == self.THREADS * self.PER_THREAD

    def test_labeled_counter_totals_exact(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labelnames=("shard",))
        self._hammer(lambda i: family.labels(shard=str(i % 4)).inc())
        total = sum(family.labels(shard=str(s)).value for s in range(4))
        assert total == self.THREADS * self.PER_THREAD

    def test_histogram_totals_exact(self):
        hist = Histogram(buckets=exponential_buckets(1, 2, 10))
        self._hammer(lambda i: hist.observe(float(i % 100)))
        assert hist.count == self.THREADS * self.PER_THREAD
        assert hist.sum == self.THREADS * sum(i % 100 for i in range(self.PER_THREAD))


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("y_total", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("y_total", labelnames=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labelnames=("bad-label",))

    def test_render_is_parseable(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests.").inc(3)
        registry.gauge("temp", "Temperature.").set(21.5)
        hist = registry.histogram("lat_ms", "Latency.", buckets=(1.0, 10.0))
        hist.observe(0.2)
        registry.counter("by_kind_total", labelnames=("kind",)).labels(
            kind='we"ird\nvalue'
        ).inc()
        text = registry.render()
        assert "# TYPE req_total counter" in text
        assert "req_total 3" in text
        assert "temp 21.5" in text
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert "lat_ms_count 1" in text
        assert_prometheus_parseable(text)

    def test_collector_samples_rendered_and_grouped(self):
        registry = MetricsRegistry()

        def collector():
            yield Sample("pool_hits_total", 7, kind="counter", help="Pool hits.")
            yield Sample("pool_reads_total", 1, {"kind": "seq"}, kind="counter")
            yield Sample("pool_reads_total", 2, {"kind": "rand"}, kind="counter")

        registry.register_collector(collector)
        text = registry.render()
        assert "pool_hits_total 7" in text
        assert 'pool_reads_total{kind="seq"} 1' in text
        assert text.count("# TYPE pool_reads_total counter") == 1
        assert_prometheus_parseable(text)
        registry.unregister_collector(collector)
        assert "pool_hits_total" not in registry.render()

    def test_collector_collision_with_metric_raises(self):
        registry = MetricsRegistry()
        registry.counter("dup_total")
        registry.register_collector(lambda: [Sample("dup_total", 1)])
        with pytest.raises(ValueError):
            registry.render()

    def test_global_registry_is_singleton(self):
        assert get_registry() is get_registry()


class TestCaptureReplay:
    """The worker telemetry tap: capture events, replay them elsewhere."""

    def test_counter_and_histogram_events_round_trip(self):
        from repro.obs.metrics import start_capture, stop_capture

        source = MetricsRegistry()
        start_capture()
        try:
            source.counter(
                "jobs_total", "Jobs.", labelnames=("kind",)
            ).labels(kind="fast").inc(3)
            source.histogram(
                "job_ms", "Latency.", buckets=(1.0, 10.0)
            ).observe(5.0, trace_id="ab" * 16)
        finally:
            events = stop_capture()
        assert len(events) == 2
        kinds = [event[0] for event in events]
        assert kinds == ["c", "h"]
        # Histogram events carry their bucket bounds, so the replay side
        # creates an identically-shaped family.
        h_event = events[1]
        assert h_event[5] == (1.0, 10.0)
        assert h_event[7] == "ab" * 16
        target = MetricsRegistry()
        assert target.replay_events(events) == 2
        text = target.render()
        assert 'jobs_total{kind="fast"} 3' in text
        assert 'job_ms_bucket{le="10"} 1' in text
        assert "ab" * 16 in text  # the exemplar survived the replay

    def test_capture_off_costs_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("quiet_total")
        counter.inc()  # no capture active: no event buffered anywhere
        from repro.obs.metrics import start_capture, stop_capture

        start_capture()
        events = stop_capture()
        assert events == []
        assert counter.value == 1

    def test_replay_skips_malformed_events(self):
        registry = MetricsRegistry()
        good = ("c", "ok_total", (), (), "OK.", 2.0)
        malformed = ("c", "bad total name!", (), (), "", 1.0)
        truncated = ("h", "short")
        assert registry.replay_events([good, malformed, truncated]) == 1
        assert registry.get_metric("ok_total").value == 2.0

    def test_replay_is_additive(self):
        registry = MetricsRegistry()
        events = [("c", "adds_total", (), (), "Adds.", 1.0)]
        registry.replay_events(events)
        registry.replay_events(events)
        assert registry.get_metric("adds_total").value == 2.0
