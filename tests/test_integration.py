"""Integration tests: the whole system, end to end, at moderate scale.

These tests chain the full pipeline — generate → serialize → parse →
index on disk → query with every algorithm and semantics → update →
requery — on a corpus of a few thousand nodes, checking cross-layer
consistency rather than unit behaviour.
"""

import random

import pytest

from repro.core import OpCounters, brute_slca, elca_by_containment, slca, slca_by_containment
from repro.index import DiskKeywordIndex, IndexUpdater, build_index
from repro.xksearch import XKSearch, XMLCollection
from repro.xksearch.engine import ExecutionStats
from repro.xmltree import parse, select, serialize
from repro.xmltree.generate import dblp_like_tree, plant_keywords
from repro.xmltree.tree import renumber_subtree


@pytest.fixture(scope="module")
def corpus():
    tree = dblp_like_tree(seed=77, venues=5, years_per_venue=4, papers_per_year=12)
    plant_keywords(
        tree, {"xkrare": 3, "xkmid": 25, "xkbig": 120, "xkhuge": 200}, seed=5
    )
    return tree


@pytest.fixture(scope="module")
def system(corpus, tmp_path_factory):
    index_dir = tmp_path_factory.mktemp("integration") / "idx"
    with XKSearch.build(corpus, index_dir) as built:
        yield built


class TestTextRoundTrip:
    def test_serialize_parse_preserves_everything(self, corpus):
        text = serialize(corpus.root)
        reparsed = parse(text)
        assert len(reparsed) == len(corpus)
        assert [n.dewey for n in reparsed] == [n.dewey for n in corpus]
        assert reparsed.keyword_lists() == corpus.keyword_lists()

    def test_index_from_text_equals_index_from_tree(self, corpus, tmp_path):
        text = serialize(corpus.root)
        doc = tmp_path / "corpus.xml"
        doc.write_text(text, encoding="utf-8")
        with XKSearch.build(doc, tmp_path / "idx") as from_text:
            with XKSearch.from_tree(corpus) as from_tree:
                for query in ("xkrare xkbig", "xkmid smith", "query index"):
                    assert [r.dewey for r in from_text.search(query)] == [
                        r.dewey for r in from_tree.search(query)
                    ], query


class TestAlgorithmConsistencyAtScale:
    QUERIES = (
        "xkrare xkhuge",
        "xkmid xkbig",
        "xkrare xkmid xkbig xkhuge",
        "smith query",
        "sigmod kumar",
        "xkrare",
    )

    @pytest.mark.parametrize("query", QUERIES)
    def test_all_algorithms_and_oracle_agree(self, corpus, system, query):
        lists = corpus.keyword_lists()
        words = query.split()
        if not all(w in lists for w in words):
            pytest.skip("keyword not present in this seed")
        keyword_lists = [lists[w] for w in words]
        oracle = slca_by_containment(keyword_lists)
        for algorithm in ("il", "scan", "stack"):
            got = [r.dewey for r in system.search(query, algorithm=algorithm)]
            assert set(got) == oracle, (query, algorithm)
            assert got == sorted(got)

    def test_semantics_containment_chain(self, corpus, system):
        query = "xkrare xkbig"
        slcas = {r.dewey for r in system.search(query)}
        elcas = {r.dewey for r in system.search_elcas(query)}
        lcas = {r.dewey for r in system.search_all_lcas(query)}
        assert slcas <= elcas <= lcas
        lists = corpus.keyword_lists()
        assert elcas == elca_by_containment([lists["xkrare"], lists["xkbig"]])

    def test_engine_cost_profile_matches_theory(self, system):
        stats = ExecutionStats()
        list(system.search_ids("xkrare xkhuge", algorithm="il", stats=stats))
        # 2 keywords, |S1| = 3: at most 2·(k-1)·|S1| match operations.
        assert stats.counters.match_ops <= 2 * 1 * 3


class TestStructuralCrossCheck:
    def test_keyword_answer_subtrees_contain_path_matches(self, corpus):
        system = XKSearch.from_tree(corpus)
        answers = {r.dewey for r in system.search("smith sigmod")}
        if not answers:
            pytest.skip("no co-occurrence in this seed")
        smith_nodes = {n.dewey for n in select(corpus, "//author/text()") if "smith" in (n.text or "")}
        for answer in answers:
            subtree = {n.dewey for n in corpus.node(answer).iter_subtree()}
            assert subtree & smith_nodes or any(
                "smith" in (n.text or "") for n in corpus.node(answer).iter_subtree() if n.is_text
            )

    def test_tag_atom_equals_path_filtered_keywords(self, corpus):
        system = XKSearch.from_tree(corpus)
        # title:query must match exactly the keyword occurrences whose
        # parent element is <title>, as XPath sees them.
        postings = corpus.keyword_postings()["query"]
        expected = [d for d, tag in postings if tag == "title"]
        got = system.index.keyword_list("query", tag="title")
        assert got == expected


class TestUpdateLifecycle:
    def test_update_then_requery_consistent(self, corpus, tmp_path):
        index_dir = tmp_path / "upd"
        build_index(corpus, index_dir)
        fragment = parse(
            "<paper><title>totally novel phrase</title><author>xkrare</author></paper>"
        )
        # Graft as a new paper under the first year of the first venue.
        anchor = corpus.node((0, 0, 1))
        new_dewey = (0, 0, 1) + (len(anchor.children),)
        renumber_subtree(fragment.root, new_dewey)
        with IndexUpdater(index_dir) as updater:
            updater.add_subtree(fragment.root)
        with DiskKeywordIndex(index_dir) as index:
            assert index.keyword_list("novel") == [new_dewey + (0, 0)]
            # the planted keyword xkrare gained one occurrence
            assert index.frequency("xkrare") == 4
            # a query mixing old and new postings is consistent across paths
            from repro.core import eager_slca

            il = list(eager_slca(index.sources_for(("novel", "xkrare"), "indexed")))
            sc = list(eager_slca(index.sources_for(("novel", "xkrare"), "scan")))
            assert il == sc
            # and matches an in-memory recomputation
            want = slca([index.keyword_list("novel"), index.keyword_list("xkrare")])
            assert il == want

    def test_remove_restores_original_answers(self, corpus, tmp_path):
        index_dir = tmp_path / "upd2"
        build_index(corpus, index_dir)
        with DiskKeywordIndex(index_dir) as index:
            before = list(index.scan("xkmid"))
        fragment = parse("<note>xkmid</note>")
        renumber_subtree(fragment.root, (0, 4, 4, 13))
        with IndexUpdater(index_dir) as updater:
            updater.add_subtree(fragment.root)
        with IndexUpdater(index_dir) as updater:
            updater.remove_subtree(fragment.root)
        with DiskKeywordIndex(index_dir) as index:
            assert list(index.scan("xkmid")) == before


class TestCollectionsAtScale:
    def test_three_document_collection(self, tmp_path):
        docs = {}
        for i in range(3):
            tree = dblp_like_tree(seed=100 + i, venues=2, years_per_venue=2, papers_per_year=6)
            plant_keywords(tree, {f"only{i}": 2, "shared": 4}, seed=i)
            docs[f"doc{i}.xml"] = tree
        collection = XMLCollection(docs)
        # per-document keywords resolve to their own document
        for i in range(3):
            results = collection.search(f"only{i} shared")
            assert results, i
            assert {r.document for r in results} == {f"doc{i}.xml"}
        # a shared keyword alone spans all documents
        assert set(collection.documents_matching("shared")) == set(docs)

    def test_collection_answers_match_per_document_search(self, tmp_path):
        trees = {
            f"d{i}": dblp_like_tree(seed=200 + i, venues=2, years_per_venue=2, papers_per_year=5)
            for i in range(2)
        }
        for i, tree in enumerate(trees.values()):
            plant_keywords(tree, {"common": 3, "word": 3}, seed=i)
        collection = XMLCollection(dict(trees))
        combined = [
            (r.document, r.dewey) for r in collection.search("common word")
        ]
        individually = []
        for name, tree in trees.items():
            single = XKSearch.from_tree(tree)
            individually.extend((name, r.dewey) for r in single.search("common word"))
        assert sorted(combined) == sorted(individually)


class TestRandomizedEndToEnd:
    def test_disk_queries_match_brute_force(self, tmp_path):
        rng = random.Random(31)
        tree = dblp_like_tree(seed=31, venues=3, years_per_venue=3, papers_per_year=6)
        index_dir = tmp_path / "rand"
        build_index(tree, index_dir, page_size=512)
        lists = tree.keyword_lists()
        keywords = [k for k, lst in lists.items() if 1 <= len(lst) <= 25]
        with DiskKeywordIndex(index_dir, pool_capacity=64) as index:
            from repro.core import eager_slca

            for _ in range(25):
                k = rng.randint(2, 3)
                chosen = rng.sample(keywords, k)
                want = brute_slca([lists[kw] for kw in chosen])
                got = set(eager_slca(index.sources_for(chosen, "indexed")))
                assert got == want, chosen
