"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.xmltree.generate import dblp_like_tree, plant_keywords, school_tree


@pytest.fixture
def school():
    """The paper's Figure 1 running example."""
    return school_tree()


@pytest.fixture
def planted_dblp():
    """A small DBLP-like corpus with three planted keywords (4/20/60)."""
    tree = dblp_like_tree(5, venues=3, years_per_venue=3, papers_per_year=10)
    plant_keywords(tree, {"xkrare": 4, "xkmid": 20, "xkbig": 60}, seed=9)
    return tree


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


# -- hypothesis strategies ----------------------------------------------------

#: A Dewey number in a small, collision-rich space (root (0,) plus up to
#: four levels of fanout four) — small enough that random lists share
#: ancestors, which is what exercises the SLCA logic.
dewey_st = st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=4).map(
    lambda tail: (0, *tail)
)

#: One keyword list: strictly sorted, non-empty.
keyword_list_st = st.lists(dewey_st, min_size=1, max_size=24).map(
    lambda lst: sorted(set(lst))
)

#: A query: one to four keyword lists.
query_lists_st = st.lists(keyword_list_st, min_size=1, max_size=4)
