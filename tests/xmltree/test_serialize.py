"""Unit tests for XML serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree.parser import parse
from repro.xmltree.serialize import escape_attr, escape_text, serialize


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_attr_escapes_quotes(self):
        assert escape_attr('say "hi" & go') == "say &quot;hi&quot; &amp; go"

    def test_escape_order_no_double_escaping(self):
        assert escape_text("&lt;") == "&amp;lt;"


class TestShapes:
    def test_empty_element(self):
        tree = parse("<a/>")
        assert serialize(tree.root).strip() == "<a/>"

    def test_attributes(self):
        tree = parse('<a x="1" y="two"/>')
        assert serialize(tree.root).strip() == '<a x="1" y="two"/>'

    def test_text_only_child_inlined(self):
        tree = parse("<a>hello</a>")
        assert serialize(tree.root).strip() == "<a>hello</a>"

    def test_nested_pretty_printed(self):
        tree = parse("<a><b>x</b></a>")
        out = serialize(tree.root)
        assert out == "<a>\n  <b>x</b>\n</a>\n"

    def test_compact_mode(self):
        tree = parse("<a><b>x</b><c/></a>")
        assert serialize(tree.root, indent_step=0) == "<a><b>x</b><c/></a>"

    def test_special_chars_roundtrip(self):
        tree = parse("<a>x &lt; y &amp; z</a>")
        assert "x &lt; y &amp; z" in serialize(tree.root)

    def test_subtree_serialization(self, school):
        out = serialize(school.root.children[0])
        assert out.startswith("<Class>")
        assert "John" in out and "Ben" in out


class TestRoundTrip:
    def test_parse_serialize_parse_preserves_structure(self, school):
        text = serialize(school.root)
        again = parse(text)
        assert [n.dewey for n in again] == [n.dewey for n in school]
        assert [n.tag for n in again] == [n.tag for n in school]

    @given(
        words=st.lists(
            st.text(alphabet="abcz<>&\"' ", min_size=1, max_size=8),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=100)
    def test_arbitrary_text_roundtrips(self, words):
        from repro.xmltree.tree import Node, TEXT_TAG, XMLTree

        root = Node("r")
        root.dewey = (0,)
        for word in words:
            element = root.add_child(Node("w"))
            element.add_child(Node(TEXT_TAG, text=word))
        text = serialize(root)
        again = parse(text, keep_whitespace=False)
        got = [n.text for n in again if n.is_text]
        # Whitespace-only payloads are dropped by the default policy.
        want = [w for w in words if w.strip()]
        assert got == want
