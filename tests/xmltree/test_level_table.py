"""Unit tests for the level table."""

import pytest

from repro.errors import DeweyError
from repro.xmltree.level_table import LevelTable
from repro.xmltree.parser import parse


class TestConstruction:
    def test_widths_accommodate_uncle_probe(self):
        table = LevelTable([4])
        # Encoded value range must cover ordinal 4 (uncle) + 1 shift = 5.
        assert (1 << table.widths[0]) - 1 >= 5

    def test_fanout_one_gets_nonzero_width(self):
        table = LevelTable([1])
        assert table.widths[0] >= 1

    def test_empty_fanouts_rejected(self):
        with pytest.raises(DeweyError):
            LevelTable([])

    def test_from_tree_drops_leaf_level(self):
        tree = parse("<a><b><c/></b></a>")
        table = LevelTable.from_tree(tree)
        # Levels with children: root and b — the all-leaf level c is dropped.
        assert table.levels == 2

    def test_from_tree_fanouts(self):
        tree = parse("<a><b/><b/><b><c/></b></a>")
        table = LevelTable.from_tree(tree)
        assert table.fanouts == [3, 1]

    def test_from_deweys(self):
        table = LevelTable.from_deweys([(0, 2), (0, 0, 5)])
        assert table.fanouts == [3, 6]

    def test_from_deweys_root_only(self):
        table = LevelTable.from_deweys([(0,)])
        assert table.levels == 1


class TestChecks:
    def test_check_fits_accepts_in_range(self):
        LevelTable([4, 4]).check_fits((0, 3, 3))

    def test_check_fits_rejects_deep(self):
        with pytest.raises(DeweyError, match="deeper"):
            LevelTable([4]).check_fits((0, 1, 1))

    def test_check_fits_rejects_wide(self):
        with pytest.raises(DeweyError, match="exceeds"):
            LevelTable([2]).check_fits((0, 9))

    def test_max_dewey_bits(self):
        table = LevelTable([4, 4])
        assert table.max_dewey_bits == sum(table.widths)

    def test_width_accessor(self):
        table = LevelTable([4, 16])
        assert table.width(1) == table.widths[1]


class TestSerialization:
    def test_json_roundtrip(self):
        table = LevelTable([20, 11, 1001, 4, 1])
        again = LevelTable.from_json(table.to_json())
        assert again == table
        assert again.widths == table.widths

    def test_equality(self):
        assert LevelTable([2, 3]) == LevelTable([2, 3])
        assert LevelTable([2, 3]) != LevelTable([3, 2])
        assert LevelTable([2]) != object()

    def test_repr(self):
        assert "fanouts" in repr(LevelTable([2]))
