"""Unit tests for document statistics."""

import pytest

from repro.xmltree.docstats import analyze, format_stats


@pytest.fixture
def stats(school):
    return analyze(school)


class TestAnalyze:
    def test_node_counts(self, school, stats):
        assert stats.total_nodes == len(school)
        assert stats.element_nodes + stats.text_nodes == stats.total_nodes
        assert stats.text_nodes == sum(1 for n in school if n.is_text)

    def test_depth(self, school, stats):
        assert stats.max_depth == school.depth
        assert sum(stats.depth_histogram.values()) == stats.total_nodes
        assert 1 < stats.mean_depth < stats.max_depth

    def test_tag_counts(self, stats):
        assert stats.tag_counts["Class"] == 2
        assert stats.tag_counts["Project"] == 2

    def test_level_fanouts_match_tree(self, school, stats):
        assert stats.level_fanouts == school.level_fanouts()

    def test_keyword_totals(self, school, stats):
        lists = school.keyword_lists()
        assert stats.distinct_keywords == len(lists)
        assert stats.total_postings == sum(len(lst) for lst in lists.values())

    def test_top_keywords_sorted(self, stats):
        counts = [count for _, count in stats.top_keywords]
        assert counts == sorted(counts, reverse=True)

    def test_percentiles_monotone(self, stats):
        p = stats.frequency_percentiles
        assert p[50] <= p[90] <= p[99] <= p[100]

    def test_skew(self, stats):
        assert stats.frequency_skew >= 1.0

    def test_top_parameter(self, school):
        assert len(analyze(school, top=3).top_keywords) == 3


class TestFormat:
    def test_report_mentions_key_sections(self, stats):
        out = format_stats(stats)
        for fragment in (
            "nodes:",
            "depth:",
            "level fanouts:",
            "distinct keywords:",
            "frequency skew",
            "top keywords:",
            "top tags:",
        ):
            assert fragment in out, fragment


class TestCLI:
    def test_analyze_command(self, tmp_path, capsys):
        from repro.xksearch.cli import main
        from repro.xmltree.generate import school_xml

        doc = tmp_path / "school.xml"
        doc.write_text(school_xml(), encoding="utf-8")
        assert main(["analyze", str(doc)]) == 0
        out = capsys.readouterr().out
        assert "distinct keywords:" in out

    def test_analyze_missing_file(self, tmp_path, capsys):
        from repro.xksearch.cli import main

        assert main(["analyze", str(tmp_path / "ghost.xml")]) == 1
