"""Unit tests for the XML tokenizer."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmltree.tokenizer import Token, TokenType, decode_entities, tokenize


def toks(text):
    return list(tokenize(text))


class TestTags:
    def test_simple_element(self):
        result = toks("<a></a>")
        assert [t.type for t in result] == [TokenType.START_TAG, TokenType.END_TAG]
        assert result[0].value == "a" and result[1].value == "a"

    def test_empty_element(self):
        (t,) = toks("<a/>")
        assert t.type is TokenType.EMPTY_TAG and t.value == "a"

    def test_empty_element_with_space(self):
        (t,) = toks("<a />")
        assert t.type is TokenType.EMPTY_TAG

    def test_nested(self):
        result = toks("<a><b/></a>")
        assert [t.value for t in result] == ["a", "b", "a"]

    def test_name_characters(self):
        (t,) = toks("<ns:tag-1.x_y/>")
        assert t.value == "ns:tag-1.x_y"

    def test_end_tag_with_whitespace(self):
        result = toks("<a></a >")
        assert result[-1].type is TokenType.END_TAG

    def test_missing_name_raises(self):
        with pytest.raises(XMLSyntaxError):
            toks("<1a/>")

    def test_unterminated_start_tag_raises(self):
        with pytest.raises(XMLSyntaxError):
            toks("<a")

    def test_malformed_end_tag_raises(self):
        with pytest.raises(XMLSyntaxError):
            toks("<a></a b>")


class TestAttributes:
    def test_double_quoted(self):
        (t,) = toks('<a x="1"/>')
        assert t.attrs == {"x": "1"}

    def test_single_quoted(self):
        (t,) = toks("<a x='hi there'/>")
        assert t.attrs == {"x": "hi there"}

    def test_multiple_attributes(self):
        (t,) = toks('<a x="1" y="2" z="3"/>')
        assert t.attrs == {"x": "1", "y": "2", "z": "3"}

    def test_entities_in_attribute_value(self):
        (t,) = toks('<a x="a&amp;b&lt;c"/>')
        assert t.attrs == {"x": "a&b<c"}

    def test_spaces_around_equals(self):
        (t,) = toks('<a x = "1"/>')
        assert t.attrs == {"x": "1"}

    def test_duplicate_attribute_raises(self):
        with pytest.raises(XMLSyntaxError, match="duplicate"):
            toks('<a x="1" x="2"/>')

    def test_unquoted_value_raises(self):
        with pytest.raises(XMLSyntaxError, match="quoted"):
            toks("<a x=1/>")

    def test_missing_equals_raises(self):
        with pytest.raises(XMLSyntaxError, match="'='"):
            toks('<a x "1"/>')

    def test_unterminated_value_raises(self):
        with pytest.raises(XMLSyntaxError, match="unterminated"):
            toks('<a x="1/>')

    def test_missing_whitespace_between_attrs_raises(self):
        with pytest.raises(XMLSyntaxError, match="whitespace"):
            toks('<a x="1"y="2"/>')

    def test_lt_in_attribute_value_raises(self):
        with pytest.raises(XMLSyntaxError, match="not allowed"):
            toks('<a x="a<b"/>')


class TestText:
    def test_plain_text(self):
        result = toks("<a>hello world</a>")
        assert result[1].type is TokenType.TEXT
        assert result[1].value == "hello world"

    def test_predefined_entities(self):
        result = toks("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>")
        assert result[1].value == "<x> & \"y\" 'z'"

    def test_decimal_char_ref(self):
        result = toks("<a>&#65;</a>")
        assert result[1].value == "A"

    def test_hex_char_ref(self):
        result = toks("<a>&#x41;&#X42;</a>")
        assert result[1].value == "AB"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError, match="unknown entity"):
            toks("<a>&nope;</a>")

    def test_unterminated_entity_raises(self):
        with pytest.raises(XMLSyntaxError, match="unterminated entity"):
            toks("<a>&amp</a>")

    def test_invalid_char_ref_raises(self):
        with pytest.raises(XMLSyntaxError, match="invalid character"):
            toks("<a>&#xZZ;</a>")

    def test_decode_entities_no_amp_fast_path(self):
        assert decode_entities("plain") == "plain"


class TestCData:
    def test_cdata_becomes_text(self):
        result = toks("<a><![CDATA[<raw> & stuff]]></a>")
        assert result[1].type is TokenType.TEXT
        assert result[1].value == "<raw> & stuff"

    def test_cdata_entities_not_decoded(self):
        result = toks("<a><![CDATA[&amp;]]></a>")
        assert result[1].value == "&amp;"

    def test_unterminated_cdata_raises(self):
        with pytest.raises(XMLSyntaxError, match="CDATA"):
            toks("<a><![CDATA[oops</a>")


class TestCommentsAndPIs:
    def test_comment(self):
        result = toks("<a><!-- hi --></a>")
        assert result[1].type is TokenType.COMMENT
        assert result[1].value == " hi "

    def test_double_dash_in_comment_raises(self):
        with pytest.raises(XMLSyntaxError, match="--"):
            toks("<a><!-- a -- b --></a>")

    def test_unterminated_comment_raises(self):
        with pytest.raises(XMLSyntaxError, match="comment"):
            toks("<a><!-- oops</a>")

    def test_processing_instruction(self):
        result = toks("<a><?php echo ?></a>")
        assert result[1].type is TokenType.PI
        assert result[1].value == "php"

    def test_pi_without_target_raises(self):
        with pytest.raises(XMLSyntaxError, match="target"):
            toks("<a><? ?></a>")


class TestProlog:
    def test_xml_declaration_skipped(self):
        result = toks('<?xml version="1.0" encoding="utf-8"?>\n<a/>')
        assert len(result) == 1 and result[0].value == "a"

    def test_doctype_skipped(self):
        result = toks("<!DOCTYPE a SYSTEM 'a.dtd'>\n<a/>")
        assert len(result) == 1

    def test_doctype_with_internal_subset(self):
        result = toks("<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]>\n<a/>")
        assert len(result) == 1

    def test_unterminated_doctype_raises(self):
        with pytest.raises(XMLSyntaxError, match="DOCTYPE"):
            toks("<!DOCTYPE a")

    def test_unterminated_declaration_raises(self):
        with pytest.raises(XMLSyntaxError, match="declaration"):
            toks("<?xml version='1.0'")


class TestPositions:
    def test_error_carries_line_and_column(self):
        try:
            toks("<a>\n  <b x=1/>\n</a>")
        except XMLSyntaxError as exc:
            assert exc.line == 2
            assert exc.column > 1
        else:
            pytest.fail("expected XMLSyntaxError")

    def test_token_positions(self):
        result = toks("<a>\n<b/></a>")
        b = result[2]
        assert (b.line, b.column) == (2, 1)
