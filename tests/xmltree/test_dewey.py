"""Unit tests for the Dewey-number algebra."""

import pytest
from hypothesis import given

from repro.errors import DeweyError
from repro.xmltree import dewey as dw
from repro.xmltree.dewey import Dewey

from tests.conftest import dewey_st


class TestOrdering:
    def test_tuple_order_is_document_order_ancestor_first(self):
        assert (0, 1) < (0, 1, 0)

    def test_tuple_order_siblings(self):
        assert (0, 1, 2) < (0, 1, 3)

    def test_tuple_order_across_subtrees(self):
        assert (0, 1, 5, 9) < (0, 2)

    @given(a=dewey_st, b=dewey_st)
    def test_order_matches_preorder_rank(self, a, b):
        # Document order: a precedes b iff a is an ancestor of b, or at the
        # first differing component a is smaller.
        if a == b:
            assert not (a < b)
            return
        i = dw.common_prefix_len(a, b)
        if i == len(a):
            assert a < b  # a is an ancestor of b
        elif i == len(b):
            assert b < a
        else:
            assert (a < b) == (a[i] < b[i])


class TestCommonPrefixLen:
    # Exercises both branches of the fast path: the one-shot slice compare
    # for prefix (ancestor/descendant) pairs, and the per-component walk
    # for mismatching pairs.

    def test_equal_tuples(self):
        assert dw.common_prefix_len((0, 1, 2), (0, 1, 2)) == 3

    def test_ancestor_prefix_short_first(self):
        assert dw.common_prefix_len((0, 1), (0, 1, 2, 3)) == 2

    def test_ancestor_prefix_long_first(self):
        assert dw.common_prefix_len((0, 1, 2, 3), (0, 1)) == 2

    def test_mismatch_midway(self):
        assert dw.common_prefix_len((0, 1, 2, 9), (0, 1, 3, 9)) == 2

    def test_mismatch_at_first_component(self):
        assert dw.common_prefix_len((0,), (1,)) == 0

    def test_mismatch_at_last_shared_component(self):
        assert dw.common_prefix_len((0, 1, 2), (0, 1, 3, 4)) == 2

    @given(dewey_st, dewey_st)
    def test_matches_naive_definition(self, a, b):
        expected = 0
        for x, y in zip(a, b):
            if x != y:
                break
            expected += 1
        assert dw.common_prefix_len(a, b) == expected


class TestLCA:
    def test_lca_of_siblings_is_parent(self):
        assert dw.lca((0, 1, 0), (0, 1, 2)) == (0, 1)

    def test_lca_with_ancestor_is_ancestor(self):
        assert dw.lca((0, 1), (0, 1, 2, 3)) == (0, 1)

    def test_lca_of_node_with_itself(self):
        assert dw.lca((0, 2, 1), (0, 2, 1)) == (0, 2, 1)

    def test_lca_distinct_subtrees_is_root(self):
        assert dw.lca((0, 0, 5), (0, 3)) == (0,)

    def test_lca_disjoint_roots_raises(self):
        with pytest.raises(DeweyError):
            dw.lca((0, 1), (1, 1))

    def test_lca_many_folds(self):
        assert dw.lca_many([(0, 1, 2), (0, 1, 3), (0, 1, 2, 2)]) == (0, 1)

    def test_lca_many_single(self):
        assert dw.lca_many([(0, 5)]) == (0, 5)

    def test_lca_many_empty_raises(self):
        with pytest.raises(DeweyError):
            dw.lca_many([])

    @given(a=dewey_st, b=dewey_st)
    def test_lca_is_common_ancestor_and_lowest(self, a, b):
        ancestor = dw.lca(a, b)
        assert dw.is_ancestor_or_self(ancestor, a)
        assert dw.is_ancestor_or_self(ancestor, b)
        # One level deeper is no longer common.
        deeper_guess = a[: len(ancestor) + 1]
        if len(deeper_guess) > len(ancestor):
            assert not (
                dw.is_ancestor_or_self(deeper_guess, a)
                and dw.is_ancestor_or_self(deeper_guess, b)
            ) or a == b


class TestAncestorTests:
    def test_proper_ancestor(self):
        assert dw.is_ancestor((0,), (0, 1))

    def test_self_is_not_proper_ancestor(self):
        assert not dw.is_ancestor((0, 1), (0, 1))

    def test_self_is_ancestor_or_self(self):
        assert dw.is_ancestor_or_self((0, 1), (0, 1))

    def test_sibling_is_not_ancestor(self):
        assert not dw.is_ancestor((0, 1), (0, 2))

    def test_descendant_is_not_ancestor_of_ancestor(self):
        assert not dw.is_ancestor((0, 1, 2), (0, 1))


class TestDeeper:
    def test_deeper_picks_longer(self):
        assert dw.deeper((0, 1), (0, 1, 2)) == (0, 1, 2)

    def test_deeper_none_left(self):
        assert dw.deeper(None, (0, 1)) == (0, 1)

    def test_deeper_none_right(self):
        assert dw.deeper((0, 1), None) == (0, 1)

    def test_deeper_both_none(self):
        assert dw.deeper(None, None) is None

    def test_deeper_equal_length_returns_first(self):
        assert dw.deeper((0, 1), (0, 2)) == (0, 1)


class TestPaths:
    def test_parent(self):
        assert dw.parent((0, 1, 2)) == (0, 1)

    def test_parent_of_root_is_none(self):
        assert dw.parent((0,)) is None

    def test_ancestors_to_root(self):
        assert list(dw.ancestors((0, 1, 2, 3))) == [(0, 1, 2), (0, 1), (0,)]

    def test_ancestors_of_root_empty(self):
        assert list(dw.ancestors((0,))) == []

    def test_ancestors_with_stop_excludes_stop(self):
        assert list(dw.ancestors((0, 1, 2, 3), stop=(0, 1))) == [(0, 1, 2)]

    def test_ancestors_stop_at_parent_yields_nothing(self):
        assert list(dw.ancestors((0, 1, 2), stop=(0, 1))) == []

    def test_ancestors_stop_self_yields_nothing(self):
        assert list(dw.ancestors((0, 1), stop=(0, 1))) == []

    def test_ancestors_invalid_stop_raises(self):
        with pytest.raises(DeweyError):
            list(dw.ancestors((0, 1), stop=(0, 2)))

    def test_child_toward(self):
        assert dw.child_toward((0,), (0, 2, 5, 1)) == (0, 2)

    def test_child_toward_direct_child(self):
        assert dw.child_toward((0, 1), (0, 1, 4)) == (0, 1, 4)

    def test_child_toward_requires_proper_ancestor(self):
        with pytest.raises(DeweyError):
            dw.child_toward((0, 1), (0, 1))

    def test_uncle_is_next_sibling_of_path_child(self):
        assert dw.uncle((0,), (0, 2, 5)) == (0, 3)

    def test_uncle_of_direct_child(self):
        assert dw.uncle((0, 1), (0, 1, 0, 7)) == (0, 1, 1)

    def test_depth(self):
        assert dw.depth((0,)) == 1
        assert dw.depth((0, 3, 1)) == 3

    @given(d=dewey_st)
    def test_every_proper_ancestor_is_prefix(self, d):
        for a in dw.ancestors(d):
            assert dw.is_ancestor(a, d)


class TestValidate:
    def test_valid(self):
        assert dw.validate((0, 1, 2)) == (0, 1, 2)

    def test_empty_raises(self):
        with pytest.raises(DeweyError):
            dw.validate(())

    def test_negative_raises(self):
        with pytest.raises(DeweyError):
            dw.validate((0, -1))

    def test_non_tuple_raises(self):
        with pytest.raises(DeweyError):
            dw.validate([0, 1])


class TestDeweyClass:
    def test_parse_and_str_roundtrip(self):
        d = Dewey.parse("0.1.2")
        assert str(d) == "0.1.2"
        assert d.tuple == (0, 1, 2)

    def test_parse_invalid_raises(self):
        with pytest.raises(DeweyError):
            Dewey.parse("0.x.2")

    def test_ordering(self):
        assert Dewey.parse("0.1") < Dewey.parse("0.1.0") < Dewey.parse("0.2")
        assert Dewey.parse("0.2") >= Dewey.parse("0.1")

    def test_equality_and_hash(self):
        assert Dewey((0, 1)) == Dewey.parse("0.1")
        assert hash(Dewey((0, 1))) == hash(Dewey.parse("0.1"))
        assert Dewey((0, 1)) != (0, 1)

    def test_lca_method(self):
        assert Dewey.parse("0.1.2").lca(Dewey.parse("0.1.5")) == Dewey.parse("0.1")

    def test_ancestor_methods(self):
        assert Dewey.parse("0.1").is_ancestor_of(Dewey.parse("0.1.2"))
        assert not Dewey.parse("0.1").is_ancestor_of(Dewey.parse("0.1"))
        assert Dewey.parse("0.1").is_ancestor_or_self_of(Dewey.parse("0.1"))

    def test_parent_property(self):
        assert Dewey.parse("0.1.2").parent == Dewey.parse("0.1")
        assert Dewey.parse("0").parent is None

    def test_depth_and_len(self):
        d = Dewey.parse("0.4.2")
        assert d.depth == 3
        assert len(d) == 3

    def test_repr(self):
        assert repr(Dewey.parse("0.1")) == "Dewey('0.1')"
