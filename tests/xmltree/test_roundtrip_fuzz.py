"""Fuzz the parse/serialize pipeline with generated documents.

A hypothesis strategy builds arbitrary labeled trees (tags, attributes
with hostile characters, mixed text including XML metacharacters), which
must survive serialize → parse → serialize byte-identically, and whose
keyword lists must be stable across the round trip.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree.parser import parse
from repro.xmltree.serialize import serialize
from repro.xmltree.tree import Node, TEXT_TAG, XMLTree

tag_st = st.from_regex(r"[A-Za-z][A-Za-z0-9_\-\.]{0,6}", fullmatch=True)
# Text with metacharacters; no bare whitespace-only strings (the default
# parse policy drops those, breaking exact round trips by design).
text_st = st.text(
    alphabet="ab<>&\"'xyz0123456789 ", min_size=1, max_size=12
).filter(lambda s: s.strip())
attr_value_st = st.text(alphabet="ab<&\"'c ", max_size=8)


@st.composite
def tree_st(draw, max_children=3, max_depth=3):
    def build(depth: int) -> Node:
        node = Node(draw(tag_st))
        n_attrs = draw(st.integers(0, 2))
        if n_attrs:
            names = draw(
                st.lists(tag_st, min_size=n_attrs, max_size=n_attrs, unique=True)
            )
            node.attrs = {name: draw(attr_value_st) for name in names}
        if depth < max_depth:
            for _ in range(draw(st.integers(0, max_children))):
                if draw(st.booleans()):
                    node.add_child(Node(TEXT_TAG, text=draw(text_st)))
                else:
                    node.add_child(build(depth + 1))
        return node

    root = build(0)
    root.dewey = (0,)
    tree = XMLTree(root)
    # Re-assign deweys for children attached before the root got its id.
    from repro.xmltree.tree import renumber_subtree

    renumber_subtree(tree.root, (0,))
    return tree


@given(tree=tree_st())
@settings(max_examples=150, deadline=None)
def test_serialize_parse_round_trip_structure(tree):
    text = serialize(tree.root)
    reparsed = parse(text)
    assert [n.tag for n in reparsed] == [n.tag for n in _merged(tree)]
    assert [n.dewey for n in reparsed] == [n.dewey for n in _merged(tree)]


@given(tree=tree_st())
@settings(max_examples=150, deadline=None)
def test_round_trip_is_fixed_point(tree):
    """serialize∘parse∘serialize == serialize (idempotent after one trip)."""
    once = serialize(parse(serialize(tree.root)).root)
    twice = serialize(parse(once).root)
    assert once == twice


@given(tree=tree_st())
@settings(max_examples=100, deadline=None)
def test_keyword_lists_survive_round_trip(tree):
    reparsed = parse(serialize(tree.root))
    assert reparsed.keyword_lists() == _merged(tree).keyword_lists()


def _merged(tree: XMLTree) -> XMLTree:
    """Normalize adjacent text children the way a parse would merge them.

    The generator can place two text nodes side by side; serialization
    emits them adjacently and the parser merges them into one node, so the
    comparison target must merge too.
    """
    from repro.xmltree.tree import renumber_subtree

    def merge(node: Node) -> Node:
        clone = Node(node.tag, text=node.text, attrs=dict(node.attrs) if node.attrs else None)
        pending_text = []
        for child in node.children:
            if child.is_text:
                pending_text.append(child.text or "")
                continue
            if pending_text:
                clone.children.append(Node(TEXT_TAG, text="".join(pending_text)))
                pending_text.clear()
            clone.children.append(merge(child))
        if pending_text:
            clone.children.append(Node(TEXT_TAG, text="".join(pending_text)))
        for child in clone.children:
            child.parent = clone
        return clone

    root = merge(tree.root)
    renumber_subtree(root, (0,))
    return XMLTree(root)
