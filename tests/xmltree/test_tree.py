"""Unit tests for the labeled-tree model."""

import pytest

from repro.xmltree.parser import parse
from repro.xmltree.tree import Node, TEXT_TAG, XMLTree, extract_keywords


class TestExtractKeywords:
    def test_lowercases(self):
        assert extract_keywords("John Ben") == ["john", "ben"]

    def test_splits_on_punctuation(self):
        assert extract_keywords("data-base, query.") == ["data", "base", "query"]

    def test_keeps_digits_and_underscore(self):
        assert extract_keywords("xk10_3 v2") == ["xk10_3", "v2"]

    def test_empty(self):
        assert extract_keywords("  ... ") == []


class TestNode:
    def test_add_child_assigns_dewey_and_parent(self):
        root = Node("r")
        root.dewey = (0,)
        a = root.add_child(Node("a"))
        b = root.add_child(Node("b"))
        assert a.dewey == (0, 0) and b.dewey == (0, 1)
        assert a.parent is root

    def test_label_of_element_includes_attrs(self):
        node = Node("paper", attrs={"year": "2005"})
        assert extract_keywords(node.label) == ["paper", "year", "2005"]

    def test_label_of_text_node(self):
        node = Node(TEXT_TAG, text="Hello World")
        assert node.is_text
        assert node.keywords() == ["hello", "world"]

    def test_iter_subtree_is_preorder(self):
        tree = parse("<a><b><c/></b><d/></a>")
        tags = [n.tag for n in tree.root.iter_subtree()]
        assert tags == ["a", "b", "c", "d"]

    def test_repr_mentions_dewey(self):
        tree = parse("<a><b/></a>")
        assert "0.0" in repr(tree.root.children[0])


class TestXMLTree:
    def test_iteration_in_document_order(self):
        tree = parse("<a><b>x</b><c/></a>")
        deweys = [n.dewey for n in tree]
        assert deweys == sorted(deweys)

    def test_len(self):
        tree = parse("<a><b/><c/></a>")
        assert len(tree) == 3

    def test_depth(self):
        tree = parse("<a><b><c>t</c></b></a>")
        assert tree.depth == 4

    def test_node_lookup(self):
        tree = parse("<a><b/><c><d/></c></a>")
        assert tree.node((0, 1, 0)).tag == "d"

    def test_node_lookup_missing_raises(self):
        tree = parse("<a/>")
        with pytest.raises(KeyError):
            tree.node((0, 7))

    def test_has_node(self):
        tree = parse("<a><b/></a>")
        assert tree.has_node((0, 0))
        assert not tree.has_node((0, 1))

    def test_keyword_lists_sorted_and_complete(self, school):
        lists = school.keyword_lists()
        assert lists["john"] == sorted(lists["john"])
        assert len(lists["john"]) == 3
        assert len(lists["ben"]) == 3
        # Element tags are searchable too.
        assert len(lists["class"]) == 2

    def test_keyword_appears_once_per_node(self):
        tree = parse("<a>spam spam spam</a>")
        assert len(tree.keyword_lists()["spam"]) == 1

    def test_level_fanouts(self):
        tree = parse("<a><b><c/><c/><c/></b><b/></a>")
        assert tree.level_fanouts() == [2, 3, 0]

    def test_subtree_text(self):
        tree = parse("<a><b>one</b><c>two <d>three</d></c></a>")
        assert tree.subtree_text((0, 1)) == "two  three"
        assert tree.subtree_text((0,)) == "one two  three"

    def test_root_dewey_autoassigned(self):
        root = Node("r")
        tree = XMLTree(root)
        assert tree.root.dewey == (0,)
