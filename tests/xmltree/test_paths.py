"""Unit tests for the XPath-lite evaluator."""

import pytest

from repro.xmltree.paths import PathSyntaxError, parse_path, select, select_deweys


class TestParsing:
    def test_simple_absolute(self):
        path = parse_path("/a/b")
        assert path.absolute
        assert [s.test for s in path.steps] == ["a", "b"]
        assert [s.descendant for s in path.steps] == [False, False]

    def test_descendant_steps(self):
        path = parse_path("//a//b")
        assert all(s.descendant for s in path.steps)

    def test_wildcard_and_text(self):
        path = parse_path("/a/*/text()")
        assert [s.test for s in path.steps] == ["a", "*", "text()"]

    def test_predicates_parsed(self):
        path = parse_path('/a/b[c="x"][2]')
        b = path.steps[1]
        assert len(b.predicates) == 2
        assert b.predicates[0].value == "x"
        assert b.predicates[1].position == 2

    def test_garbage_rejected(self):
        for bad in ("/a/&", "/a[b", "a=b", "/a[b=c]", ""):
            with pytest.raises(PathSyntaxError):
                parse_path(bad)


class TestSelection:
    def test_root_step(self, school):
        (root,) = select(school, "/School")
        assert root is school.root

    def test_child_steps(self, school):
        classes = select(school, "/School/Class")
        assert [n.dewey for n in classes] == [(0, 0), (0, 1)]

    def test_descendant_step(self, school):
        members = select(school, "//Member")
        assert len(members) == 3

    def test_descendant_from_child(self, school):
        titles = select(school, "/School/Projects//Title")
        assert [n.dewey for n in titles] == [(0, 2, 0, 0), (0, 2, 1, 0)]

    def test_wildcard(self, school):
        children = select(school, "/School/*")
        assert [n.tag for n in children] == ["Class", "Class", "Projects"]

    def test_text_nodes(self, school):
        texts = select(school, "/School/Class/Instructor/text()")
        assert [n.text for n in texts] == ["John", "John"]

    def test_document_order_and_dedup(self, school):
        # // over overlapping contexts must not duplicate matches.
        nodes = select(school, "//Project//text()")
        deweys = [n.dewey for n in nodes]
        assert deweys == sorted(deweys)
        assert len(set(deweys)) == len(deweys)

    def test_no_match(self, school):
        assert select(school, "/School/Zebra") == []

    def test_relative_path_from_root_children(self, school):
        assert [n.dewey for n in select(school, "Class")] == [(0, 0), (0, 1)]


class TestPredicates:
    def test_existence(self, school):
        classes = select(school, "/School/Class[TA]")
        assert [n.dewey for n in classes] == [(0, 0)]

    def test_value_equality(self, school):
        classes = select(school, '/School/Class[Title="CS3A"]')
        assert [n.dewey for n in classes] == [(0, 1)]

    def test_value_equality_via_descendant(self, school):
        projects = select(school, '//Project[Member="Sue"]')
        assert [n.dewey for n in projects] == [(0, 2, 1)]

    def test_position(self, school):
        second = select(school, "/School/Class[2]")
        assert [n.dewey for n in second] == [(0, 1)]

    def test_position_out_of_range(self, school):
        assert select(school, "/School/Class[7]") == []

    def test_chained_predicates(self, school):
        result = select(school, '/School/Class[Instructor="John"][1]')
        assert [n.dewey for n in result] == [(0, 0)]

    def test_nested_relative_path_predicate(self, school):
        result = select(school, '/School[Projects/Project/Member="Ben"]')
        assert [n.dewey for n in result] == [(0,)]


class TestSLCAVerification:
    """The paper's Figure 2: keyword search vs the structural equivalent."""

    def test_keyword_answers_satisfy_structural_conditions(self, school):
        from repro.core import slca

        lists = school.keyword_lists()
        answers = slca([lists["john"], lists["ben"]])
        # Every answer contains a John and a Ben somewhere below (or at) it.
        john_nodes = set(select_deweys(school, '//text()'))
        for answer in answers:
            subtree = {n.dewey for n in school.node(answer).iter_subtree()}
            assert subtree & set(lists["john"])
            assert subtree & set(lists["ben"])

    def test_structural_query_for_specific_answer(self, school):
        # "Classes where Ben is the TA of John" — structural formulation.
        result = select(school, '/School/Class[Instructor="John"][TA="Ben"]')
        assert [n.dewey for n in result] == [(0, 0)]
