"""Unit and property tests for the Dewey codecs.

The disk index depends on two properties of every codec:

* order preservation — bytewise order of encodings equals document order;
* injectivity with prefix discipline — an encoding is a prefix of another
  only for ancestor-or-self pairs, so no two nodes collide.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeweyError
from repro.xmltree.codec import PackedDeweyCodec, VarintDeweyCodec
from repro.xmltree.level_table import LevelTable

from tests.conftest import dewey_st


@pytest.fixture
def packed():
    # Fanout 4 at four levels matches the dewey_st strategy space.
    return PackedDeweyCodec(LevelTable([4, 4, 4, 4]))


@pytest.fixture
def varint():
    return VarintDeweyCodec()


class TestPackedBasics:
    def test_root_encodes_to_empty(self, packed):
        assert packed.encode((0,)) == b""
        assert packed.decode(b"") == (0,)

    def test_roundtrip_simple(self, packed):
        for dewey in [(0,), (0, 0), (0, 3), (0, 1, 2), (0, 3, 3, 3, 3)]:
            assert packed.decode(packed.encode(dewey)) == dewey

    def test_ancestor_encoding_sorts_before_first_child(self, packed):
        parent = packed.encode((0, 1))
        child = packed.encode((0, 1, 0))
        assert parent < child

    def test_rejects_wrong_root(self, packed):
        with pytest.raises(DeweyError):
            packed.encode((1, 0))

    def test_rejects_too_deep(self, packed):
        with pytest.raises(DeweyError):
            packed.encode((0, 1, 1, 1, 1, 1))

    def test_rejects_component_beyond_width(self, packed):
        # Width for fanout 4 is bit_length(5) = 3 → values up to 6 encode
        # (ordinal up to 5, covering the uncle probe one past the fanout).
        packed.encode((0, 5))
        with pytest.raises(DeweyError):
            packed.encode((0, 7))

    def test_corrupt_padding_detected(self, packed):
        good = packed.encode((0, 1))
        bad = bytes([good[0] | 0x01])  # flip a padding bit
        with pytest.raises(DeweyError):
            packed.decode(bad)

    def test_uncle_probe_fits(self, packed):
        # Fanout 4 → ordinals 0..3 exist; the uncle probe may be 4.
        assert packed.decode(packed.encode((0, 4))) == (0, 4)


class TestVarintBasics:
    def test_root_encodes_to_empty(self, varint):
        assert varint.encode((0,)) == b""
        assert varint.decode(b"") == (0,)

    def test_single_byte_components(self, varint):
        assert varint.encode((0, 5)) == bytes([5])
        assert varint.encode((0, 239)) == bytes([239])

    def test_multi_byte_components(self, varint):
        assert varint.encode((0, 240)) == bytes([240, 240])
        assert varint.encode((0, 65536)) == bytes([242, 1, 0, 0])

    def test_roundtrip_large(self, varint):
        for component in [0, 1, 239, 240, 255, 256, 65535, 65536, 2**31]:
            dewey = (0, component, 1)
            assert varint.decode(varint.encode(dewey)) == dewey

    def test_rejects_wrong_root(self, varint):
        with pytest.raises(DeweyError):
            varint.encode((2,))

    def test_truncated_decode_raises(self, varint):
        with pytest.raises(DeweyError):
            varint.decode(bytes([241, 1]))  # marker promises 2 bytes


@pytest.mark.parametrize("codec_name", ["packed", "varint"])
class TestCodecProperties:
    @pytest.fixture
    def codec(self, codec_name, packed, varint):
        return packed if codec_name == "packed" else varint

    @given(a=dewey_st, b=dewey_st)
    @settings(max_examples=300)
    def test_order_preserving_and_injective(self, codec_name, a, b):
        codec = (
            PackedDeweyCodec(LevelTable([4, 4, 4, 4]))
            if codec_name == "packed"
            else VarintDeweyCodec()
        )
        ea, eb = codec.encode(a), codec.encode(b)
        assert (ea < eb) == (a < b)
        assert (ea == eb) == (a == b)

    @given(d=dewey_st)
    @settings(max_examples=300)
    def test_roundtrip(self, codec_name, d):
        codec = (
            PackedDeweyCodec(LevelTable([4, 4, 4, 4]))
            if codec_name == "packed"
            else VarintDeweyCodec()
        )
        assert codec.decode(codec.encode(d)) == d

    @given(a=dewey_st, b=dewey_st)
    @settings(max_examples=300)
    def test_prefix_only_for_ancestors(self, codec_name, a, b):
        codec = (
            PackedDeweyCodec(LevelTable([4, 4, 4, 4]))
            if codec_name == "packed"
            else VarintDeweyCodec()
        )
        ea, eb = codec.encode(a), codec.encode(b)
        if eb.startswith(ea) and a != b:
            assert b[: len(a)] == a, "non-ancestor prefix collision"


class TestSizeComparison:
    def test_packed_is_denser_than_varint_for_shallow_fanouts(self):
        table = LevelTable([8, 8, 8, 8, 8])
        packed = PackedDeweyCodec(table)
        varint = VarintDeweyCodec()
        dewey = (0, 7, 7, 7, 7, 7)
        assert len(packed.encode(dewey)) < len(varint.encode(dewey))
