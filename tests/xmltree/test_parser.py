"""Unit tests for the tree-building parser."""

import io

import pytest

from repro.errors import XMLSyntaxError
from repro.xmltree.parser import parse, parse_file
from repro.xmltree.tree import TEXT_TAG


class TestBasicStructure:
    def test_single_root(self):
        tree = parse("<a/>")
        assert tree.root.tag == "a"
        assert tree.root.dewey == (0,)

    def test_children_get_sequential_deweys(self):
        tree = parse("<a><b/><c/><d/></a>")
        assert [child.dewey for child in tree.root.children] == [
            (0, 0),
            (0, 1),
            (0, 2),
        ]

    def test_nested_deweys(self):
        tree = parse("<a><b><c/></b></a>")
        assert tree.root.children[0].children[0].dewey == (0, 0, 0)

    def test_text_becomes_node(self):
        tree = parse("<a>hello</a>")
        text = tree.root.children[0]
        assert text.tag == TEXT_TAG
        assert text.text == "hello"
        assert text.dewey == (0, 0)

    def test_mixed_content_order(self):
        tree = parse("<a>x<b/>y</a>")
        kinds = [(c.is_text, c.text or c.tag) for c in tree.root.children]
        assert kinds == [(True, "x"), (False, "b"), (True, "y")]

    def test_attributes_preserved(self):
        tree = parse('<a x="1"><b y="2"/></a>')
        assert tree.root.attrs == {"x": "1"}
        assert tree.root.children[0].attrs == {"y": "2"}

    def test_parent_links(self):
        tree = parse("<a><b><c/></b></a>")
        c = tree.root.children[0].children[0]
        assert c.parent.tag == "b"
        assert c.parent.parent is tree.root
        assert tree.root.parent is None


class TestWhitespacePolicy:
    def test_indentation_dropped_by_default(self):
        tree = parse("<a>\n  <b/>\n</a>")
        assert len(tree.root.children) == 1

    def test_keep_whitespace_retains_it(self):
        tree = parse("<a>\n  <b/>\n</a>", keep_whitespace=True)
        assert len(tree.root.children) == 3
        assert tree.root.children[0].is_text

    def test_significant_text_kept(self):
        tree = parse("<a> x </a>")
        assert tree.root.children[0].text == " x "

    def test_adjacent_text_runs_merged(self):
        tree = parse("<a>one<!-- c -->two</a>")
        assert len(tree.root.children) == 1
        assert tree.root.children[0].text == "onetwo"

    def test_cdata_merges_with_text(self):
        tree = parse("<a>x<![CDATA[<y>]]>z</a>")
        assert tree.root.children[0].text == "x<y>z"


class TestWellFormedness:
    def test_mismatched_end_tag(self):
        with pytest.raises(XMLSyntaxError, match="does not match"):
            parse("<a><b></a></b>")

    def test_unclosed_element(self):
        with pytest.raises(XMLSyntaxError, match="unclosed"):
            parse("<a><b>")

    def test_stray_end_tag(self):
        with pytest.raises(XMLSyntaxError, match="unexpected end tag"):
            parse("<a/></b>")

    def test_two_roots(self):
        with pytest.raises(XMLSyntaxError, match="second root"):
            parse("<a/><b/>")

    def test_no_root(self):
        with pytest.raises(XMLSyntaxError, match="no root"):
            parse("   ")

    def test_text_outside_root(self):
        with pytest.raises(XMLSyntaxError, match="outside the root"):
            parse("<a/>junk")

    def test_whitespace_outside_root_ok(self):
        tree = parse("  <a/>  \n")
        assert tree.root.tag == "a"

    def test_comments_outside_root_ok(self):
        tree = parse("<!-- before --><a/><!-- after -->")
        assert tree.root.tag == "a"


class TestParseFile:
    def test_from_path(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b/></a>", encoding="utf-8")
        tree = parse_file(path)
        assert tree.root.children[0].tag == "b"

    def test_from_file_object(self):
        tree = parse_file(io.StringIO("<a>hi</a>"))
        assert tree.root.children[0].text == "hi"

    def test_keep_whitespace_forwarded(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a>\n<b/>\n</a>", encoding="utf-8")
        assert len(parse_file(path, keep_whitespace=True).root.children) == 3


class TestLargerDocuments:
    def test_prolog_and_depth(self):
        text = '<?xml version="1.0"?><!DOCTYPE r><r><x><y><z>deep</z></y></x></r>'
        tree = parse(text)
        assert tree.depth == 5

    def test_node_count(self):
        tree = parse("<a><b>t</b><b>t</b><b>t</b></a>")
        assert len(tree) == 7  # root + 3 b's + 3 texts
