"""Unit tests for the DBLP preprocessing (Section 6's data preparation)."""

import pytest

from repro.core import slca
from repro.xmltree.dblp import (
    PUBLICATION_TAGS,
    WEBSITE_ONLY_TAGS,
    flat_dblp_tree,
    group_by_venue_year,
    record_venue,
    record_year,
)
from repro.xmltree.parser import parse

FLAT = """
<dblp>
  <article key="journals/tods/x1">
    <author>alice</author>
    <title>keyword search</title>
    <journal>tods</journal>
    <year>2004</year>
    <url>db/journals/tods/x1</url>
    <ee>https://doi.example/x1</ee>
  </article>
  <inproceedings key="conf/sigmod/y1">
    <author>bob</author>
    <title>xml indexing</title>
    <booktitle>sigmod</booktitle>
    <year>2003</year>
    <cite>journals/tods/x1</cite>
  </inproceedings>
  <article key="journals/tods/x2">
    <author>alice</author>
    <title>more keyword search</title>
    <journal>tods</journal>
    <year>2003</year>
  </article>
  <www key="homepages/a">ignored website record</www>
</dblp>
"""


@pytest.fixture
def flat():
    return parse(FLAT)


@pytest.fixture
def grouped(flat):
    return group_by_venue_year(flat)


class TestRecordFields:
    def test_record_venue_journal(self, flat):
        assert record_venue(flat.root.children[0]) == "tods"

    def test_record_venue_booktitle(self, flat):
        assert record_venue(flat.root.children[1]) == "sigmod"

    def test_record_year(self, flat):
        assert record_year(flat.root.children[0]) == "2004"

    def test_missing_fields_get_placeholders(self):
        tree = parse("<dblp><article><title>bare</title></article></dblp>")
        record = tree.root.children[0]
        assert record_venue(record) == "unknown-venue"
        assert record_year(record) == "unknown-year"


class TestGrouping:
    def test_venue_groups(self, grouped):
        venues = [n.attrs["name"] for n in grouped.root.children]
        assert venues == ["tods", "sigmod"]  # first-seen order

    def test_years_sorted_within_venue(self, grouped):
        tods = grouped.root.children[0]
        years = [n.attrs["value"] for n in tods.children if n.tag == "year"]
        assert years == ["2003", "2004"]

    def test_records_attached_to_their_year(self, grouped):
        tods = grouped.root.children[0]
        year_2004 = next(n for n in tods.children if n.attrs and n.attrs.get("value") == "2004")
        records = [n for n in year_2004.children if n.tag in PUBLICATION_TAGS]
        assert len(records) == 1
        assert records[0].attrs["key"] == "journals/tods/x1"

    def test_website_fields_filtered(self, grouped):
        tags = {n.tag for n in grouped}
        assert not tags & WEBSITE_ONLY_TAGS

    def test_non_publication_records_dropped(self, grouped):
        assert all(n.tag != "www" for n in grouped)

    def test_input_not_modified(self, flat):
        before = [(n.dewey, n.tag) for n in flat]
        group_by_venue_year(flat)
        assert [(n.dewey, n.tag) for n in flat] == before

    def test_deweys_valid_document_order(self, grouped):
        deweys = [n.dewey for n in grouped]
        assert deweys == sorted(deweys)
        assert len(set(deweys)) == len(deweys)

    def test_grouping_improves_answer_specificity(self, flat, grouped):
        """The paper's motivation for grouping: on the flat file, keywords
        from different records only meet at the root; grouped, they meet at
        the venue/year level."""
        flat_lists = flat.keyword_lists()
        flat_answer = slca([flat_lists["keyword"], flat_lists["indexing"]])
        assert flat_answer == [(0,)]
        grouped_lists = grouped.keyword_lists()
        grouped_answer = slca([grouped_lists["keyword"], grouped_lists["indexing"]])
        assert grouped_answer == [(0,)]  # different venues: still the root
        # but within one venue, answers are now at the venue, not the root:
        same_venue = slca([grouped_lists["keyword"], grouped_lists["2003"]])
        assert all(answer != (0,) for answer in same_venue)


class TestFlatGenerator:
    def test_shape(self):
        tree = flat_dblp_tree(seed=3, records=20)
        records = [n for n in tree.root.children if n.tag in PUBLICATION_TAGS]
        assert len(records) == 20
        for record in records:
            child_tags = {c.tag for c in record.children}
            assert "title" in child_tags and "year" in child_tags
            assert "journal" in child_tags or "booktitle" in child_tags

    def test_website_fields_present_by_default(self):
        tree = flat_dblp_tree(seed=3, records=10)
        tags = {n.tag for n in tree}
        assert "url" in tags and "ee" in tags

    def test_without_website_fields(self):
        tree = flat_dblp_tree(seed=3, records=10, with_website_fields=False)
        tags = {n.tag for n in tree}
        assert not tags & WEBSITE_ONLY_TAGS

    def test_deterministic(self):
        a = flat_dblp_tree(seed=9, records=15)
        b = flat_dblp_tree(seed=9, records=15)
        assert [n.label for n in a] == [n.label for n in b]

    def test_roundtrip_through_grouping_and_search(self):
        flat = flat_dblp_tree(seed=12, records=60)
        grouped = group_by_venue_year(flat)
        # Every record key survives grouping exactly once.
        flat_keys = sorted(
            n.attrs["key"] for n in flat if n.attrs and "key" in n.attrs
        )
        grouped_keys = sorted(
            n.attrs["key"] for n in grouped if n.attrs and "key" in n.attrs
        )
        assert grouped_keys == flat_keys
        # And the grouped document is searchable end to end.
        from repro.xksearch import XKSearch

        system = XKSearch.from_tree(grouped)
        results = system.search("query sigmod")
        for result in results:
            assert result.dewey != (0,)
