"""Unit tests for the synthetic generators."""

import pytest

from repro.core import slca
from repro.xmltree.generate import (
    dblp_like_tree,
    plant_keywords,
    random_labeled_tree,
    school_tree,
    school_xml,
)
from repro.xmltree.parser import parse


class TestSchool:
    def test_school_xml_parses_to_school_tree(self):
        parsed = parse(school_xml())
        assert [n.dewey for n in parsed] == [n.dewey for n in school_tree()]

    def test_paper_query_has_three_answers(self):
        tree = school_tree()
        lists = tree.keyword_lists()
        answers = slca([lists["john"], lists["ben"]])
        assert answers == [(0, 0), (0, 1), (0, 2, 0)]

    def test_answer_subtrees_are_the_story(self):
        tree = school_tree()
        assert tree.node((0, 0)).tag == "Class"      # Ben TAs for John
        assert tree.node((0, 1)).tag == "Class"      # Ben studies under John
        assert tree.node((0, 2, 0)).tag == "Project"  # both are members


class TestRandomTree:
    def test_deterministic(self):
        a = random_labeled_tree(7, n_nodes=40)
        b = random_labeled_tree(7, n_nodes=40)
        assert [n.dewey for n in a] == [n.dewey for n in b]
        assert [n.label for n in a] == [n.label for n in b]

    def test_different_seeds_differ(self):
        a = random_labeled_tree(1, n_nodes=40)
        b = random_labeled_tree(2, n_nodes=40)
        assert [n.label for n in a] != [n.label for n in b]

    def test_size_close_to_requested(self):
        tree = random_labeled_tree(3, n_nodes=50)
        assert len(tree) == 50

    def test_fanout_respected(self):
        tree = random_labeled_tree(11, n_nodes=200, max_fanout=3)
        assert all(len(n.children) <= 3 for n in tree)

    def test_deweys_are_valid_document_order(self):
        tree = random_labeled_tree(5, n_nodes=80)
        deweys = [n.dewey for n in tree]
        assert deweys == sorted(deweys)
        assert len(set(deweys)) == len(deweys)


class TestDBLP:
    def test_shape(self):
        tree = dblp_like_tree(1, venues=2, years_per_venue=3, papers_per_year=4)
        venues = [n for n in tree if n.tag == "venue"]
        years = [n for n in tree if n.tag == "year"]
        papers = [n for n in tree if n.tag == "paper"]
        assert len(venues) == 2
        assert len(years) == 6
        assert len(papers) == 24

    def test_papers_have_titles_and_authors(self):
        tree = dblp_like_tree(2, venues=1, years_per_venue=1, papers_per_year=5)
        papers = [n for n in tree if n.tag == "paper"]
        for paper in papers:
            tags = [c.tag for c in paper.children]
            assert "title" in tags and "author" in tags and "pages" in tags

    def test_deterministic(self):
        a = dblp_like_tree(9, venues=2, years_per_venue=2, papers_per_year=3)
        b = dblp_like_tree(9, venues=2, years_per_venue=2, papers_per_year=3)
        assert [n.label for n in a] == [n.label for n in b]


class TestPlanting:
    def test_exact_frequencies(self):
        tree = dblp_like_tree(3, venues=2, years_per_venue=2, papers_per_year=10)
        plant_keywords(tree, {"xk7": 7, "xk3": 3}, seed=1)
        lists = tree.keyword_lists()
        assert len(lists["xk7"]) == 7
        assert len(lists["xk3"]) == 3

    def test_plant_structure_unchanged(self):
        tree = dblp_like_tree(3, venues=2, years_per_venue=2, papers_per_year=5)
        before = [n.dewey for n in tree]
        plant_keywords(tree, {"xk2": 2}, seed=1)
        assert [n.dewey for n in tree] == before

    def test_too_many_raises(self):
        tree = dblp_like_tree(3, venues=1, years_per_venue=1, papers_per_year=2)
        with pytest.raises(ValueError, match="hosts"):
            plant_keywords(tree, {"xk99": 99}, seed=0)

    def test_existing_keyword_rejected(self):
        tree = dblp_like_tree(3, venues=1, years_per_venue=1, papers_per_year=5)
        with pytest.raises(ValueError, match="already occurs"):
            plant_keywords(tree, {"title": 1}, seed=0)

    def test_host_tag_none_uses_all_text(self):
        tree = dblp_like_tree(3, venues=1, years_per_venue=1, papers_per_year=3)
        plant_keywords(tree, {"xk5": 5}, seed=2, host_tag=None)
        assert len(tree.keyword_lists()["xk5"]) == 5

    def test_deterministic_given_seed(self):
        t1 = dblp_like_tree(4, venues=2, years_per_venue=2, papers_per_year=5)
        t2 = dblp_like_tree(4, venues=2, years_per_venue=2, papers_per_year=5)
        plant_keywords(t1, {"xk4": 4}, seed=8)
        plant_keywords(t2, {"xk4": 4}, seed=8)
        assert t1.keyword_lists()["xk4"] == t2.keyword_lists()["xk4"]
