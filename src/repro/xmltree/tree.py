"""Labeled ordered tree model with Dewey numbering.

This is the paper's data model (Section 2): an XML document is a labeled
ordered tree; every node is assigned a Dewey number compatible with preorder.
Following Figure 1 of the paper, text values are modeled as *nodes of the
tree* in their own right (the leaves labeled ``John``, ``Ben``, ... in
School.xml each carry their own Dewey number), so a keyword list can contain
both element nodes (keyword matches the tag) and text nodes (keyword appears
in the character data).

The classes here are deliberately lightweight (``__slots__``) because the
experiment corpora reach hundreds of thousands of nodes.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.xmltree.dewey import DeweyTuple

#: Tag used for synthetic text nodes.
TEXT_TAG = "#text"

_WORD_RE = re.compile(r"[A-Za-z0-9_]+")


def extract_keywords(label: str) -> List[str]:
    """Split a node label into lowercase keyword tokens.

    The paper matches a keyword against the nodes "whose label directly
    contains" it; we tokenize labels into maximal alphanumeric words and
    compare case-insensitively, the behaviour of the XKSearch demo.
    """
    return [match.group(0).lower() for match in _WORD_RE.finditer(label)]


class Node:
    """One node of the labeled ordered tree.

    Element nodes carry a ``tag`` and optional ``attrs``; text nodes carry
    ``tag == TEXT_TAG`` and their character data in ``text``.  ``dewey`` is
    assigned by the tree builder and never changes afterwards.
    """

    __slots__ = ("tag", "text", "attrs", "children", "dewey", "parent")

    def __init__(
        self,
        tag: str,
        text: Optional[str] = None,
        attrs: Optional[Dict[str, str]] = None,
    ):
        self.tag = tag
        self.text = text
        self.attrs = attrs or None
        self.children: List["Node"] = []
        self.dewey: DeweyTuple = ()
        self.parent: Optional["Node"] = None

    @property
    def is_text(self) -> bool:
        """True for synthetic text nodes."""
        return self.tag == TEXT_TAG

    @property
    def label(self) -> str:
        """The label the paper's keyword match runs against.

        For element nodes this is the tag plus any attribute names/values;
        for text nodes it is the character data.
        """
        if self.is_text:
            return self.text or ""
        if not self.attrs:
            return self.tag
        attr_text = " ".join(f"{k} {v}" for k, v in self.attrs.items())
        return f"{self.tag} {attr_text}"

    def keywords(self) -> List[str]:
        """Lowercase keyword tokens of this node's label."""
        return extract_keywords(self.label)

    def add_child(self, child: "Node") -> "Node":
        """Append *child*, assigning its Dewey number from this node's."""
        child.parent = self
        child.dewey = self.dewey + (len(self.children),)
        self.children.append(child)
        return child

    def iter_subtree(self) -> Iterator["Node"]:
        """Document-order (preorder) traversal of this subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:
        dotted = ".".join(str(c) for c in self.dewey) or "?"
        if self.is_text:
            preview = (self.text or "")[:20]
            return f"Node(#text {preview!r} @{dotted})"
        return f"Node(<{self.tag}> @{dotted})"


def copy_subtree(node: Node) -> Node:
    """Deep-copy a subtree (structure, labels, attributes; Dewey numbers
    are copied as-is and can be rewritten with :func:`renumber_subtree`).

    Iterative, so arbitrarily deep documents do not hit the recursion
    limit; the copy's ``parent`` is ``None``.
    """
    clone = Node(node.tag, text=node.text, attrs=dict(node.attrs) if node.attrs else None)
    clone.dewey = node.dewey
    stack = [(node, clone)]
    while stack:
        original, duplicate = stack.pop()
        for child in original.children:
            child_clone = Node(
                child.tag,
                text=child.text,
                attrs=dict(child.attrs) if child.attrs else None,
            )
            child_clone.dewey = child.dewey
            child_clone.parent = duplicate
            duplicate.children.append(child_clone)
            stack.append((child, child_clone))
    return clone


def renumber_subtree(node: Node, dewey: DeweyTuple) -> None:
    """Re-root *node* at *dewey*, rewriting every descendant's Dewey number.

    Used when grafting a parsed document under a new parent (e.g. a
    multi-document collection root).  Iterative, so arbitrarily deep
    documents do not hit the recursion limit.
    """
    stack = [(node, dewey)]
    while stack:
        current, current_dewey = stack.pop()
        current.dewey = current_dewey
        for ordinal, child in enumerate(current.children):
            stack.append((child, current_dewey + (ordinal,)))


class XMLTree:
    """A complete document: the root node plus document-wide metadata.

    Provides node lookup by Dewey number, depth statistics needed by the
    level-table builder, and the keyword-list extraction the index builder
    consumes.
    """

    def __init__(self, root: Node):
        if root.dewey == ():
            root.dewey = (0,)
        self.root = root
        self._by_dewey: Optional[Dict[DeweyTuple, Node]] = None

    def __iter__(self) -> Iterator[Node]:
        return self.root.iter_subtree()

    def __len__(self) -> int:
        return sum(1 for _ in self)

    @property
    def depth(self) -> int:
        """Maximum depth (number of Dewey components) over all nodes."""
        return max(len(node.dewey) for node in self)

    def node(self, dewey: DeweyTuple) -> Node:
        """Node with the given Dewey number.

        The first call builds a hash index over the whole document; later
        calls are O(1).  Raises :class:`KeyError` for unknown ids.
        """
        if self._by_dewey is None:
            self._by_dewey = {node.dewey: node for node in self}
        return self._by_dewey[dewey]

    def has_node(self, dewey: DeweyTuple) -> bool:
        """True iff a node with this exact Dewey number exists."""
        if self._by_dewey is None:
            self._by_dewey = {node.dewey: node for node in self}
        return dewey in self._by_dewey

    def keyword_lists(self) -> Dict[str, List[DeweyTuple]]:
        """All keyword lists of the document.

        Returns a mapping from keyword to the sorted list of Dewey numbers of
        the nodes whose label directly contains the keyword — the paper's
        ``S_i`` lists.  Document-order traversal yields Dewey numbers in
        ascending order already, so no sort is needed; a node whose label
        contains the same word twice is listed once.
        """
        lists: Dict[str, List[DeweyTuple]] = {}
        for node in self:
            seen_here = set()
            for word in node.keywords():
                if word in seen_here:
                    continue
                seen_here.add(word)
                lists.setdefault(word, []).append(node.dewey)
        return lists

    def keyword_postings(self) -> Dict[str, List[Tuple[DeweyTuple, str]]]:
        """Keyword lists with the *context tag* of each occurrence.

        Like :meth:`keyword_lists`, but each posting carries the element tag
        the occurrence belongs to: an element node's own tag, or the parent
        element's tag for a text node.  This is what powers tag-qualified
        query atoms (``title:query`` matches ``query`` only inside
        ``<title>`` elements).
        """
        postings: Dict[str, List[Tuple[DeweyTuple, str]]] = {}
        for node in self:
            if node.is_text:
                context = node.parent.tag if node.parent is not None else TEXT_TAG
            else:
                context = node.tag
            context = context.lower()
            seen_here = set()
            for word in node.keywords():
                if word in seen_here:
                    continue
                seen_here.add(word)
                postings.setdefault(word, []).append((node.dewey, context))
        return postings

    def level_fanouts(self) -> List[int]:
        """Maximum child count per level, root = level 0.

        Entry ``i`` is the largest number of children of any node at depth
        ``i+1`` (i.e. with ``i+1`` Dewey components); this feeds the level
        table of Section 4.
        """
        fanouts: List[int] = []
        for node in self:
            level = len(node.dewey) - 1
            while len(fanouts) <= level:
                fanouts.append(0)
            if node.children:
                fanouts[level] = max(fanouts[level], len(node.children))
        return fanouts

    def subtree_text(self, dewey: DeweyTuple) -> str:
        """Concatenated character data of the subtree rooted at *dewey*."""
        parts = [
            node.text
            for node in self.node(dewey).iter_subtree()
            if node.is_text and node.text
        ]
        return " ".join(parts)
