"""Parser: token stream → :class:`~repro.xmltree.tree.XMLTree`.

Enforces well-formedness at the tree level (balanced tags, a single root
element, no character data outside the root) and applies the whitespace
policy: by default, text that is *only* whitespace between elements is
dropped, matching what an indexing system wants (pretty-printing indentation
must not become keyword-bearing text nodes).
"""

from __future__ import annotations

import io
import os
from typing import Union

from repro.errors import XMLSyntaxError
from repro.xmltree.tokenizer import TokenType, tokenize
from repro.xmltree.tree import Node, TEXT_TAG, XMLTree


def parse(text: str, keep_whitespace: bool = False) -> XMLTree:
    """Parse an XML document string into an :class:`XMLTree`.

    Adjacent text runs (split by comments or CDATA boundaries) are merged
    into a single text node.  Set ``keep_whitespace`` to retain
    whitespace-only text between elements.
    """
    root: Node = None
    stack: list = []
    pending_text: list = []

    def flush_text() -> None:
        if not pending_text:
            return
        merged = "".join(pending_text)
        pending_text.clear()
        if not keep_whitespace and not merged.strip():
            return
        if not stack:
            if merged.strip():
                raise XMLSyntaxError("character data outside the root element")
            return
        stack[-1].add_child(Node(TEXT_TAG, text=merged))

    for token in tokenize(text):
        if token.type is TokenType.TEXT:
            if not stack and not token.value.strip():
                continue
            pending_text.append(token.value)
            continue
        if token.type in (TokenType.COMMENT, TokenType.PI):
            continue  # do not flush: comments must not split a text run
        flush_text()
        if token.type in (TokenType.START_TAG, TokenType.EMPTY_TAG):
            node = Node(token.value, attrs=dict(token.attrs) or None)
            if stack:
                stack[-1].add_child(node)
            elif root is None:
                node.dewey = (0,)
                root = node
            else:
                raise XMLSyntaxError(
                    f"second root element <{token.value}>", token.line, token.column
                )
            if token.type is TokenType.START_TAG:
                stack.append(node)
            continue
        # END_TAG
        if not stack:
            raise XMLSyntaxError(
                f"unexpected end tag </{token.value}>", token.line, token.column
            )
        open_node = stack.pop()
        if open_node.tag != token.value:
            raise XMLSyntaxError(
                f"end tag </{token.value}> does not match <{open_node.tag}>",
                token.line,
                token.column,
            )
    flush_text()
    if stack:
        raise XMLSyntaxError(f"unclosed element <{stack[-1].tag}>")
    if root is None:
        raise XMLSyntaxError("document has no root element")
    return XMLTree(root)


def parse_file(
    source: Union[str, os.PathLike, io.TextIOBase],
    keep_whitespace: bool = False,
) -> XMLTree:
    """Parse an XML document from a path or an open text file."""
    if hasattr(source, "read"):
        return parse(source.read(), keep_whitespace=keep_whitespace)
    with open(source, "r", encoding="utf-8") as handle:
        return parse(handle.read(), keep_whitespace=keep_whitespace)
