"""The paper's DBLP preprocessing: filtering and venue/year grouping.

Section 6: "We filter out citation and other information only related to
the DBLP website and group first by journal/conference names, then by
years."  Real DBLP is a flat file — millions of ``<article>`` /
``<inproceedings>`` records directly under the root — which gives terrible
keyword-search answers (every SLCA collapses to the root or to one flat
record).  The grouping turns it into the deep document XKSearch queries:

    dblp → venue → year → publication records

This module implements that transformation for DBLP-shaped input
(:func:`group_by_venue_year`), the filter list
(:data:`WEBSITE_ONLY_TAGS`), and a generator of flat DBLP-style input for
tests and demos (:func:`flat_dblp_tree`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.xmltree.tree import Node, TEXT_TAG, XMLTree, copy_subtree, renumber_subtree

#: DBLP record elements that carry publications.
PUBLICATION_TAGS = frozenset(
    {
        "article",
        "inproceedings",
        "proceedings",
        "book",
        "incollection",
        "phdthesis",
        "mastersthesis",
    }
)

#: Child elements the paper filters out — citation links and fields that
#: only matter to the DBLP website itself.
WEBSITE_ONLY_TAGS = frozenset({"cite", "url", "ee", "crossref", "cdrom", "note"})

#: Fields that locate a record's venue, in priority order.
_VENUE_TAGS = ("journal", "booktitle")

_UNKNOWN_VENUE = "unknown-venue"
_UNKNOWN_YEAR = "unknown-year"


def _direct_text(record: Node, tag: str) -> Optional[str]:
    """Concatenated text of the first direct child element named *tag*."""
    for child in record.children:
        if child.tag == tag:
            parts = [n.text for n in child.iter_subtree() if n.is_text and n.text]
            if parts:
                return " ".join(parts).strip()
    return None


def record_venue(record: Node) -> str:
    """A record's venue: its journal or booktitle, else a placeholder."""
    for tag in _VENUE_TAGS:
        value = _direct_text(record, tag)
        if value:
            return value
    return _UNKNOWN_VENUE


def record_year(record: Node) -> str:
    """A record's year text, else a placeholder."""
    return _direct_text(record, "year") or _UNKNOWN_YEAR


def _filtered_record(record: Node) -> Node:
    """Copy of *record* without the website-only children."""
    clone = copy_subtree(record)
    clone.children = [
        child for child in clone.children if child.tag not in WEBSITE_ONLY_TAGS
    ]
    return clone


def group_by_venue_year(tree: XMLTree, root_tag: str = "dblp") -> XMLTree:
    """The paper's preprocessing: flat DBLP → venue/year-grouped document.

    Publication records found anywhere directly under the input root are
    regrouped as ``root → venue(name) → year(value) → record``; venue
    groups appear in first-seen order, years ascending within each venue,
    records in document order within each year.  Website-only children are
    dropped from the records; non-publication children of the input root
    are ignored.  The input tree is not modified.
    """
    # venue -> year -> records, preserving discovery/document order.
    groups: Dict[str, Dict[str, List[Node]]] = {}
    for child in tree.root.children:
        if child.tag not in PUBLICATION_TAGS:
            continue
        venue = record_venue(child)
        year = record_year(child)
        groups.setdefault(venue, {}).setdefault(year, []).append(
            _filtered_record(child)
        )

    root = Node(root_tag)
    root.dewey = (0,)
    for venue, years in groups.items():
        venue_node = root.add_child(Node("venue", attrs={"name": venue}))
        name_node = venue_node.add_child(Node("name"))
        name_node.add_child(Node(TEXT_TAG, text=venue))
        for year in sorted(years):
            year_node = venue_node.add_child(Node("year", attrs={"value": year}))
            year_node.add_child(Node(TEXT_TAG, text=year))
            for record in years[year]:
                year_node.children.append(record)
                record.parent = year_node
                renumber_subtree(
                    record, year_node.dewey + (len(year_node.children) - 1,)
                )
    return XMLTree(root)


_FLAT_VENUES = ("sigmod", "vldb", "icde", "tods", "edbt", "pods")
_FLAT_WORDS = (
    "query", "optimization", "index", "stream", "xml", "keyword",
    "search", "join", "view", "cache", "mining", "graph",
)
_FLAT_AUTHORS = (
    "alice zhang", "bob meyer", "carol ito", "dan fox", "eve lindgren",
    "frank osei", "grace kim", "henry adebayo",
)


def flat_dblp_tree(
    seed: int,
    records: int = 50,
    with_website_fields: bool = True,
) -> XMLTree:
    """A flat DBLP-style document: publication records under one root.

    Mimics the real file's shape — ``<article>`` and ``<inproceedings>``
    children carrying ``author``/``title``/``journal|booktitle``/``year``
    fields plus (optionally) the website-only fields the paper filters.
    """
    rng = random.Random(seed)
    root = Node("dblp")
    root.dewey = (0,)
    for i in range(records):
        is_article = rng.random() < 0.5
        record = root.add_child(
            Node(
                "article" if is_article else "inproceedings",
                attrs={"key": f"rec/{seed}/{i}", "mdate": "2004-05-17"},
            )
        )
        for _ in range(rng.randint(1, 3)):
            author = record.add_child(Node("author"))
            author.add_child(Node(TEXT_TAG, text=rng.choice(_FLAT_AUTHORS)))
        title = record.add_child(Node("title"))
        title.add_child(
            Node(TEXT_TAG, text=" ".join(rng.sample(_FLAT_WORDS, rng.randint(2, 4))))
        )
        venue_tag = "journal" if is_article else "booktitle"
        venue = record.add_child(Node(venue_tag))
        venue.add_child(Node(TEXT_TAG, text=rng.choice(_FLAT_VENUES)))
        year = record.add_child(Node("year"))
        year.add_child(Node(TEXT_TAG, text=str(rng.randint(1995, 2004))))
        if with_website_fields:
            ee = record.add_child(Node("ee"))
            ee.add_child(Node(TEXT_TAG, text=f"db/rec/{i}.html"))
            url = record.add_child(Node("url"))
            url.add_child(Node(TEXT_TAG, text=f"https://dblp.example/rec/{i}"))
            if rng.random() < 0.4:
                cite = record.add_child(Node("cite"))
                cite.add_child(Node(TEXT_TAG, text=f"rec/{seed}/{rng.randrange(records)}"))
    return XMLTree(root)
