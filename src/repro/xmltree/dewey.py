"""Dewey-number algebra.

XKSearch identifies every node of the XML tree by its *Dewey number*: the
root is ``(0,)`` and the j-th child (0-based) of the node with Dewey number
``d`` is ``d + (j,)``.  Dewey numbers have two properties that the paper's
algorithms rely on:

* Lexicographic comparison of Dewey numbers is exactly document order
  (preorder): an ancestor's Dewey number is a strict prefix of each of its
  descendants' and therefore sorts first, and siblings sort by ordinal.
  Python tuple comparison implements this directly, so throughout the hot
  paths of the library a Dewey number *is* a ``tuple`` of non-negative ints.
* The lowest common ancestor of two nodes is the node whose Dewey number is
  the longest common prefix of theirs, computable in ``O(d)`` where ``d`` is
  the tree depth (the paper's ``lca`` cost).

This module collects the pure functions on raw tuples used by the
algorithms, plus a small :class:`Dewey` convenience wrapper for the public
API (parsing/formatting ``"0.1.2"`` strings).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.errors import DeweyError

#: Type alias used across the library for raw Dewey numbers.
DeweyTuple = Tuple[int, ...]

ROOT: DeweyTuple = (0,)


def validate(dewey: DeweyTuple) -> DeweyTuple:
    """Return *dewey* unchanged if it is a well-formed Dewey number.

    Raises :class:`DeweyError` for empty tuples or negative components.
    """
    if not isinstance(dewey, tuple) or not dewey:
        raise DeweyError(f"Dewey number must be a non-empty tuple, got {dewey!r}")
    for component in dewey:
        if not isinstance(component, int) or component < 0:
            raise DeweyError(f"Dewey components must be non-negative ints, got {dewey!r}")
    return dewey


def lca(a: DeweyTuple, b: DeweyTuple) -> DeweyTuple:
    """Lowest common ancestor of two nodes: the longest common prefix.

    Both arguments must belong to the same tree (share the root component);
    for nodes of one document this always holds because every Dewey number
    starts with the root's ``0``.
    """
    i = common_prefix_len(a, b)
    if i == 0:
        raise DeweyError(f"nodes {a!r} and {b!r} share no common ancestor")
    return a[:i]


def lca_many(deweys: Iterable[DeweyTuple]) -> DeweyTuple:
    """LCA of one or more nodes (fold of :func:`lca`)."""
    it = iter(deweys)
    try:
        acc = next(it)
    except StopIteration:
        raise DeweyError("lca_many() requires at least one node") from None
    for d in it:
        acc = lca(acc, d)
    return acc


def is_ancestor(a: DeweyTuple, b: DeweyTuple) -> bool:
    """True iff *a* is a proper ancestor of *b* (a strict prefix)."""
    return len(a) < len(b) and b[: len(a)] == a


def is_ancestor_or_self(a: DeweyTuple, b: DeweyTuple) -> bool:
    """True iff *a* equals *b* or is an ancestor of *b* (a prefix)."""
    return len(a) <= len(b) and b[: len(a)] == a


def deeper(a: Optional[DeweyTuple], b: Optional[DeweyTuple]) -> Optional[DeweyTuple]:
    """The deeper of two nodes; ``None`` arguments are ignored.

    This is the paper's ``deeper`` function used by Property 1: when one of
    the two candidate LCAs is an ancestor of the other, the descendant (the
    deeper node, i.e. the longer Dewey number) is the smaller subtree.  When
    both arguments are ``None`` the result is ``None``.
    """
    if a is None:
        return b
    if b is None:
        return a
    return a if len(a) >= len(b) else b


def parent(dewey: DeweyTuple) -> Optional[DeweyTuple]:
    """Dewey number of the parent, or ``None`` for the root."""
    if len(dewey) <= 1:
        return None
    return dewey[:-1]


def ancestors(dewey: DeweyTuple, stop: Optional[DeweyTuple] = None):
    """Yield proper ancestors of *dewey* from the parent upwards.

    When *stop* is given, iteration halts *before* yielding *stop* (the
    exclusive upper bound used by Algorithm 3's path walk); *stop* must be an
    ancestor-or-self of *dewey*.  Without *stop*, iteration runs to the root
    inclusive.
    """
    if stop is not None and not is_ancestor_or_self(stop, dewey):
        raise DeweyError(f"stop node {stop!r} is not an ancestor of {dewey!r}")
    limit = len(stop) if stop is not None else 0
    for depth in range(len(dewey) - 1, limit, -1):
        yield dewey[:depth]


def child_toward(ancestor: DeweyTuple, descendant: DeweyTuple) -> DeweyTuple:
    """The child of *ancestor* on the path to *descendant*.

    Used by ``checkLCA``: the subtree of this child is what separates the
    "left part" from the "right part" of *ancestor*'s subtree.
    """
    if not is_ancestor(ancestor, descendant):
        raise DeweyError(f"{ancestor!r} is not a proper ancestor of {descendant!r}")
    return descendant[: len(ancestor) + 1]


def uncle(ancestor: DeweyTuple, descendant: DeweyTuple) -> DeweyTuple:
    """The paper's *uncle node* of *descendant* under *ancestor*.

    If ``c`` is the child of *ancestor* on the path to *descendant* and its
    Dewey number is ``p.o``, the uncle is ``p.(o+1)`` — the Dewey number of
    ``c``'s immediate next sibling.  The uncle need not exist as an actual
    node; it is used only as a probe value: every node with id >= uncle that
    is still under *ancestor* lies strictly to the right of ``c``'s subtree.
    """
    c = child_toward(ancestor, descendant)
    return c[:-1] + (c[-1] + 1,)


def depth(dewey: DeweyTuple) -> int:
    """Depth of the node; the root has depth 1 (one component)."""
    return len(dewey)


def common_prefix_len(a: DeweyTuple, b: DeweyTuple) -> int:
    """Number of leading components *a* and *b* share.

    This is the innermost loop of every algorithm (each ``lca`` costs one
    call; IL performs ``O(k·|S1|)`` of them — see ``OpCounters.lca_ops``),
    so it is worth a fast path: when the shorter number is a full prefix of
    the longer — every ancestor/descendant pair, the common case for SLCA
    candidates — one C-level slice comparison replaces the per-component
    Python loop.  Mismatching pairs pay one extra tuple compare and then
    walk only the prefix, stopping at the first difference (no bound check
    needed: the fast path guarantees a mismatch exists before ``n``).
    """
    n = len(a) if len(a) <= len(b) else len(b)
    if a[:n] == b[:n]:
        return n
    i = 0
    while a[i] == b[i]:
        i += 1
    return i


class Dewey:
    """Immutable public-API wrapper around a raw Dewey tuple.

    Supports parsing and formatting the conventional dotted notation used
    throughout the paper (``"0.1.2"``), total ordering (document order) and
    the ancestor tests.  Internally the library always works on raw tuples;
    this class exists so that users never need to manipulate tuples by hand.
    """

    __slots__ = ("_t",)

    def __init__(self, components: Iterable[int]):
        self._t = validate(tuple(components))

    @classmethod
    def parse(cls, text: str) -> "Dewey":
        """Parse dotted notation: ``Dewey.parse("0.1.2")``."""
        try:
            return cls(int(part) for part in text.split("."))
        except ValueError as exc:
            raise DeweyError(f"cannot parse Dewey number from {text!r}") from exc

    @property
    def tuple(self) -> DeweyTuple:
        """The underlying raw tuple."""
        return self._t

    def lca(self, other: "Dewey") -> "Dewey":
        return Dewey(lca(self._t, other._t))

    def is_ancestor_of(self, other: "Dewey") -> bool:
        return is_ancestor(self._t, other._t)

    def is_ancestor_or_self_of(self, other: "Dewey") -> bool:
        return is_ancestor_or_self(self._t, other._t)

    @property
    def parent(self) -> Optional["Dewey"]:
        p = parent(self._t)
        return None if p is None else Dewey(p)

    @property
    def depth(self) -> int:
        return len(self._t)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Dewey) and self._t == other._t

    def __lt__(self, other: "Dewey") -> bool:
        return self._t < other._t

    def __le__(self, other: "Dewey") -> bool:
        return self._t <= other._t

    def __gt__(self, other: "Dewey") -> bool:
        return self._t > other._t

    def __ge__(self, other: "Dewey") -> bool:
        return self._t >= other._t

    def __hash__(self) -> int:
        return hash(self._t)

    def __len__(self) -> int:
        return len(self._t)

    def __str__(self) -> str:
        return ".".join(str(c) for c in self._t)

    def __repr__(self) -> str:
        return f"Dewey({str(self)!r})"
