"""Serialization of trees (and subtrees) back to XML text.

The query engine returns SLCA nodes; rendering the subtree rooted at an
SLCA as XML is how XKSearch presents an answer (the demo translated results
to HTML via XSLT — here we emit plain XML snippets).
"""

from __future__ import annotations

from typing import List

from repro.xmltree.tree import Node

_ESCAPES_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ESCAPES_ATTR = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    for char, entity in _ESCAPES_TEXT.items():
        value = value.replace(char, entity)
    return value


def escape_attr(value: str) -> str:
    """Escape an attribute value (double-quoted context)."""
    for char, entity in _ESCAPES_ATTR.items():
        value = value.replace(char, entity)
    return value


def serialize(node: Node, indent: int = 0, indent_step: int = 2) -> str:
    """Render the subtree rooted at *node* as XML text.

    With ``indent_step > 0`` the output is pretty-printed, but any element
    with *mixed content* (a text child anywhere among its children) is
    emitted compactly: injecting indentation between text siblings would
    change the character data on reparse.  Pass ``indent_step=0`` for fully
    compact output.  The result round-trips: ``parse(serialize(t))``
    rebuilds the same tree (modulo the parser's merging of adjacent text
    runs), and re-serializing is a fixed point.
    """
    parts: List[str] = []
    _serialize_into(node, parts, indent, indent_step)
    return "".join(parts)


def _serialize_into(node: Node, parts: List[str], indent: int, step: int) -> None:
    pad = " " * indent if step else ""
    newline = "\n" if step else ""
    if node.is_text:
        parts.append(f"{pad}{escape_text(node.text or '')}{newline}")
        return
    attrs = ""
    if node.attrs:
        attrs = "".join(f' {k}="{escape_attr(v)}"' for k, v in node.attrs.items())
    if not node.children:
        parts.append(f"{pad}<{node.tag}{attrs}/>{newline}")
        return
    mixed = any(child.is_text for child in node.children)
    if mixed:
        # Compact body: whitespace here would become character data.
        parts.append(f"{pad}<{node.tag}{attrs}>")
        for child in node.children:
            _serialize_into(child, parts, 0, 0)
        parts.append(f"</{node.tag}>{newline}")
        return
    parts.append(f"{pad}<{node.tag}{attrs}>{newline}")
    for child in node.children:
        _serialize_into(child, parts, indent + step, step)
    parts.append(f"{pad}</{node.tag}>{newline}")
