"""XML substrate: parser, labeled ordered tree model, Dewey numbering.

This subpackage replaces the Xerces parser the paper's Java implementation
used.  Everything downstream (indexing, the SLCA algorithms) consumes only
the :class:`XMLTree`/:class:`Node` model and raw Dewey tuples.
"""

from repro.xmltree.codec import DeweyCodec, PackedDeweyCodec, VarintDeweyCodec
from repro.xmltree.dblp import flat_dblp_tree, group_by_venue_year
from repro.xmltree.dewey import Dewey, DeweyTuple
from repro.xmltree.level_table import LevelTable
from repro.xmltree.parser import parse, parse_file
from repro.xmltree.paths import PathSyntaxError, select, select_deweys
from repro.xmltree.serialize import serialize
from repro.xmltree.tree import Node, TEXT_TAG, XMLTree

__all__ = [
    "Dewey",
    "DeweyTuple",
    "DeweyCodec",
    "LevelTable",
    "Node",
    "PackedDeweyCodec",
    "TEXT_TAG",
    "VarintDeweyCodec",
    "XMLTree",
    "flat_dblp_tree",
    "group_by_venue_year",
    "PathSyntaxError",
    "parse",
    "parse_file",
    "select",
    "select_deweys",
    "serialize",
]
