"""Order-preserving Dewey-number codecs.

The disk index stores Dewey numbers as byte strings whose bytewise order
must equal document order, and in which an ancestor's encoding must never
collide with a descendant's.  Two codecs are provided:

* :class:`PackedDeweyCodec` — the paper's scheme: fixed bit width per level
  from the :class:`~repro.xmltree.level_table.LevelTable`, components packed
  big-endian and the tail padded with zero bits to a byte boundary.  Each
  component is stored as ``ordinal + 1`` so a stored component is never the
  all-zero pattern; that makes the zero padding unambiguous, which gives both
  injectivity (parent vs. first child) and self-delimiting decode.
* :class:`VarintDeweyCodec` — a level-table-free alternative used for the
  codec ablation: each component is an order-preserving, prefix-free varint
  (single byte below 240, else a length-tagged big-endian integer).

Both satisfy, for all Dewey numbers ``a``, ``b``:
``encode(a) < encode(b)  iff  a < b`` (document order), and
``encode(a)`` is a prefix of ``encode(b)`` only if ``a`` is an
ancestor-or-self of ``b``.
"""

from __future__ import annotations

from typing import List

from repro.errors import DeweyError
from repro.xmltree.dewey import DeweyTuple
from repro.xmltree.level_table import LevelTable


class DeweyCodec:
    """Interface shared by the codecs."""

    name = "abstract"

    def encode(self, dewey: DeweyTuple) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> DeweyTuple:
        raise NotImplementedError


class PackedDeweyCodec(DeweyCodec):
    """Level-table bit packing (paper Section 4)."""

    name = "packed"

    def __init__(self, table: LevelTable):
        self.table = table

    def encode(self, dewey: DeweyTuple) -> bytes:
        if not dewey or dewey[0] != 0:
            raise DeweyError(f"Dewey number must start with the root 0: {dewey!r}")
        self.table.check_fits(dewey)
        widths = self.table.widths
        acc = 0
        nbits = 0
        for level, component in enumerate(dewey[1:]):
            w = widths[level]
            acc = (acc << w) | (component + 1)
            nbits += w
        pad = (-nbits) % 8
        acc <<= pad
        nbits += pad
        return acc.to_bytes(nbits // 8, "big")

    def decode(self, data: bytes) -> DeweyTuple:
        widths = self.table.widths
        total_bits = len(data) * 8
        acc = int.from_bytes(data, "big")
        components: List[int] = [0]
        consumed = 0
        for w in widths:
            if total_bits - consumed < w:
                break
            shift = total_bits - consumed - w
            value = (acc >> shift) & ((1 << w) - 1)
            if value == 0:
                break  # zero padding: no further components
            components.append(value - 1)
            consumed += w
        # Whatever remains must be zero padding shorter than a byte would
        # have allowed; a nonzero remainder means corruption.
        if consumed < total_bits:
            remainder = acc & ((1 << (total_bits - consumed)) - 1)
            if remainder != 0:
                raise DeweyError(f"corrupt packed Dewey encoding: {data.hex()}")
        return tuple(components)


_VARINT_SINGLE_MAX = 239
_VARINT_MARKER_BASE = 240


class VarintDeweyCodec(DeweyCodec):
    """Order-preserving prefix-free varints, one per component.

    Components below 240 take a single byte; larger components take
    ``1 + blen`` bytes where the first byte ``240 + (blen - 1)`` encodes the
    big-endian byte length.  Ordering holds because every multi-byte marker
    exceeds every single-byte value and markers grow with magnitude.
    """

    name = "varint"

    def encode(self, dewey: DeweyTuple) -> bytes:
        if not dewey or dewey[0] != 0:
            raise DeweyError(f"Dewey number must start with the root 0: {dewey!r}")
        out = bytearray()
        for component in dewey[1:]:
            if component < 0:
                raise DeweyError(f"negative Dewey component in {dewey!r}")
            if component <= _VARINT_SINGLE_MAX:
                out.append(component)
            else:
                blen = (component.bit_length() + 7) // 8
                out.append(_VARINT_MARKER_BASE + blen - 1)
                out.extend(component.to_bytes(blen, "big"))
        return bytes(out)

    def decode(self, data: bytes) -> DeweyTuple:
        components: List[int] = [0]
        i = 0
        n = len(data)
        while i < n:
            first = data[i]
            i += 1
            if first <= _VARINT_SINGLE_MAX:
                components.append(first)
                continue
            blen = first - _VARINT_MARKER_BASE + 1
            if i + blen > n:
                raise DeweyError(f"truncated varint Dewey encoding: {data.hex()}")
            components.append(int.from_bytes(data[i:i + blen], "big"))
            i += blen
        return tuple(components)
