"""A small XPath-like evaluator over the labeled tree.

The paper motivates SLCA keyword search as the user-friendly alternative
to writing structural queries (its Figure 2 shows the XQuery equivalent of
one keyword search).  This module provides the structural side of that
comparison: enough of XPath to express the verification queries —

* ``/a/b`` — child steps from the root;
* ``//b`` — descendant-or-self steps anywhere below the context;
* ``*`` — any element; ``text()`` — text nodes;
* ``[rel/path]`` — existence predicate (a relative path matches);
* ``[rel/path="value"]`` — string-value equality predicate;
* ``[n]`` — 1-based position among the step's matches per parent.

``select(tree, expr)`` returns matching nodes in document order.  This is
deliberately a subset: no axes syntax, no functions beyond ``text()``, no
arithmetic — the pieces the examples and tests actually need, implemented
straightforwardly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ReproError
from repro.xmltree.tree import Node, XMLTree


class PathSyntaxError(ReproError):
    """The path expression is not part of the supported subset."""


@dataclass
class _Predicate:
    path: Optional["_Path"] = None   # relative path to test
    value: Optional[str] = None      # compare string value when set
    position: Optional[int] = None   # 1-based positional predicate


@dataclass
class _Step:
    test: str                        # tag name, "*", or "text()"
    descendant: bool                 # came after "//"
    predicates: List[_Predicate] = field(default_factory=list)


@dataclass
class _Path:
    absolute: bool
    steps: List[_Step]


_TOKEN_RE = re.compile(
    r"""
    (?P<sep>//|/)
  | (?P<name>[A-Za-z_][\w.\-]*(\(\))?|\*)
  | (?P<lbrack>\[)
  | (?P<rbrack>\])
  | (?P<eq>=)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<number>\d+)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(expr: str):
    pos = 0
    while pos < len(expr):
        match = _TOKEN_RE.match(expr, pos)
        if match is None:
            raise PathSyntaxError(f"unexpected character at {pos}: {expr[pos:pos+8]!r}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        yield kind, match.group(0)
    yield "end", ""


class _Parser:
    def __init__(self, expr: str):
        self._tokens = list(_tokenize(expr))
        self._i = 0
        self._expr = expr

    def _peek(self):
        return self._tokens[self._i]

    def _next(self):
        token = self._tokens[self._i]
        self._i += 1
        return token

    def parse(self) -> _Path:
        path = self._parse_path()
        kind, text = self._peek()
        if kind != "end":
            raise PathSyntaxError(f"trailing input {text!r} in {self._expr!r}")
        return path

    def _parse_path(self) -> _Path:
        absolute = False
        steps: List[_Step] = []
        kind, text = self._peek()
        descendant = False
        if kind == "sep":
            absolute = True
            descendant = text == "//"
            self._next()
        while True:
            kind, text = self._peek()
            if kind != "name":
                if not steps:
                    raise PathSyntaxError(f"expected a step in {self._expr!r}")
                break
            self._next()
            step = _Step(test=text, descendant=descendant)
            while self._peek()[0] == "lbrack":
                self._next()
                step.predicates.append(self._parse_predicate())
                if self._next()[0] != "rbrack":
                    raise PathSyntaxError(f"missing ']' in {self._expr!r}")
            steps.append(step)
            kind, text = self._peek()
            if kind != "sep":
                break
            descendant = text == "//"
            self._next()
        return _Path(absolute=absolute, steps=steps)

    def _parse_predicate(self) -> _Predicate:
        kind, text = self._peek()
        if kind == "number":
            self._next()
            return _Predicate(position=int(text))
        path = self._parse_path()
        if self._peek()[0] == "eq":
            self._next()
            kind, text = self._next()
            if kind != "string":
                raise PathSyntaxError(f"expected a quoted string in {self._expr!r}")
            return _Predicate(path=path, value=text[1:-1])
        return _Predicate(path=path)


def parse_path(expr: str) -> _Path:
    """Parse a path expression (raises :class:`PathSyntaxError`)."""
    return _Parser(expr).parse()


def _string_value(node: Node) -> str:
    if node.is_text:
        return node.text or ""
    parts = [n.text or "" for n in node.iter_subtree() if n.is_text]
    return "".join(parts)


def _test_matches(step: _Step, node: Node) -> bool:
    if step.test == "*":
        return not node.is_text
    if step.test == "text()":
        return node.is_text
    return not node.is_text and node.tag == step.test


def _candidates(context: Node, step: _Step):
    if step.descendant:
        for node in context.iter_subtree():
            if node is not context and _test_matches(step, node):
                yield node
    else:
        for child in context.children:
            if _test_matches(step, child):
                yield child


def _evaluate_steps(contexts: Sequence[Node], steps: Sequence[_Step]) -> List[Node]:
    current = list(contexts)
    for step in steps:
        matched: List[Node] = []
        seen = set()
        for context in current:
            per_context = [
                node for node in _candidates(context, step)
            ]
            per_context = _apply_predicates(per_context, step.predicates)
            for node in per_context:
                if id(node) not in seen:
                    seen.add(id(node))
                    matched.append(node)
        current = matched
        if not current:
            break
    current.sort(key=lambda n: n.dewey)
    return current


def _apply_predicates(nodes: List[Node], predicates: Sequence[_Predicate]) -> List[Node]:
    for predicate in predicates:
        if predicate.position is not None:
            index = predicate.position - 1
            nodes = [nodes[index]] if 0 <= index < len(nodes) else []
            continue
        kept = []
        for node in nodes:
            results = _evaluate_steps([node], predicate.path.steps)
            if predicate.value is not None:
                if any(_string_value(r) == predicate.value for r in results):
                    kept.append(node)
            elif results:
                kept.append(node)
        nodes = kept
    return nodes


def select(tree: XMLTree, expr: str) -> List[Node]:
    """Nodes matching the path expression, in document order.

    Absolute paths start at the document (so ``/School`` matches the root
    element itself); relative paths start at the root element's children.
    """
    path = parse_path(expr)
    if not path.steps:
        return []
    if path.absolute:
        first = path.steps[0]
        if first.descendant:
            roots = [
                node
                for node in tree.root.iter_subtree()
                if _test_matches(first, node)
            ]
        else:
            roots = [tree.root] if _test_matches(first, tree.root) else []
        roots = _apply_predicates(roots, first.predicates)
        return _evaluate_steps(roots, path.steps[1:])
    return _evaluate_steps([tree.root], path.steps)


def select_deweys(tree: XMLTree, expr: str) -> List[tuple]:
    """Dewey numbers of :func:`select` matches."""
    return [node.dewey for node in select(tree, expr)]
