"""Synthetic document generators.

Three families of data feed the test suite, the examples and the
experiments:

* :func:`school_tree` — a faithful reconstruction of the paper's Figure 1
  ``School.xml`` running example (classes, a sports club and projects whose
  members are ``John`` and ``Ben``), used in the quickstart and the
  worked-example tests.
* :func:`random_labeled_tree` — random trees over a small label vocabulary,
  the workhorse of the property-based tests (every algorithm must agree with
  the brute-force oracle on thousands of these).
* :func:`dblp_like_tree` — a scaled-down model of the grouped 83 MB DBLP
  document of the paper's experiments: venues, then years, then papers.
  :func:`plant_keywords` inserts synthetic query keywords at *exact* target
  frequencies, which is what Figures 8-13 sweep.

Generators build :class:`~repro.xmltree.tree.Node` trees directly (no text
round-trip) so that large corpora are cheap; ``serialize`` can render any of
them to XML text when a file on disk is wanted.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.xmltree.tree import Node, TEXT_TAG, XMLTree

_SCHOOL_XML = """\
<School>
  <Class>
    <Title>CS2A</Title>
    <Instructor>John</Instructor>
    <TA>Ben</TA>
  </Class>
  <Class>
    <Title>CS3A</Title>
    <Instructor>John</Instructor>
    <Student>Ben</Student>
  </Class>
  <Projects>
    <Project>
      <Title>Search</Title>
      <Member>John</Member>
      <Member>Ben</Member>
    </Project>
    <Project>
      <Title>Databases</Title>
      <Member>Sue</Member>
    </Project>
  </Projects>
</School>
"""


def school_xml() -> str:
    """The Figure 1 ``School.xml`` document as XML text."""
    return _SCHOOL_XML


def school_tree() -> XMLTree:
    """The Figure 1 running example, parsed.

    The keyword query ``john, ben`` has exactly three SLCAs here: the CS2A
    class (Ben is John's TA), the CS3A class (Ben is a student of John's)
    and the Search project (both are members) — the paper's three answers.
    """
    from repro.xmltree.parser import parse

    return parse(_SCHOOL_XML)


_DEFAULT_VOCABULARY = (
    "alpha", "beta", "gamma", "delta", "epsilon",
    "zeta", "eta", "theta", "iota", "kappa",
)


def random_labeled_tree(
    seed: int,
    n_nodes: int = 30,
    max_fanout: int = 4,
    vocabulary: Sequence[str] = _DEFAULT_VOCABULARY,
    text_probability: float = 0.5,
) -> XMLTree:
    """A random labeled tree for property-based testing.

    Grows a tree node by node: each new node attaches to a uniformly random
    existing element and is either an element (tag drawn from *vocabulary*)
    or a text node (one or two vocabulary words).  Determinism comes from
    *seed* alone.
    """
    rng = random.Random(seed)
    root = Node("root")
    root.dewey = (0,)
    attachable: List[Node] = [root]
    for _ in range(max(0, n_nodes - 1)):
        parent = rng.choice(attachable)
        if rng.random() < text_probability:
            words = rng.sample(vocabulary, k=rng.randint(1, 2))
            parent.add_child(Node(TEXT_TAG, text=" ".join(words)))
        else:
            child = parent.add_child(Node(rng.choice(vocabulary)))
            if len(child.children) < max_fanout:
                attachable.append(child)
        attachable = [n for n in attachable if len(n.children) < max_fanout]
        if not attachable:
            attachable = [root]
    return XMLTree(root)


_VENUE_STEMS = (
    "sigmod", "vldb", "icde", "edbt", "pods", "cidr", "tods", "tkde",
    "www", "sigir", "kdd", "icdt",
)

_TITLE_WORDS = (
    "query", "index", "stream", "join", "cache", "graph", "schema",
    "transaction", "storage", "parallel", "adaptive", "semantic",
    "keyword", "ranking", "views", "mining",
)

_AUTHOR_NAMES = (
    "smith", "chen", "garcia", "mueller", "tanaka", "kumar", "rossi",
    "novak", "silva", "dubois", "kim", "olsen",
)


def dblp_like_tree(
    seed: int,
    venues: int = 4,
    years_per_venue: int = 3,
    papers_per_year: int = 5,
) -> XMLTree:
    """A DBLP-shaped corpus: dblp → venue → year → papers.

    Mirrors the grouping the paper applied to DBLP ("group first by
    journal/conference names, then by years").  Each paper has a title, one
    to three authors and a year, every value being a text node so it is
    keyword-searchable.
    """
    rng = random.Random(seed)
    root = Node("dblp")
    root.dewey = (0,)
    for v in range(venues):
        venue = root.add_child(Node("venue", attrs={"name": _VENUE_STEMS[v % len(_VENUE_STEMS)]}))
        venue.add_child(Node("name")).add_child(
            Node(TEXT_TAG, text=_VENUE_STEMS[v % len(_VENUE_STEMS)])
        )
        for y in range(years_per_venue):
            year_node = venue.add_child(Node("year"))
            year_node.add_child(Node(TEXT_TAG, text=str(1995 + y)))
            for _ in range(papers_per_year):
                _add_paper(rng, year_node)
    return XMLTree(root)


def _add_paper(rng: random.Random, parent: Node) -> Node:
    paper = parent.add_child(Node("paper"))
    title = " ".join(rng.sample(_TITLE_WORDS, k=rng.randint(2, 4)))
    paper.add_child(Node("title")).add_child(Node(TEXT_TAG, text=title))
    for _ in range(rng.randint(1, 3)):
        author = rng.choice(_AUTHOR_NAMES)
        paper.add_child(Node("author")).add_child(Node(TEXT_TAG, text=author))
    pages = f"{rng.randint(1, 400)}-{rng.randint(401, 800)}"
    paper.add_child(Node("pages")).add_child(Node(TEXT_TAG, text=pages))
    return paper


def plant_keywords(
    tree: XMLTree,
    frequencies: Dict[str, int],
    seed: int = 0,
    host_tag: Optional[str] = "title",
) -> None:
    """Insert synthetic keywords at exact frequencies into *tree*.

    For each ``keyword -> frequency`` pair, *frequency* distinct host text
    nodes are chosen uniformly at random and the keyword is appended to
    their text, so the keyword's list length equals *frequency* exactly
    (one occurrence per node).  Hosts are text nodes under elements tagged
    *host_tag* (or any text node when ``host_tag`` is None).

    Raises :class:`ValueError` when the document has fewer hosts than the
    largest requested frequency, or when a planted keyword already occurs
    in the document.
    """
    rng = random.Random(seed)
    hosts = [
        node
        for node in tree
        if node.is_text
        and (host_tag is None or (node.parent is not None and node.parent.tag == host_tag))
    ]
    existing = tree.keyword_lists()
    for keyword, frequency in frequencies.items():
        if keyword.lower() in existing:
            raise ValueError(f"planted keyword {keyword!r} already occurs in the document")
        if frequency > len(hosts):
            raise ValueError(
                f"cannot plant {keyword!r} {frequency} times: only {len(hosts)} hosts"
            )
        for host in rng.sample(hosts, frequency):
            host.text = f"{host.text} {keyword}"
    # Invalidate the tree's Dewey index cache conservatively: planting only
    # edits text in place and never changes structure, so Dewey numbers are
    # unchanged and no action is required.
