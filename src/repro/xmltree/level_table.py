"""Level table for Dewey-number compression (paper Section 4).

XKSearch compresses Dewey numbers with a *level table*: entry ``i`` is the
number of bits needed to store the ``i+1``-th Dewey component, derived from
the maximum fanout among all nodes at level ``i`` (the root is level 0).
Because the widths are fixed per level, the bit-packed encodings of any two
Dewey numbers are component-aligned, which makes bytewise comparison of the
encodings equal to document order — exactly what the disk B+tree needs.

One deviation from the paper's ``ceil(log2(c_i))``: we size each level for
``c_i + 1`` encoded values.  The algorithms probe the index with *synthetic*
Dewey numbers (the ``uncle`` probe of Algorithm 3 is the Dewey number of a
child ordinal one past the last real child), so each width must accommodate
one ordinal beyond the observed maximum.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.errors import DeweyError
from repro.xmltree.dewey import DeweyTuple
from repro.xmltree.tree import XMLTree


class LevelTable:
    """Per-level bit widths for Dewey components.

    ``widths[i]`` is the bit width used for Dewey component ``i+1`` (the
    ordinal of a child of a level-``i`` node).  The root component is always
    0 and is never stored.
    """

    def __init__(self, fanouts: Sequence[int]):
        if not fanouts:
            raise DeweyError("level table requires at least one level")
        self.fanouts: List[int] = [max(1, int(f)) for f in fanouts]
        # Encoded value for ordinal c is c + 1 (so that 0 is free to mark
        # padding); the largest value that must fit is (fanout - 1) + 1 + 1:
        # the uncle probe one past the last child, plus the +1 shift.
        self.widths: List[int] = [(f + 1).bit_length() for f in self.fanouts]

    @classmethod
    def from_tree(cls, tree: XMLTree) -> "LevelTable":
        """Build the table from a parsed document."""
        fanouts = tree.level_fanouts()
        # Drop the deepest all-leaf level: no node there has children, so no
        # Dewey number ever has a component at depth len(fanouts)+1.
        while len(fanouts) > 1 and fanouts[-1] == 0:
            fanouts.pop()
        return cls(fanouts)

    @classmethod
    def from_deweys(cls, deweys) -> "LevelTable":
        """Infer a table from Dewey numbers alone (virtual workloads).

        Used when the index is built from planted keyword lists without a
        materialized tree: the fanout at level ``i`` is taken as one past
        the largest ordinal observed at Dewey position ``i+1``.
        """
        max_component: List[int] = []
        for dewey in deweys:
            for level, component in enumerate(dewey[1:]):
                while len(max_component) <= level:
                    max_component.append(0)
                if component > max_component[level]:
                    max_component[level] = component
        if not max_component:
            max_component = [0]
        return cls([m + 1 for m in max_component])

    @property
    def levels(self) -> int:
        """Number of levels that can have children."""
        return len(self.widths)

    @property
    def max_dewey_bits(self) -> int:
        """Upper bound on the packed size of any Dewey number, in bits."""
        return sum(self.widths)

    def width(self, level: int) -> int:
        """Bit width for the component at Dewey position ``level + 1``."""
        return self.widths[level]

    def check_fits(self, dewey: DeweyTuple) -> None:
        """Raise :class:`DeweyError` if *dewey* cannot be packed."""
        if len(dewey) - 1 > len(self.widths):
            raise DeweyError(
                f"Dewey {dewey!r} is deeper than the level table ({self.levels} levels)"
            )
        for level, component in enumerate(dewey[1:]):
            if component + 1 >= (1 << self.widths[level]):
                raise DeweyError(
                    f"component {component} at level {level + 1} exceeds "
                    f"level-table width {self.widths[level]}"
                )

    def to_json(self) -> str:
        """Serialize for the index directory."""
        return json.dumps({"fanouts": self.fanouts})

    @classmethod
    def from_json(cls, payload: str) -> "LevelTable":
        data = json.loads(payload)
        return cls(data["fanouts"])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LevelTable) and self.fanouts == other.fanouts

    def __repr__(self) -> str:
        return f"LevelTable(fanouts={self.fanouts!r}, widths={self.widths!r})"
