"""Document statistics: what the index builder is about to face.

Computes the structural and lexical profile of a parsed document — node
counts, depth and fanout distributions, the projected level table, and the
keyword-frequency distribution.  The frequency skew figures directly drive
the paper's algorithm choice: a corpus whose keyword frequencies span
orders of magnitude is Indexed-Lookup territory, a flat distribution is
Scan Eager's.  Exposed through ``xksearch analyze <document>``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.xmltree.level_table import LevelTable
from repro.xmltree.tree import XMLTree


@dataclass
class DocumentStats:
    """Profile of one document."""

    total_nodes: int
    element_nodes: int
    text_nodes: int
    max_depth: int
    depth_histogram: Dict[int, int]
    tag_counts: Dict[str, int]
    level_fanouts: List[int]
    distinct_keywords: int
    total_postings: int
    top_keywords: List[Tuple[str, int]]
    frequency_percentiles: Dict[int, int] = field(default_factory=dict)

    @property
    def mean_depth(self) -> float:
        weighted = sum(depth * count for depth, count in self.depth_histogram.items())
        return weighted / self.total_nodes if self.total_nodes else 0.0

    @property
    def frequency_skew(self) -> float:
        """max/median keyword frequency — a quick read on how much Indexed
        Lookup Eager stands to win on this corpus."""
        median = self.frequency_percentiles.get(50, 0)
        top = self.frequency_percentiles.get(100, 0)
        return top / median if median else 0.0


def analyze(tree: XMLTree, top: int = 10) -> DocumentStats:
    """Compute :class:`DocumentStats` for *tree*."""
    total = 0
    elements = 0
    texts = 0
    depth_histogram: Counter = Counter()
    tag_counts: Counter = Counter()
    for node in tree:
        total += 1
        depth_histogram[len(node.dewey)] += 1
        if node.is_text:
            texts += 1
        else:
            elements += 1
            tag_counts[node.tag] += 1

    lists = tree.keyword_lists()
    frequencies = sorted(len(lst) for lst in lists.values())
    percentiles: Dict[int, int] = {}
    if frequencies:
        for pct in (50, 90, 99, 100):
            index = min(len(frequencies) - 1, (pct * len(frequencies)) // 100)
            percentiles[pct] = frequencies[index]

    top_keywords = sorted(lists.items(), key=lambda kv: -len(kv[1]))[:top]
    return DocumentStats(
        total_nodes=total,
        element_nodes=elements,
        text_nodes=texts,
        max_depth=max(depth_histogram) if depth_histogram else 0,
        depth_histogram=dict(sorted(depth_histogram.items())),
        tag_counts=dict(tag_counts.most_common()),
        level_fanouts=tree.level_fanouts(),
        distinct_keywords=len(lists),
        total_postings=sum(frequencies),
        top_keywords=[(kw, len(lst)) for kw, lst in top_keywords],
        frequency_percentiles=percentiles,
    )


def format_stats(stats: DocumentStats) -> str:
    """Human-readable report (the ``xksearch analyze`` output)."""
    lines = [
        f"nodes: {stats.total_nodes} ({stats.element_nodes} elements, "
        f"{stats.text_nodes} text)",
        f"depth: max {stats.max_depth}, mean {stats.mean_depth:.2f}",
        "depth histogram: "
        + " ".join(f"{d}:{c}" for d, c in stats.depth_histogram.items()),
        "level fanouts: " + " ".join(map(str, stats.level_fanouts)),
        "projected level table widths: "
        + " ".join(map(str, LevelTable([max(1, f) for f in stats.level_fanouts]).widths)),
        f"distinct keywords: {stats.distinct_keywords}, "
        f"postings: {stats.total_postings}",
        "keyword frequency percentiles: "
        + " ".join(f"p{p}={v}" for p, v in stats.frequency_percentiles.items()),
        f"frequency skew (max/median): {stats.frequency_skew:.1f}x",
        "top keywords: "
        + ", ".join(f"{kw} ({count})" for kw, count in stats.top_keywords),
    ]
    top_tags = list(stats.tag_counts.items())[:8]
    lines.append("top tags: " + ", ".join(f"{t} ({c})" for t, c in top_tags))
    return "\n".join(lines)
