"""A from-scratch XML tokenizer.

The paper's XKSearch system used the Apache Xerces parser; since the
algorithms only need a labeled ordered tree, we implement the subset of XML
1.0 sufficient for real documents (DBLP-class data):

* start / end / empty-element tags with attributes,
* character data with the five predefined entities plus numeric character
  references,
* CDATA sections, comments, processing instructions,
* an optional XML declaration and DOCTYPE (skipped, not validated).

The tokenizer is a generator producing :class:`Token` objects; the parser in
:mod:`repro.xmltree.parser` turns them into a tree.  Errors carry precise
line/column positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, Tuple

from repro.errors import XMLSyntaxError

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")

_WHITESPACE = set(" \t\r\n")


class TokenType(Enum):
    """Kinds of token emitted by :func:`tokenize`."""

    START_TAG = "start"
    END_TAG = "end"
    EMPTY_TAG = "empty"
    TEXT = "text"
    COMMENT = "comment"
    PI = "pi"


@dataclass
class Token:
    """One lexical event.

    ``value`` is the tag name for tag tokens, the decoded character data for
    text tokens, the comment body for comments, and the target for processing
    instructions.  ``attrs`` is populated only for start/empty tags.
    """

    type: TokenType
    value: str
    attrs: Dict[str, str] = field(default_factory=dict)
    line: int = 0
    column: int = 0


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Cursor:
    """Position-tracking view over the source text."""

    __slots__ = ("text", "pos", "line", "_line_start")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self._line_start = 0

    @property
    def column(self) -> int:
        return self.pos - self._line_start + 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def advance(self, count: int = 1) -> None:
        """Move forward *count* characters, tracking line breaks."""
        end = min(self.pos + count, len(self.text))
        segment = self.text[self.pos:end]
        newlines = segment.count("\n")
        if newlines:
            self.line += newlines
            self._line_start = self.pos + segment.rfind("\n") + 1
        self.pos = end

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def find(self, needle: str) -> int:
        return self.text.find(needle, self.pos)

    def error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self.line, self.column)


def decode_entities(raw: str, cursor: _Cursor = None) -> str:
    """Decode predefined entities and character references in *raw*.

    Unknown named entities raise :class:`XMLSyntaxError` (we do not support
    DTD-defined entities).  ``cursor`` is used only for error positions.
    """
    if "&" not in raw:
        return raw
    out = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end == -1:
            raise _entity_error(cursor, "unterminated entity reference")
        name = raw[i + 1:end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(_char_ref(name[2:], 16, cursor))
        elif name.startswith("#"):
            out.append(_char_ref(name[1:], 10, cursor))
        elif name in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[name])
        else:
            raise _entity_error(cursor, f"unknown entity &{name};")
        i = end + 1
    return "".join(out)


def _char_ref(digits: str, base: int, cursor: _Cursor) -> str:
    try:
        code = int(digits, base)
        return chr(code)
    except (ValueError, OverflowError):
        raise _entity_error(cursor, f"invalid character reference &#{digits};") from None


def _entity_error(cursor: _Cursor, message: str) -> XMLSyntaxError:
    if cursor is not None:
        return cursor.error(message)
    return XMLSyntaxError(message)


def tokenize(text: str) -> Iterator[Token]:
    """Yield :class:`Token` objects for the XML document *text*.

    The stream is purely lexical: tag balance is the parser's job.  Text
    tokens never span markup and are emitted with entities decoded; runs of
    text separated only by comments/PIs are emitted as separate tokens.
    """
    cur = _Cursor(text)
    _skip_prolog(cur)
    while not cur.at_end():
        if cur.peek() == "<":
            yield from _lex_markup(cur)
        else:
            yield from _lex_text(cur)


def _skip_prolog(cur: _Cursor) -> None:
    """Skip the XML declaration, DOCTYPE and inter-prolog whitespace."""
    while True:
        while not cur.at_end() and cur.peek() in _WHITESPACE:
            cur.advance()
        if cur.startswith("<?xml"):
            end = cur.find("?>")
            if end == -1:
                raise cur.error("unterminated XML declaration")
            cur.advance(end - cur.pos + 2)
        elif cur.startswith("<!DOCTYPE"):
            _skip_doctype(cur)
        else:
            return


def _skip_doctype(cur: _Cursor) -> None:
    """Skip a DOCTYPE declaration, including an internal subset."""
    depth = 0
    while not cur.at_end():
        ch = cur.peek()
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            cur.advance()
            return
        cur.advance()
    raise cur.error("unterminated DOCTYPE declaration")


def _lex_text(cur: _Cursor) -> Iterator[Token]:
    line, column = cur.line, cur.column
    end = cur.find("<")
    if end == -1:
        end = len(cur.text)
    raw = cur.text[cur.pos:end]
    cur.advance(end - cur.pos)
    decoded = decode_entities(raw, cur)
    if decoded:
        yield Token(TokenType.TEXT, decoded, line=line, column=column)


def _lex_markup(cur: _Cursor) -> Iterator[Token]:
    if cur.startswith("<!--"):
        yield _lex_comment(cur)
    elif cur.startswith("<![CDATA["):
        yield _lex_cdata(cur)
    elif cur.startswith("<?"):
        yield _lex_pi(cur)
    elif cur.startswith("</"):
        yield _lex_end_tag(cur)
    else:
        yield _lex_start_tag(cur)


def _lex_comment(cur: _Cursor) -> Token:
    line, column = cur.line, cur.column
    cur.advance(4)  # <!--
    end = cur.find("-->")
    if end == -1:
        raise cur.error("unterminated comment")
    body = cur.text[cur.pos:end]
    if "--" in body:
        raise cur.error("'--' is not allowed inside a comment")
    cur.advance(end - cur.pos + 3)
    return Token(TokenType.COMMENT, body, line=line, column=column)


def _lex_cdata(cur: _Cursor) -> Token:
    line, column = cur.line, cur.column
    cur.advance(9)  # <![CDATA[
    end = cur.find("]]>")
    if end == -1:
        raise cur.error("unterminated CDATA section")
    body = cur.text[cur.pos:end]
    cur.advance(end - cur.pos + 3)
    return Token(TokenType.TEXT, body, line=line, column=column)


def _lex_pi(cur: _Cursor) -> Token:
    line, column = cur.line, cur.column
    cur.advance(2)  # <?
    end = cur.find("?>")
    if end == -1:
        raise cur.error("unterminated processing instruction")
    body = cur.text[cur.pos:end]
    cur.advance(end - cur.pos + 2)
    target = body.split(None, 1)[0] if body.strip() else ""
    if not target:
        raise cur.error("processing instruction missing target")
    return Token(TokenType.PI, target, line=line, column=column)


def _lex_end_tag(cur: _Cursor) -> Token:
    line, column = cur.line, cur.column
    cur.advance(2)  # </
    name = _lex_name(cur)
    _skip_ws(cur)
    if cur.peek() != ">":
        raise cur.error(f"malformed end tag </{name}")
    cur.advance()
    return Token(TokenType.END_TAG, name, line=line, column=column)


def _lex_start_tag(cur: _Cursor) -> Token:
    line, column = cur.line, cur.column
    cur.advance(1)  # <
    name = _lex_name(cur)
    attrs = _lex_attributes(cur, name)
    if cur.startswith("/>"):
        cur.advance(2)
        return Token(TokenType.EMPTY_TAG, name, attrs, line=line, column=column)
    if cur.peek() == ">":
        cur.advance()
        return Token(TokenType.START_TAG, name, attrs, line=line, column=column)
    raise cur.error(f"malformed start tag <{name}")


def _lex_attributes(cur: _Cursor, tag: str) -> Dict[str, str]:
    attrs: Dict[str, str] = {}
    while True:
        saw_ws = _skip_ws(cur)
        ch = cur.peek()
        if ch in (">", "") or cur.startswith("/>"):
            return attrs
        if not saw_ws:
            raise cur.error(f"expected whitespace before attribute in <{tag}>")
        name, value = _lex_attribute(cur)
        if name in attrs:
            raise cur.error(f"duplicate attribute {name!r} in <{tag}>")
        attrs[name] = value


def _lex_attribute(cur: _Cursor) -> Tuple[str, str]:
    name = _lex_name(cur)
    _skip_ws(cur)
    if cur.peek() != "=":
        raise cur.error(f"attribute {name!r} missing '='")
    cur.advance()
    _skip_ws(cur)
    quote = cur.peek()
    if quote not in ("'", '"'):
        raise cur.error(f"attribute {name!r} value must be quoted")
    cur.advance()
    end = cur.find(quote)
    if end == -1:
        raise cur.error(f"unterminated value for attribute {name!r}")
    raw = cur.text[cur.pos:end]
    if "<" in raw:
        raise cur.error(f"'<' is not allowed in attribute value of {name!r}")
    cur.advance(end - cur.pos + 1)
    return name, decode_entities(raw, cur)


def _lex_name(cur: _Cursor) -> str:
    start = cur.pos
    if cur.at_end() or not _is_name_start(cur.peek()):
        raise cur.error("expected an XML name")
    while not cur.at_end() and _is_name_char(cur.peek()):
        cur.advance()
    return cur.text[start:cur.pos]


def _skip_ws(cur: _Cursor) -> bool:
    saw = False
    while not cur.at_end() and cur.peek() in _WHITESPACE:
        cur.advance()
        saw = True
    return saw
