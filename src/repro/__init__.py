"""XKSearch — efficient keyword search for smallest LCAs in XML databases.

A faithful, from-scratch Python reproduction of Xu & Papakonstantinou,
SIGMOD 2005.  The top-level namespace re-exports the public API:

* :class:`XKSearch` — the end-to-end system (build/open an index, search);
* :func:`slca` / :func:`all_lca` — the algorithms over raw keyword lists;
* :func:`parse` / :class:`XMLTree` / :class:`Dewey` — the XML substrate.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.core import ALGORITHMS, OpCounters, all_lca, elca, slca
from repro.xksearch import SearchResult, XKSearch, XMLCollection
from repro.xmltree import Dewey, XMLTree, parse, parse_file

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "Dewey",
    "OpCounters",
    "SearchResult",
    "XKSearch",
    "XMLTree",
    "XMLCollection",
    "all_lca",
    "elca",
    "parse",
    "parse_file",
    "slca",
    "__version__",
]
