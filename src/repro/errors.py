"""Exception hierarchy for the XKSearch reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses partition the errors by
subsystem: parsing, storage, indexing and querying.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class XMLSyntaxError(ReproError):
    """The input document is not well-formed XML.

    Carries the 1-based line and column of the offending character so that
    error messages can point at the exact spot in the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DeweyError(ReproError):
    """An operation received a malformed Dewey number."""


class StorageError(ReproError):
    """Base class for disk-layer failures (pager, buffer pool, B+tree)."""


class PageError(StorageError):
    """A page id was out of range or a page image was corrupt."""


class TreeCorruptError(StorageError):
    """A B+tree invariant was violated while reading an index file."""


class CorruptionError(StorageError):
    """A stored checksum did not match the bytes read back (bit rot,
    torn write, or an injected fault).

    ``tier`` names the storage layer that detected it (``"segment"`` or
    ``"bptree"``); the serving path uses it to decide whether a
    transparent re-answer from the redundant tier is possible.
    """

    def __init__(self, message: str, tier: str = "unknown"):
        self.tier = tier
        super().__init__(message)


class IndexError_(ReproError):
    """Base class for inverted-index failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class IndexNotFoundError(IndexError_):
    """The requested index directory does not exist or is incomplete."""


class IndexFormatError(IndexError_):
    """An index file has an unexpected magic number or version."""


class QueryError(ReproError):
    """The keyword query was malformed (e.g. empty keyword list)."""


class DeadlineExceeded(ReproError):
    """A request's end-to-end deadline expired before the answer was done.

    Raised at cooperative checkpoints inside the algorithm loops and at
    the worker-pool admission boundary; the serving layer turns it into a
    structured 504.  ``phase`` says where the budget ran out (``"execute"``,
    ``"admission"``, ``"worker"``, …) and labels
    ``xks_deadline_exceeded_total``.
    """

    def __init__(self, message: str = "deadline exceeded", phase: str = "execute"):
        self.phase = phase
        super().__init__(message)


class PoolError(ReproError):
    """A process-pool dispatch failed (dead worker, timeout, closed pool).

    The engine treats this as a signal to execute in-thread instead — a
    pool failure degrades a request, it never fails one.
    """


class PoolUnavailableError(PoolError):
    """The platform cannot run the process pool (no ``fork`` start method)."""
