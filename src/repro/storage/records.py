"""Order-preserving record encodings for the index B+trees.

The IL index keys every posting with ``keyword ⊕ dewey`` (the paper's
Figure 5: keywords are the primary key, Dewey numbers the secondary key);
the scan index keys blocks with ``keyword ⊕ block-sequence-number``
(Figure 4).  Both composites must compare bytewise in (keyword, suffix)
order, which holds because keywords are NUL-free and the separator is a
single NUL byte: no keyword is a prefix of another *plus separator*, and
within one keyword the suffix (an order-preserving Dewey encoding or a
fixed-width big-endian counter) decides.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import IndexFormatError

_SEP = b"\x00"


def encode_keyword(keyword: str) -> bytes:
    """Keyword → key-prefix bytes (validates NUL-freedom)."""
    raw = keyword.encode("utf-8")
    if b"\x00" in raw:
        raise IndexFormatError(f"keyword may not contain NUL bytes: {keyword!r}")
    if not raw:
        raise IndexFormatError("keyword may not be empty")
    return raw


def posting_key(keyword: str, dewey_bytes: bytes) -> bytes:
    """Composite key for one posting in the IL tree."""
    return encode_keyword(keyword) + _SEP + dewey_bytes


def split_posting_key(key: bytes) -> Tuple[str, bytes]:
    """Inverse of :func:`posting_key`."""
    sep = key.find(_SEP)
    if sep < 0:
        raise IndexFormatError(f"malformed posting key: {key!r}")
    return key[:sep].decode("utf-8"), key[sep + 1:]


def keyword_range(keyword: str) -> Tuple[bytes, bytes]:
    """Half-open key interval [lo, hi) covering all postings of *keyword*."""
    prefix = encode_keyword(keyword)
    return prefix + _SEP, prefix + b"\x01"


def block_key(keyword: str, seq: int) -> bytes:
    """Composite key for one block of the scan tree."""
    return encode_keyword(keyword) + _SEP + seq.to_bytes(4, "big")


def pack_tagged_block(entries: list) -> bytes:
    """Pack (dewey encoding, tag id) pairs into one block value.

    Each record is length-prefixed; the last two bytes of a record are the
    big-endian context-tag id, the rest the Dewey encoding.
    """
    return pack_block([enc + tag_id.to_bytes(2, "big") for enc, tag_id in entries])


def unpack_tagged_block(data: bytes) -> list:
    """Inverse of :func:`pack_tagged_block`: list of (encoding, tag id)."""
    out = []
    for record in unpack_block(data):
        if len(record) < 2:
            raise IndexFormatError("tagged block record too short")
        out.append((record[:-2], int.from_bytes(record[-2:], "big")))
    return out


def pack_block(dewey_encodings: list) -> bytes:
    """Concatenate Dewey encodings with one-byte length prefixes."""
    parts = []
    for enc in dewey_encodings:
        if len(enc) > 255:
            raise IndexFormatError(f"Dewey encoding too long for a block: {len(enc)} bytes")
        parts.append(bytes([len(enc)]))
        parts.append(enc)
    return b"".join(parts)


def unpack_block(data: bytes) -> list:
    """Inverse of :func:`pack_block`."""
    out = []
    i = 0
    n = len(data)
    while i < n:
        length = data[i]
        i += 1
        if i + length > n:
            raise IndexFormatError("truncated Dewey block")
        out.append(data[i:i + length])
        i += length
    return out
