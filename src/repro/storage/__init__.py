"""Disk substrate: pager, LRU buffer pool and a disk B+tree.

Stands in for the BerkeleyDB B-trees of the paper's implementation; its
physical-I/O counters drive the disk-access analysis (Table 1) and the
cold-cache experiments (Figures 11-13).
"""

from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool, PoolStats
from repro.storage.pager import CostModel, DEFAULT_PAGE_SIZE, IOStats, Pager

__all__ = [
    "BPlusTree",
    "BufferPool",
    "CostModel",
    "DEFAULT_PAGE_SIZE",
    "IOStats",
    "Pager",
    "PoolStats",
]
