"""LRU buffer pool over a pager.

The buffer pool is what makes the paper's hot-cache / cold-cache experiment
split reproducible: a *hot* run touches only cached pages (no physical I/O),
while a *cold* run starts from an empty pool and every first touch of a page
becomes a counted physical read.

Pages may be *pinned*: pinned pages are never evicted.  The XKSearch disk
analysis assumes the B+tree's non-leaf pages stay cached; the index layer
pins them to realize that assumption explicitly.

The pool is the serialization point of the concurrent read path: every
page access (and therefore every pager ``seek``/``read`` and every stats
update) happens under the pool's reentrant lock, so any number of threads
may execute queries against one :class:`~repro.index.inverted.DiskKeywordIndex`
concurrently.  The lock is per-access, not per-query — tree descents from
different threads interleave freely, which is safe because queries never
mutate pages.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Set

from repro.storage.pager import Pager


@dataclass
class PoolStats:
    """Cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class BufferPool:
    """Write-through LRU page cache with pinning.

    ``capacity`` counts unpinned cacheable pages; pinned pages live outside
    the LRU budget (they model the "non-leaf nodes cached in main memory"
    assumption of the paper's disk analysis and are typically few).

    With ``direct=True`` the LRU layer is bypassed entirely: every
    ``get_page`` goes straight to the pager.  This is the mode for
    readonly **mmap** pagers, where the OS page cache already *is* the
    buffer pool (shared across every process mapping the file) and a
    per-process LRU would only duplicate those pages into private heap
    memory.  Pinning still works (pinned pages are private copies), and
    accesses count as pool hits — in mmap mode a page access never costs
    a physical read.
    """

    def __init__(self, pager: Pager, capacity: int = 1024, direct: bool = False):
        if capacity < 1:
            raise ValueError("buffer pool capacity must be at least 1")
        self.pager = pager
        self.capacity = capacity
        self.direct = direct
        self.stats = PoolStats()
        self.lock = threading.RLock()
        self._lru: "OrderedDict[int, bytes]" = OrderedDict()
        self._pinned: dict = {}

    def get_page(self, pid: int) -> bytes:
        """Page contents, from cache when possible (thread-safe)."""
        with self.lock:
            if pid in self._pinned:
                self.stats.hits += 1
                return self._pinned[pid]
            if self.direct:
                self.stats.hits += 1
                return self.pager.read_page(pid)
            if pid in self._lru:
                self.stats.hits += 1
                self._lru.move_to_end(pid)
                return self._lru[pid]
            self.stats.misses += 1
            data = self.pager.read_page(pid)
            self._insert(pid, data)
            return data

    def put_page(self, pid: int, data: bytes) -> None:
        """Write-through: update the pager and the cached copy."""
        with self.lock:
            self.pager.write_page(pid, data)
            if pid in self._pinned:
                self._pinned[pid] = data
                return
            if pid in self._lru:
                self._lru[pid] = data
                self._lru.move_to_end(pid)
            else:
                self._insert(pid, data)

    def _insert(self, pid: int, data: bytes) -> None:
        self._lru[pid] = data
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            self.stats.evictions += 1

    # -- pinning -------------------------------------------------------------

    def pin(self, pid: int) -> None:
        """Keep *pid* cached permanently (read now if not cached)."""
        with self.lock:
            if pid in self._pinned:
                return
            if pid in self._lru:
                self._pinned[pid] = self._lru.pop(pid)
            else:
                self._pinned[pid] = self.pager.read_page(pid)

    def pin_many(self, pids: Iterable[int]) -> None:
        with self.lock:
            for pid in pids:
                self.pin(pid)

    def unpin_all(self) -> None:
        """Demote every pinned page out of the cache entirely."""
        with self.lock:
            self._pinned.clear()

    @property
    def pinned_pages(self) -> Set[int]:
        with self.lock:
            return set(self._pinned)

    # -- cache temperature ----------------------------------------------------

    def clear(self, keep_pinned: bool = True) -> None:
        """Cold cache: drop cached pages (pinned pages survive by default)."""
        with self.lock:
            self._lru.clear()
            if not keep_pinned:
                self._pinned.clear()
            self.pager.reset_read_sequence()

    def warm(self, pids: Iterable[int]) -> None:
        """Hot cache: pre-load the given pages without counting stats."""
        with self.lock:
            saved = (self.stats.hits, self.stats.misses)
            reads_before = self.pager.stats.snapshot()
            for pid in pids:
                self.get_page(pid)
            self.stats.hits, self.stats.misses = saved
            # Warm-up I/O is setup cost, not query cost: roll it back.
            self.pager.stats.reads = reads_before.reads
            self.pager.stats.sequential_reads = reads_before.sequential_reads
            self.pager.stats.random_reads = reads_before.random_reads
            self.pager.reset_read_sequence()

    @property
    def cached_pages(self) -> int:
        with self.lock:
            return len(self._lru) + len(self._pinned)
