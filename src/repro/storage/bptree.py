"""Disk-based B+tree over byte-string keys.

This replaces the BerkeleyDB B-trees of the paper's XKSearch implementation.
Keys and values are arbitrary byte strings; key order is plain bytewise
comparison, which is why the Dewey codecs guarantee bytewise order equals
document order.

Supported operations map one-to-one onto what the algorithms need:

* ``search`` — exact lookup,
* ``floor_entry`` / ``ceiling_entry`` — the disk versions of the paper's
  ``lm`` (left match) and ``rm`` (right match),
* ``scan`` — ordered iteration over a key range through the chained leaves
  (what Scan Eager and Stack read),
* ``insert`` — incremental insertion with node splits,
* ``bulk_load`` — build from a sorted stream with consecutive leaf pages,
  so that full-list scans are classified as sequential I/O,
* ``internal_page_ids`` — so the index layer can pin non-leaf pages,
  realizing the paper's "non-leaf nodes are cached" disk-cost assumption.

Page layout (both node kinds start with ``type:u8, nkeys:u16``):

* leaf: ``next_leaf:u32`` then per entry ``klen:u16, vlen:u16, key, value``
* internal: ``(nkeys+1) * child:u32`` then per key ``klen:u16, key``
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import TreeCorruptError
from repro.storage.buffer_pool import BufferPool

_LEAF = 1
_INTERNAL = 0
_LEAF_HEADER = 1 + 2 + 4
_INTERNAL_HEADER = 1 + 2

Entry = Tuple[bytes, bytes]


class _LeafNode:
    __slots__ = ("keys", "values", "next_leaf")

    def __init__(self, keys: List[bytes], values: List[bytes], next_leaf: int):
        self.keys = keys
        self.values = values
        self.next_leaf = next_leaf

    def encoded_size(self) -> int:
        payload = sum(len(k) + len(v) + 4 for k, v in zip(self.keys, self.values))
        return _LEAF_HEADER + payload

    def encode(self) -> bytes:
        parts = [
            bytes([_LEAF]),
            len(self.keys).to_bytes(2, "big"),
            self.next_leaf.to_bytes(4, "big"),
        ]
        for key, value in zip(self.keys, self.values):
            parts.append(len(key).to_bytes(2, "big"))
            parts.append(len(value).to_bytes(2, "big"))
            parts.append(key)
            parts.append(value)
        return b"".join(parts)


class _InternalNode:
    __slots__ = ("keys", "children")

    def __init__(self, keys: List[bytes], children: List[int]):
        self.keys = keys
        self.children = children

    def encoded_size(self) -> int:
        return (
            _INTERNAL_HEADER
            + 4 * len(self.children)
            + sum(len(k) + 2 for k in self.keys)
        )

    def encode(self) -> bytes:
        parts = [bytes([_INTERNAL]), len(self.keys).to_bytes(2, "big")]
        for child in self.children:
            parts.append(child.to_bytes(4, "big"))
        for key in self.keys:
            parts.append(len(key).to_bytes(2, "big"))
            parts.append(key)
        return b"".join(parts)


def _decode(data: bytes):
    kind = data[0]
    nkeys = int.from_bytes(data[1:3], "big")
    if kind == _LEAF:
        next_leaf = int.from_bytes(data[3:7], "big")
        keys: List[bytes] = []
        values: List[bytes] = []
        pos = _LEAF_HEADER
        for _ in range(nkeys):
            klen = int.from_bytes(data[pos:pos + 2], "big")
            vlen = int.from_bytes(data[pos + 2:pos + 4], "big")
            pos += 4
            keys.append(data[pos:pos + klen])
            pos += klen
            values.append(data[pos:pos + vlen])
            pos += vlen
        return _LeafNode(keys, values, next_leaf)
    if kind == _INTERNAL:
        children: List[int] = []
        pos = _INTERNAL_HEADER
        for _ in range(nkeys + 1):
            children.append(int.from_bytes(data[pos:pos + 4], "big"))
            pos += 4
        keys = []
        for _ in range(nkeys):
            klen = int.from_bytes(data[pos:pos + 2], "big")
            pos += 2
            keys.append(data[pos:pos + klen])
            pos += klen
        return _InternalNode(keys, children)
    raise TreeCorruptError(f"unknown B+tree node type {kind}")


class BPlusTree:
    """A B+tree living in a buffer pool.

    The root page id persists in the pager's header metadata under
    ``name``; several trees can share one pager/pool under different names
    (XKSearch keeps the IL index and the scan index in one file).
    """

    def __init__(self, pool: BufferPool, name: str = "bptree"):
        self.pool = pool
        self.name = name
        self._meta_key = f"bptree.{name}.root"
        self._decoded_cache: dict = {}
        # Node touches (every _read_node call, cached or not) — the tree-level
        # work counter /statz and /metrics report.  A plain int under the GIL:
        # a lost increment under thread races is tolerable for a stats counter
        # and keeps the descent hot path lock-free.
        self.node_reads = 0
        root = self.pool.pager.get_meta(self._meta_key)
        if root is None:
            pid = self.pool.pager.allocate()
            self._write_node(pid, _LeafNode([], [], 0))
            self.pool.pager.set_meta(self._meta_key, pid)
            root = pid
        self._root_pid = int(root)

    # -- node I/O -------------------------------------------------------------

    def _read_node(self, pid: int):
        self.node_reads += 1
        data = self.pool.get_page(pid)
        cached = self._decoded_cache.get(pid)
        if cached is not None and cached[0] is data:
            return cached[1]
        node = _decode(data)
        self._decoded_cache[pid] = (data, node)
        return node

    def _write_node(self, pid: int, node) -> None:
        self.pool.put_page(pid, node.encode())
        self._decoded_cache.pop(pid, None)

    def _set_root(self, pid: int) -> None:
        self._root_pid = pid
        self.pool.pager.set_meta(self._meta_key, pid)

    @property
    def page_capacity(self) -> int:
        return self.pool.pager.page_size

    def _check_entry_fits(self, key: bytes, value: bytes) -> None:
        needed = _LEAF_HEADER + len(key) + len(value) + 4
        if needed > self.page_capacity:
            raise TreeCorruptError(
                f"entry of {len(key)}+{len(value)} bytes cannot fit in a "
                f"{self.page_capacity}-byte page"
            )

    # -- queries ---------------------------------------------------------------

    def search(self, key: bytes) -> Optional[bytes]:
        """Value stored under *key*, or ``None``."""
        leaf = self._read_node(self._descend(key))
        i = bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return leaf.values[i]
        return None

    def _descend(self, key: bytes) -> int:
        """Page id of the leaf that owns *key*."""
        pid = self._root_pid
        node = self._read_node(pid)
        while isinstance(node, _InternalNode):
            pid = node.children[bisect_right(node.keys, key)]
            node = self._read_node(pid)
        return pid

    def ceiling_entry(self, key: bytes) -> Optional[Entry]:
        """Smallest entry with key >= *key* — the disk right match (rm)."""
        pid = self._descend(key)
        leaf = self._read_node(pid)
        i = bisect_left(leaf.keys, key)
        while i >= len(leaf.keys):
            if not leaf.next_leaf:
                return None
            pid = leaf.next_leaf
            leaf = self._read_node(pid)
            i = 0
        return leaf.keys[i], leaf.values[i]

    def floor_entry(self, key: bytes) -> Optional[Entry]:
        """Largest entry with key <= *key* — the disk left match (lm).

        The leaf chain is forward-only, so the descent remembers the deepest
        point where it took a non-leftmost child; if the target leaf holds
        nothing <= *key*, the floor is the rightmost entry of the subtree
        immediately left of that point (one extra partial descent; internal
        pages are pinned in practice, so this costs no physical I/O).
        """
        node = self._read_node(self._root_pid)
        # Remember every place the descent had subtrees to its left; if the
        # target leaf holds nothing <= key (possible after deletions empty
        # leaves), the floor is the rightmost entry among those subtrees,
        # searched deepest-first, right to left.
        branch_points: List[List[int]] = []
        while isinstance(node, _InternalNode):
            slot = bisect_right(node.keys, key)
            if slot > 0:
                branch_points.append(node.children[:slot])
            node = self._read_node(node.children[slot])
        i = bisect_right(node.keys, key)
        if i > 0:
            return node.keys[i - 1], node.values[i - 1]
        for left_children in reversed(branch_points):
            for child in reversed(left_children):
                entry = self._rightmost_entry(child)
                if entry is not None:
                    return entry
        return None

    def neighbors(self, key: bytes) -> Tuple[Optional[Entry], Optional[Entry]]:
        """``(floor_entry(key), ceiling_entry(key))`` from **one** descent.

        The paper's IL probes each list with ``lm`` then ``rm`` at the
        same value, which as two independent calls costs two root-to-leaf
        descents; both answers live in (or next to) the same leaf, so one
        descent recording the floor branch points serves both.  When the
        key itself is present, both entries are that key.
        """
        node = self._read_node(self._root_pid)
        branch_points: List[List[int]] = []
        while isinstance(node, _InternalNode):
            slot = bisect_right(node.keys, key)
            if slot > 0:
                branch_points.append(node.children[:slot])
            node = self._read_node(node.children[slot])
        # Ceiling: first entry >= key, walking the forward leaf chain past
        # leaves emptied by deletions (same loop as ceiling_entry).
        ceiling: Optional[Entry] = None
        leaf, i = node, bisect_left(node.keys, key)
        while True:
            if i < len(leaf.keys):
                ceiling = (leaf.keys[i], leaf.values[i])
                break
            if not leaf.next_leaf:
                break
            leaf = self._read_node(leaf.next_leaf)
            i = 0
        # Floor: last entry <= key in the target leaf, else the rightmost
        # entry among the recorded left subtrees (same as floor_entry).
        j = bisect_right(node.keys, key)
        if j > 0:
            return (node.keys[j - 1], node.values[j - 1]), ceiling
        for left_children in reversed(branch_points):
            for child in reversed(left_children):
                entry = self._rightmost_entry(child)
                if entry is not None:
                    return entry, ceiling
        return None, ceiling

    def _rightmost_entry(self, pid: int) -> Optional[Entry]:
        """Largest entry in the subtree at *pid*, skipping leaves emptied by
        deletions (children are tried right to left)."""
        node = self._read_node(pid)
        if isinstance(node, _InternalNode):
            for child in reversed(node.children):
                entry = self._rightmost_entry(child)
                if entry is not None:
                    return entry
            return None
        if not node.keys:
            return None
        return node.keys[-1], node.values[-1]

    def scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
    ) -> Iterator[Entry]:
        """Entries with start <= key < end, in key order, via the leaf chain."""
        pid = self._descend(start) if start is not None else self._first_leaf()
        leaf = self._read_node(pid)
        i = bisect_left(leaf.keys, start) if start is not None else 0
        while True:
            while i < len(leaf.keys):
                key = leaf.keys[i]
                if end is not None and key >= end:
                    return
                yield key, leaf.values[i]
                i += 1
            if not leaf.next_leaf:
                return
            leaf = self._read_node(leaf.next_leaf)
            i = 0

    def _first_leaf(self) -> int:
        pid = self._root_pid
        node = self._read_node(pid)
        while isinstance(node, _InternalNode):
            pid = node.children[0]
            node = self._read_node(pid)
        return pid

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())

    @property
    def height(self) -> int:
        """Number of levels (1 = the root is a leaf)."""
        levels = 1
        node = self._read_node(self._root_pid)
        while isinstance(node, _InternalNode):
            levels += 1
            node = self._read_node(node.children[0])
        return levels

    def check_invariants(self) -> List[str]:
        """Verify the structural invariants; returns violation messages.

        Checks, over the whole tree: keys sorted within every node; every
        key in child ``i`` of an internal node lies in
        ``[separator[i-1], separator[i])``; the leaf chain visits exactly
        the leaves in left-to-right order.  Used by ``xksearch verify``.
        """
        problems: List[str] = []
        leaves_in_order: List[int] = []

        def walk(pid: int, lo: Optional[bytes], hi: Optional[bytes]) -> None:
            node = self._read_node(pid)
            keys = node.keys
            for i in range(len(keys) - 1):
                if keys[i] >= keys[i + 1]:
                    problems.append(f"page {pid}: keys out of order at slot {i}")
            for key in keys:
                if lo is not None and key < lo:
                    problems.append(f"page {pid}: key below subtree bound")
                if hi is not None and key >= hi:
                    problems.append(f"page {pid}: key above subtree bound")
            if isinstance(node, _InternalNode):
                if len(node.children) != len(keys) + 1:
                    problems.append(f"page {pid}: child/key count mismatch")
                    return
                for i, child in enumerate(node.children):
                    child_lo = keys[i - 1] if i > 0 else lo
                    child_hi = keys[i] if i < len(keys) else hi
                    walk(child, child_lo, child_hi)
            else:
                leaves_in_order.append(pid)

        walk(self._root_pid, None, None)
        chained = self.leaf_page_ids()
        if chained != leaves_in_order:
            problems.append(
                f"leaf chain {chained} disagrees with tree order {leaves_in_order}"
            )
        return problems

    def internal_page_ids(self) -> List[int]:
        """Page ids of every non-leaf node (for pinning)."""
        pids: List[int] = []
        stack = [self._root_pid]
        while stack:
            pid = stack.pop()
            node = self._read_node(pid)
            if isinstance(node, _InternalNode):
                pids.append(pid)
                stack.extend(node.children)
        return pids

    def leaf_page_ids(self) -> List[int]:
        """Page ids of every leaf, in key order."""
        pids: List[int] = []
        pid = self._first_leaf()
        while pid:
            pids.append(pid)
            leaf = self._read_node(pid)
            pid = leaf.next_leaf
        return pids

    # -- insertion ---------------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> None:
        """Insert or replace the entry for *key*."""
        self._check_entry_fits(key, value)
        split = self._insert_into(self._root_pid, key, value)
        if split is not None:
            sep, right_pid = split
            new_root = self.pool.pager.allocate()
            self._write_node(new_root, _InternalNode([sep], [self._root_pid, right_pid]))
            self._set_root(new_root)

    def _insert_into(self, pid: int, key: bytes, value: bytes):
        """Insert under *pid*; return (separator, new_right_pid) on split."""
        node = self._read_node(pid)
        if isinstance(node, _LeafNode):
            i = bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
            else:
                node.keys.insert(i, key)
                node.values.insert(i, value)
            if node.encoded_size() <= self.page_capacity:
                self._write_node(pid, node)
                return None
            return self._split_leaf(pid, node)
        slot = bisect_right(node.keys, key)
        split = self._insert_into(node.children[slot], key, value)
        if split is None:
            return None
        sep, right_pid = split
        node.keys.insert(slot, sep)
        node.children.insert(slot + 1, right_pid)
        if node.encoded_size() <= self.page_capacity:
            self._write_node(pid, node)
            return None
        return self._split_internal(pid, node)

    def _split_leaf(self, pid: int, node: _LeafNode):
        mid = self._split_point(node.keys, node.values)
        right = _LeafNode(node.keys[mid:], node.values[mid:], node.next_leaf)
        right_pid = self.pool.pager.allocate()
        left = _LeafNode(node.keys[:mid], node.values[:mid], right_pid)
        self._write_node(right_pid, right)
        self._write_node(pid, left)
        return right.keys[0], right_pid

    def _split_internal(self, pid: int, node: _InternalNode):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _InternalNode(node.keys[mid + 1:], node.children[mid + 1:])
        right_pid = self.pool.pager.allocate()
        left = _InternalNode(node.keys[:mid], node.children[:mid + 1])
        self._write_node(right_pid, right)
        self._write_node(pid, left)
        return sep, right_pid

    @staticmethod
    def _split_point(keys: List[bytes], values: List[bytes]) -> int:
        """Index splitting the entries into two roughly equal byte halves."""
        total = sum(len(k) + len(v) + 4 for k, v in zip(keys, values))
        acc = 0
        for i, (k, v) in enumerate(zip(keys, values)):
            acc += len(k) + len(v) + 4
            if acc >= total // 2:
                return min(max(i + 1, 1), len(keys) - 1)
        return len(keys) // 2

    def delete(self, key: bytes) -> bool:
        """Remove the entry for *key*; True if it existed.

        Simple leaf deletion without rebalancing: leaves may become
        underfull (or even empty, in which case scans skip them via the
        chain).  That keeps deletion crash-simple and is the right trade
        for an index whose deletions are rare maintenance events; heavy
        churn should rebuild via ``bulk_load``.
        """
        pid = self._descend(key)
        leaf = self._read_node(pid)
        i = bisect_left(leaf.keys, key)
        if i >= len(leaf.keys) or leaf.keys[i] != key:
            return False
        del leaf.keys[i]
        del leaf.values[i]
        self._write_node(pid, leaf)
        return True

    # -- bulk loading --------------------------------------------------------------

    def bulk_load(self, entries: Iterable[Entry], fill_factor: float = 0.9) -> int:
        """Build the tree from entries already sorted by key.

        Leaves are allocated consecutively so that a full scan reads pages
        sequentially, then internal levels are built bottom-up.  The tree
        must be empty.  Returns the number of entries loaded.
        """
        if not 0.1 <= fill_factor <= 1.0:
            raise ValueError("fill_factor must be in [0.1, 1.0]")
        root = self._read_node(self._root_pid)
        if isinstance(root, _InternalNode) or root.keys:
            raise TreeCorruptError("bulk_load requires an empty tree")
        budget = int(self.page_capacity * fill_factor)
        leaf_pids: List[int] = []
        first_keys: List[bytes] = []
        count = 0

        keys: List[bytes] = []
        values: List[bytes] = []
        size = _LEAF_HEADER
        prev_key: Optional[bytes] = None

        def flush_leaf() -> None:
            nonlocal keys, values, size
            pid = self.pool.pager.allocate()
            leaf_pids.append(pid)
            first_keys.append(keys[0])
            # next_leaf patched below once the following pid is known; store
            # provisional 0 now.
            self._write_node(pid, _LeafNode(keys, values, 0))
            keys, values, size = [], [], _LEAF_HEADER

        for key, value in entries:
            if prev_key is not None and key <= prev_key:
                raise TreeCorruptError(
                    f"bulk_load input not strictly sorted at key {key!r}"
                )
            prev_key = key
            self._check_entry_fits(key, value)
            entry_size = len(key) + len(value) + 4
            if keys and size + entry_size > budget:
                flush_leaf()
            keys.append(key)
            values.append(value)
            size += entry_size
            count += 1
        if keys:
            flush_leaf()
        if not leaf_pids:
            return 0

        # Patch the leaf chain (consecutive pids by construction, but be
        # explicit rather than assume allocation order).
        for i, pid in enumerate(leaf_pids[:-1]):
            node = self._read_node(pid)
            node.next_leaf = leaf_pids[i + 1]
            self._write_node(pid, node)

        level_pids = leaf_pids
        level_keys = first_keys
        while len(level_pids) > 1:
            level_pids, level_keys = self._build_internal_level(level_pids, level_keys)
        self._set_root(level_pids[0])
        return count

    def _build_internal_level(
        self, child_pids: List[int], child_first_keys: List[bytes]
    ) -> Tuple[List[int], List[bytes]]:
        """Group children into internal nodes; return the new level."""
        budget = self.page_capacity
        new_pids: List[int] = []
        new_first_keys: List[bytes] = []
        i = 0
        n = len(child_pids)
        while i < n:
            children = [child_pids[i]]
            keys: List[bytes] = []
            first_key = child_first_keys[i]
            size = _INTERNAL_HEADER + 4
            i += 1
            while i < n:
                extra = 4 + 2 + len(child_first_keys[i])
                if size + extra > budget and len(children) >= 2:
                    break
                keys.append(child_first_keys[i])
                children.append(child_pids[i])
                size += extra
                i += 1
            pid = self.pool.pager.allocate()
            self._write_node(pid, _InternalNode(keys, children))
            new_pids.append(pid)
            new_first_keys.append(first_key)
        return new_pids, new_first_keys
