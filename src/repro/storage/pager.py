"""Page-oriented file storage.

The disk substrate under the B+tree indexes: a file divided into fixed-size
pages with explicit physical-I/O accounting.  The paper's experiments hinge
on counting disk accesses (Table 1 and the cold-cache Figures 11-13), so the
pager records every physical read and write and classifies reads as
*sequential* (the page immediately after the previously read one) or
*random* — the distinction the disk cost model charges differently.

Page 0 is a header page owned by the pager itself: it stores a magic
number, the page size, and a small JSON metadata dictionary used by higher
layers (the B+tree keeps its root pointer there).

**Read-only mmap mode** (``Pager(path, readonly=True)``) maps the file
instead of streaming it through a seekable descriptor.  Page reads slice
the mapping, so the bytes come straight out of the OS page cache — one
physical copy of the index shared by every process that maps it — and the
pager carries no file-offset state, which makes a handle safe to use after
``fork()`` (a plain ``seek``/``read`` pager shares its offset with the
child and the two interleave destructively).  This is the read path the
process-pool workers use (:mod:`repro.xksearch.parallel`): N workers cost
one buffer pool's worth of physical memory, not N.  All mutating
operations raise :class:`~repro.errors.StorageError` in this mode, and
``stats.reads`` counts page *touches* rather than physical I/O (the page
cache makes true disk reads unobservable through a mapping).

**Page checksums.**  Every writable pager records a 32-bit checksum of
each page it writes into a JSON sidecar (``<path>.crc``, written
atomically on ``sync``/``close``), so write-time checksumming is always
on and costs nothing on the read path.  A pager opened with
``verify_checksums=True`` re-checksums every page it reads and raises
:class:`~repro.errors.CorruptionError` (counting
``xks_corruption_detected_total{tier="bptree"}``) on a mismatch.  Unlike
the posting segments there is no quarantine-and-retry here: the B+trees
*are* the ground truth, so a bad tree page is an unrecoverable error,
surfaced loudly rather than served silently.  Pages absent from the
sidecar (pre-sidecar files, or pages written by a crashed process) are
served unverified.
"""

from __future__ import annotations

import json
import mmap
import os
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.errors import CorruptionError, PageError, StorageError
from repro.robustness import faultinject
from repro.robustness.checksum import ALGORITHM, checksum, count_corruption

DEFAULT_PAGE_SIZE = 4096
_MAGIC = b"XKPG"
_FORMAT_VERSION = 1


def crc_sidecar_path(path: Union[str, os.PathLike]) -> str:
    """The page-checksum sidecar next to a pager file."""
    return os.fspath(path) + ".crc"


def open_readonly_mmap(path: Union[str, os.PathLike]) -> mmap.mmap:
    """Map *path* read-only and return the mapping.

    The readonly-mmap discipline factored out of ``Pager(readonly=True)``
    so other immutable on-disk structures (the packed posting segments of
    :mod:`repro.index.segments`) share it: the mapping serves bytes from
    the OS page cache — one physical copy per machine, shared across
    threads and forked workers — and holds no descriptor offset state, so
    it is safe to use after ``fork()``.  The underlying descriptor is
    closed before returning; the mapping keeps the file alive.
    """
    fh = open(os.fspath(path), "rb")
    try:
        return mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    finally:
        fh.close()


@dataclass
class IOStats:
    """Physical I/O counters maintained by the pager."""

    reads: int = 0
    writes: int = 0
    sequential_reads: int = 0
    random_reads: int = 0

    def snapshot(self) -> "IOStats":
        """An independent copy (for before/after deltas)."""
        return IOStats(self.reads, self.writes, self.sequential_reads, self.random_reads)

    def delta(self, before: "IOStats") -> "IOStats":
        """Counters accumulated since *before*."""
        return IOStats(
            self.reads - before.reads,
            self.writes - before.writes,
            self.sequential_reads - before.sequential_reads,
            self.random_reads - before.random_reads,
        )

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.sequential_reads = 0
        self.random_reads = 0

    def as_dict(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "sequential_reads": self.sequential_reads,
            "random_reads": self.random_reads,
        }


@dataclass
class CostModel:
    """Charges counted page accesses as modeled I/O time.

    Defaults approximate the paper's setting — a 2005 laptop disk holding a
    BerkeleyDB-style B-tree file: ~5 ms for a random page access (seek +
    rotation) and ~2.5 ms for a page whose predecessor was just read
    (B-tree leaf chains are only approximately physically contiguous, so
    "sequential" reads still pay short seeks).  The experiment harness
    reports modeled time = CPU time + charged I/O so the cold-cache figures
    have the paper's shape without needing a spinning disk; both constants
    are configurable, and the harness also prints raw page-access counts,
    which are model-free.
    """

    random_ms: float = 5.0
    sequential_ms: float = 2.5

    def charge(self, stats: IOStats) -> float:
        """Modeled milliseconds for the read pattern in *stats*."""
        return stats.random_reads * self.random_ms + stats.sequential_reads * self.sequential_ms


class Pager:
    """Fixed-size-page file with allocation, metadata and I/O counters."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        page_size: int = DEFAULT_PAGE_SIZE,
        create: bool = False,
        readonly: bool = False,
        verify_checksums: bool = False,
    ):
        self.path = os.fspath(path)
        self.page_size = page_size
        self.readonly = readonly
        self.verify_checksums = verify_checksums
        self.stats = IOStats()
        self._meta: Dict[str, object] = {}
        self._last_read_pid: Optional[int] = None
        self._map: Optional[mmap.mmap] = None
        self._page_crcs: Dict[int, int] = {}
        self._crc_algorithm = ALGORITHM
        self._crc_dirty = False
        self._load_crc_sidecar()
        if readonly:
            if create:
                raise StorageError("cannot create a pager file in readonly mode")
            if not os.path.exists(self.path):
                raise PageError(f"{self.path}: no such pager file")
            self._file = open(self.path, "rb")
            self._read_header()
            size = os.fstat(self._file.fileno()).st_size
            if size % self.page_size:
                raise PageError(f"file size {size} is not a multiple of page size")
            self._num_pages = max(1, size // self.page_size)
            self._remap()
            return
        if create or not os.path.exists(self.path):
            self._file = open(self.path, "w+b")
            self._num_pages = 1
            # A fresh file invalidates any sidecar left by a previous one.
            self._page_crcs = {}
            self._crc_dirty = True
            self._write_header()
        else:
            self._file = open(self.path, "r+b")
            self._read_header()
            size = os.fstat(self._file.fileno()).st_size
            if size % self.page_size:
                raise PageError(f"file size {size} is not a multiple of page size")
            self._num_pages = max(1, size // self.page_size)

    def _remap(self) -> None:
        """(Re)map the whole file for the readonly read path."""
        if self._map is not None:
            self._map.close()
        self._map = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)

    # -- checksum sidecar ----------------------------------------------------

    def _load_crc_sidecar(self) -> None:
        sidecar = crc_sidecar_path(self.path)
        if not os.path.exists(sidecar):
            return
        try:
            with open(sidecar, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            self._crc_algorithm = payload.get("algorithm", ALGORITHM)
            self._page_crcs = {
                int(pid): int(crc) for pid, crc in payload.get("crcs", {}).items()
            }
        except (ValueError, OSError):
            # An unreadable sidecar only loses verification, never data;
            # a writable pager rewrites it wholesale on the next sync.
            self._page_crcs = {}

    def _save_crc_sidecar(self) -> None:
        if not self._crc_dirty:
            return
        sidecar = crc_sidecar_path(self.path)
        tmp = sidecar + ".tmp"
        payload = {
            "algorithm": self._crc_algorithm,
            "page_size": self.page_size,
            "crcs": {str(pid): crc for pid, crc in sorted(self._page_crcs.items())},
        }
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"))
        os.replace(tmp, sidecar)
        self._crc_dirty = False

    def _note_write(self, pid: int, padded: bytes) -> None:
        self._page_crcs[pid] = checksum(padded, self._crc_algorithm)
        self._crc_dirty = True

    def _verify_page(self, pid: int, data: bytes) -> None:
        expected = self._page_crcs.get(pid)
        if expected is None:
            return
        if checksum(data, self._crc_algorithm) != expected:
            count_corruption("bptree")
            raise CorruptionError(
                f"{self.path}: page {pid} failed checksum verification",
                tier="bptree",
            )

    # -- header ------------------------------------------------------------

    def _write_header(self) -> None:
        self._check_writable()
        meta_bytes = json.dumps(self._meta).encode("utf-8")
        header = (
            _MAGIC
            + _FORMAT_VERSION.to_bytes(2, "big")
            + self.page_size.to_bytes(4, "big")
            + len(meta_bytes).to_bytes(4, "big")
            + meta_bytes
        )
        if len(header) > self.page_size:
            raise StorageError("pager metadata does not fit in the header page")
        padded = header.ljust(self.page_size, b"\x00")
        self._file.seek(0)
        self._file.write(padded)
        self.stats.writes += 1
        self._note_write(0, padded)

    def _read_header(self) -> None:
        # os.pread carries no file-offset state, so re-reading the header
        # (generation refresh) stays safe for handles shared across fork.
        raw = os.pread(self._file.fileno(), self.page_size or DEFAULT_PAGE_SIZE, 0)
        if raw[:4] != _MAGIC:
            raise PageError(f"{self.path}: not a pager file (bad magic)")
        version = int.from_bytes(raw[4:6], "big")
        if version != _FORMAT_VERSION:
            raise PageError(f"{self.path}: unsupported format version {version}")
        self.page_size = int.from_bytes(raw[6:10], "big")
        if len(raw) < self.page_size:
            raw = os.pread(self._file.fileno(), self.page_size, 0)
        meta_len = int.from_bytes(raw[10:14], "big")
        self._meta = json.loads(raw[14:14 + meta_len].decode("utf-8"))

    def reload_header(self) -> None:
        """Re-read the header page (and file size) from disk.

        Used when another pager instance — e.g. an
        :class:`~repro.index.updates.IndexUpdater` — has modified the same
        file: picks up the new metadata (B+tree root pointers) and any
        pages appended since this pager was opened.
        """
        self._read_header()
        size = os.fstat(self._file.fileno()).st_size
        self._num_pages = max(1, size // self.page_size)
        self._last_read_pid = None
        # The writer that changed the file also rewrote the sidecar.
        self._load_crc_sidecar()
        if self.readonly:
            self._remap()

    def get_meta(self, key: str, default=None):
        """Read a metadata entry from the header page."""
        return self._meta.get(key, default)

    def set_meta(self, key: str, value) -> None:
        """Write a metadata entry (persisted immediately)."""
        self._meta[key] = value
        self._write_header()

    # -- pages -------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def allocate(self) -> int:
        """Reserve a fresh page id (contents undefined until written)."""
        self._check_writable()
        pid = self._num_pages
        self._num_pages += 1
        return pid

    def read_page(self, pid: int) -> bytes:
        """Physically read page *pid*, updating the I/O counters."""
        self._check_pid(pid)
        if self._map is not None:
            offset = pid * self.page_size
            if offset + self.page_size > len(self._map):
                # The file grew since the mapping was made (an updater
                # appended pages); remap to cover the new tail.
                self._remap()
            data = self._map[offset:offset + self.page_size]
        else:
            self._file.seek(pid * self.page_size)
            data = self._file.read(self.page_size)
        if len(data) < self.page_size:
            data = data.ljust(self.page_size, b"\x00")
        faultinject.maybe_delay("delay-io")
        if self.verify_checksums:
            self._verify_page(pid, data)
        self.stats.reads += 1
        if self._last_read_pid is not None and pid == self._last_read_pid + 1:
            self.stats.sequential_reads += 1
        else:
            self.stats.random_reads += 1
        self._last_read_pid = pid
        return data

    def write_page(self, pid: int, data: bytes) -> None:
        """Physically write page *pid* (data padded/validated to page size)."""
        self._check_writable()
        self._check_pid(pid)
        if len(data) > self.page_size:
            raise PageError(
                f"page image of {len(data)} bytes exceeds page size {self.page_size}"
            )
        padded = data.ljust(self.page_size, b"\x00")
        self._file.seek(pid * self.page_size)
        self._file.write(padded)
        self.stats.writes += 1
        self._note_write(pid, padded)

    def _check_pid(self, pid: int) -> None:
        if pid < 1 or pid >= self._num_pages:
            raise PageError(f"page id {pid} out of range [1, {self._num_pages})")

    def _check_writable(self) -> None:
        if self.readonly:
            raise StorageError(f"{self.path}: pager opened readonly (mmap mode)")

    def reset_read_sequence(self) -> None:
        """Forget the last-read page so the next read counts as random."""
        self._last_read_pid = None

    # -- lifecycle ----------------------------------------------------------

    def sync(self) -> None:
        self._check_writable()
        self._file.flush()
        os.fsync(self._file.fileno())
        self._save_crc_sidecar()

    def close(self) -> None:
        if self._map is not None:
            self._map.close()
            self._map = None
        if not self._file.closed:
            if not self.readonly:
                self._file.flush()
                self._save_crc_sidecar()
            self._file.close()

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
