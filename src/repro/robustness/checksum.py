"""Checksum support for the storage layer.

One function pair used by both checksummed formats (the packed posting
segments and the pager's page-checksum sidecar): :func:`checksum` over a
bytes-like, and :data:`ALGORITHM` naming which polynomial produced it.

CRC32C (Castagnoli) is the preferred algorithm — it is what real storage
engines use and hardware-accelerated implementations exist — but it is
not in the Python standard library and this codebase adds no
dependencies, so when the optional ``crc32c`` module is absent we fall
back to ``zlib.crc32`` (C speed, different polynomial, same 32-bit
error-detection role).  The algorithm actually used is recorded in each
file's header flags, so a reader always verifies with the writer's
polynomial; a file written under one algorithm and read on a machine
with the other available is still verified correctly (the reader picks
the implementation the flags name, or reports it unavailable).
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional

try:  # pragma: no cover - exercised only where the wheel is installed
    import crc32c as _crc32c_mod

    _crc32c: Optional[Callable[[bytes], int]] = _crc32c_mod.crc32c
except ImportError:  # pragma: no cover - the stdlib path is the tested one
    _crc32c = None

#: Algorithm names, stable across releases (stored in file flags).
CRC32C = "crc32c"
ZLIB_CRC32 = "crc32"

#: The algorithm this process writes with.
ALGORITHM = CRC32C if _crc32c is not None else ZLIB_CRC32


def checksum(data, algorithm: str = ALGORITHM) -> int:
    """32-bit checksum of *data* under *algorithm*.

    Raises :class:`ValueError` for an unknown algorithm name and
    :class:`RuntimeError` when the named algorithm is not available in
    this process (a crc32c-stamped file read where only zlib exists).
    """
    if algorithm == ZLIB_CRC32:
        return zlib.crc32(bytes(data)) & 0xFFFFFFFF
    if algorithm == CRC32C:
        if _crc32c is None:
            raise RuntimeError(
                "file is checksummed with crc32c but no crc32c "
                "implementation is available in this process"
            )
        return _crc32c(bytes(data)) & 0xFFFFFFFF
    raise ValueError(f"unknown checksum algorithm {algorithm!r}")


def count_corruption(tier: str) -> None:
    """Count one detected corruption under ``xks_corruption_detected_total``.

    Shared by every tier's detection site so the label set stays uniform;
    the metrics import is deferred so the storage layer never touches the
    registry at import time.
    """
    from repro.obs.metrics import get_registry, instrumentation_enabled

    if instrumentation_enabled():
        get_registry().counter(
            "xks_corruption_detected_total",
            "Checksum mismatches or decode failures detected, by storage tier.",
            labelnames=("tier",),
        ).labels(tier=tier).inc()


def algorithm_flag(algorithm: str = ALGORITHM) -> int:
    """The header-flag bit value recording *algorithm* (0=crc32, 1=crc32c)."""
    if algorithm == ZLIB_CRC32:
        return 0
    if algorithm == CRC32C:
        return 1
    raise ValueError(f"unknown checksum algorithm {algorithm!r}")


def algorithm_from_flag(flag: int) -> str:
    """Inverse of :func:`algorithm_flag`."""
    return CRC32C if flag else ZLIB_CRC32
