"""Deterministic, seeded fault injection.

Every degradation path in docs/ROBUSTNESS.md has an injection point so
tests and the CI chaos phase exercise it on every run instead of waiting
for real hardware to misbehave.  Faults are **off by default and free
when off**: each site calls :func:`fire`, which is a module-global
``None`` check until a plan is armed.

Activation
----------

``REPRO_FAULTS`` (environment) or ``serve --inject-fault SPEC``
(repeatable; the flag writes the env var before the worker pool forks,
so every worker inherits the same plan).  A plan is a comma-separated
list of specs::

    point[:every=N][:after=N][:times=M][:prob=P][:seed=S][:ms=D]

* ``point`` — one of :data:`POINTS` below;
* ``after=N`` — skip the first N arrivals at the site;
* ``every=N`` — then fire on every Nth arrival (default 1 = always);
* ``times=M`` — fire at most M times total (default unlimited);
* ``prob=P`` — fire with probability P instead of deterministically,
  from a private ``random.Random(seed)`` stream (``seed=S``, default 0)
  so a given plan replays identically;
* ``ms=D`` — site parameter for ``delay-io`` (sleep duration).

Counting is **per process**: a forked worker starts its own arrival
counters, so ``kill-worker:after=2`` kills each worker on its third
task, deterministically, regardless of scheduling in the parent.

Points
------

============== ==============================================================
kill-worker     pool worker calls ``os._exit`` instead of executing a task
delay-io        storage read paths sleep ``ms`` before returning
corrupt-block   a segment posting block's bytes are bit-flipped before decode
fail-export     the export sink raises instead of delivering a batch
expired-deadline a request's deadline is already expired at admission
============== ==============================================================

Every firing increments ``xks_faults_injected_total{point}``.
"""

from __future__ import annotations

import os
import random
import threading
from typing import Dict, List, Optional

#: Recognized injection points.
POINTS = (
    "kill-worker",
    "delay-io",
    "corrupt-block",
    "fail-export",
    "expired-deadline",
)

ENV_VAR = "REPRO_FAULTS"


class FaultSpec:
    """One armed injection point with its firing schedule."""

    __slots__ = ("point", "every", "after", "times", "prob", "seed", "ms",
                 "arrivals", "fired", "_rng")

    def __init__(
        self,
        point: str,
        every: int = 1,
        after: int = 0,
        times: Optional[int] = None,
        prob: Optional[float] = None,
        seed: int = 0,
        ms: float = 0.0,
    ):
        if point not in POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; expected one of {POINTS}"
            )
        if every < 1:
            raise ValueError("every must be at least 1")
        if after < 0:
            raise ValueError("after must be non-negative")
        if times is not None and times < 1:
            raise ValueError("times must be at least 1")
        if prob is not None and not (0.0 <= prob <= 1.0):
            raise ValueError("prob must be in [0, 1]")
        self.point = point
        self.every = every
        self.after = after
        self.times = times
        self.prob = prob
        self.seed = seed
        self.ms = ms
        self.arrivals = 0
        self.fired = 0
        self._rng = random.Random(seed) if prob is not None else None

    @classmethod
    def parse(cls, spec: str) -> "FaultSpec":
        parts = [part.strip() for part in spec.split(":") if part.strip()]
        if not parts:
            raise ValueError("empty fault spec")
        point, kwargs = parts[0], {}
        for part in parts[1:]:
            if "=" not in part:
                raise ValueError(f"bad fault option {part!r} (expected key=value)")
            key, value = part.split("=", 1)
            if key in ("every", "after", "times", "seed"):
                kwargs[key] = int(value)
            elif key == "prob":
                kwargs[key] = float(value)
            elif key == "ms":
                kwargs[key] = float(value)
            else:
                raise ValueError(f"unknown fault option {key!r}")
        return cls(point, **kwargs)

    def should_fire(self) -> bool:
        """Advance this site's arrival counter and decide (thread-unsafe
        by itself; :class:`FaultPlan` serializes calls)."""
        self.arrivals += 1
        if self.times is not None and self.fired >= self.times:
            return False
        if self.arrivals <= self.after:
            return False
        if self._rng is not None:
            decision = self._rng.random() < self.prob
        else:
            decision = (self.arrivals - self.after - 1) % self.every == 0
        if decision:
            self.fired += 1
        return decision

    def describe(self) -> str:
        opts = []
        if self.after:
            opts.append(f"after={self.after}")
        if self.every != 1:
            opts.append(f"every={self.every}")
        if self.times is not None:
            opts.append(f"times={self.times}")
        if self.prob is not None:
            opts.append(f"prob={self.prob}:seed={self.seed}")
        if self.ms:
            opts.append(f"ms={self.ms:g}")
        return ":".join([self.point] + opts)


class FaultPlan:
    """The set of armed specs for this process (thread-safe)."""

    def __init__(self, specs: List[FaultSpec]):
        self._specs: Dict[str, FaultSpec] = {spec.point: spec for spec in specs}
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs = [
            FaultSpec.parse(part)
            for part in text.split(",")
            if part.strip()
        ]
        return cls(specs)

    def fire(self, point: str) -> Optional[FaultSpec]:
        """The spec when *point* fires this arrival, else None."""
        spec = self._specs.get(point)
        if spec is None:
            return None
        with self._lock:
            fired = spec.should_fire()
        if not fired:
            return None
        _count_fired(point)
        return spec

    def spec(self, point: str) -> Optional[FaultSpec]:
        return self._specs.get(point)

    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self._specs.values())


# -- process-global plan ------------------------------------------------------

_plan: Optional[FaultPlan] = None
_plan_loaded = False
_plan_lock = threading.Lock()


def _count_fired(point: str) -> None:
    # Imported here so the metrics registry is only touched when a fault
    # actually fires (and never at import time from the storage layer).
    from repro.obs.metrics import get_registry, instrumentation_enabled

    if instrumentation_enabled():
        get_registry().counter(
            "xks_faults_injected_total",
            "Injected faults fired, by injection point.",
            labelnames=("point",),
        ).labels(point=point).inc()


def get_plan() -> Optional[FaultPlan]:
    """The process's armed plan (parsed from ``REPRO_FAULTS`` once)."""
    global _plan, _plan_loaded
    if not _plan_loaded:
        with _plan_lock:
            if not _plan_loaded:
                text = os.environ.get(ENV_VAR, "")
                _plan = FaultPlan.parse(text) if text.strip() else None
                _plan_loaded = True
    return _plan


def arm(specs: str) -> FaultPlan:
    """Arm a plan directly (used by ``serve --inject-fault`` and tests).

    Also writes ``REPRO_FAULTS`` so processes forked after this call
    inherit the plan and re-parse it with fresh per-process counters.
    """
    global _plan, _plan_loaded
    with _plan_lock:
        os.environ[ENV_VAR] = specs
        _plan = FaultPlan.parse(specs)
        _plan_loaded = True
    return _plan


def reset_plan() -> None:
    """Disarm (tests); also clears the environment hand-off."""
    global _plan, _plan_loaded
    with _plan_lock:
        os.environ.pop(ENV_VAR, None)
        _plan = None
        _plan_loaded = True


def fire(point: str) -> Optional[FaultSpec]:
    """Should *point* fire at this arrival?  None when off (the fast path)."""
    plan = get_plan()
    if plan is None:
        return None
    return plan.fire(point)


def maybe_delay(point: str = "delay-io") -> None:
    """Sleep the spec's ``ms`` when *point* fires (storage read paths)."""
    spec = fire(point)
    if spec is not None and spec.ms > 0:
        import time

        time.sleep(spec.ms / 1000.0)


def corrupt_bytes(data: bytes) -> bytes:
    """Flip one bit near the middle of *data* (the corrupt-block payload)."""
    if not data:
        return data
    out = bytearray(data)
    out[len(out) // 2] ^= 0x40
    return bytes(out)
