"""Cross-layer robustness: deadlines, overload control, fault injection.

The failure-path half of the serving stack (docs/ROBUSTNESS.md):

* :mod:`repro.robustness.deadline` — end-to-end request deadlines with
  cooperative checkpoints inside the algorithm loops;
* :mod:`repro.robustness.admission` — bounded admission gate shedding
  load (429) by in-flight depth and recent-window p99, cheap |S1| bands
  admitted preferentially;
* :mod:`repro.robustness.breaker` — circuit breaker over the worker
  pool (open after consecutive dispatch failures, half-open probe);
* :mod:`repro.robustness.checksum` — the CRC implementation shared by
  the packed posting segments and the pager sidecar;
* :mod:`repro.robustness.faultinject` — deterministic, seeded fault
  injection points driven by ``REPRO_FAULTS`` / ``serve --inject-fault``.
"""

from repro.robustness.admission import AdmissionGate
from repro.robustness.breaker import CircuitBreaker
from repro.robustness.deadline import (
    Deadline,
    bind_deadline,
    checkpoint,
    current_deadline,
)
from repro.robustness.faultinject import FaultPlan, fire, reset_plan

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "Deadline",
    "FaultPlan",
    "bind_deadline",
    "checkpoint",
    "current_deadline",
    "fire",
    "reset_plan",
]
