"""Bounded admission gate: shed load before it queues unboundedly.

The server's worker semaphore bounds *executing* requests, but threads
blocked on it queue without limit — under sustained overload every
request eventually times out instead of a few failing fast.  The gate
sheds with **429 + Retry-After** at two watermarks over the in-flight
depth (counted before the semaphore, so queued waiters are visible):

* past the **hard** watermark every search request is shed;
* past the **soft** watermark — or while the recent-window p99 exceeds
  ``p99_watermark_ms`` — only *expensive* queries are shed.  Expense is
  the paper's cost axis: every complexity bound is driven by ``|S1|``
  (the smallest keyword-list frequency), so requests are classified by
  their plan's frequency band and the cheap bands keep flowing.  This
  keeps goodput high under overload: the queries shed are exactly the
  ones that would have held a worker longest.

Decisions count ``xks_admission_shed_total{reason}``; the live depth is
the ``xks_inflight_requests`` gauge.  The p99 over the latency ring is
cached and recomputed at most every ``p99_refresh_s`` so the per-request
cost stays O(1).
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry, instrumentation_enabled

#: Bands shed first under soft overload (the expensive end of the
#: paper's |S1| axis); cheaper bands are admitted preferentially.
EXPENSIVE_BANDS = ("100-999", "1000+")

#: Latency samples kept for the p99 watermark.
_WINDOW = 512

_log = get_logger("admission")


class AdmissionGate:
    """Watermark-based load shedding over an in-flight request counter."""

    def __init__(
        self,
        soft_limit: int,
        hard_limit: int,
        p99_watermark_ms: Optional[float] = None,
        p99_refresh_s: float = 0.5,
        retry_after_s: int = 1,
        window: int = _WINDOW,
    ):
        if soft_limit < 1:
            raise ValueError("soft_limit must be at least 1")
        if hard_limit < soft_limit:
            raise ValueError("hard_limit must be >= soft_limit")
        self.soft_limit = soft_limit
        self.hard_limit = hard_limit
        self.p99_watermark_ms = p99_watermark_ms
        self.p99_refresh_s = p99_refresh_s
        self.retry_after_s = retry_after_s
        self._window = window
        self._lock = threading.Lock()
        self._inflight = 0
        self._latencies: List[float] = []
        self._cached_p99 = 0.0
        self._p99_stamp = 0.0
        self.shed = 0
        self.admitted = 0

    # -- in-flight accounting ------------------------------------------------

    def enter(self) -> None:
        """A request arrived (call before any queueing/semaphore wait)."""
        with self._lock:
            self._inflight += 1
            depth = self._inflight
        if instrumentation_enabled():
            self._gauge().set(depth)

    def exit(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            depth = self._inflight
        if instrumentation_enabled():
            self._gauge().set(depth)

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def _gauge(self):
        return get_registry().gauge(
            "xks_inflight_requests",
            "Requests currently in flight (queued or executing).",
        )

    # -- latency window ------------------------------------------------------

    def note_latency(self, elapsed_ms: float) -> None:
        """Feed one finished request's latency into the p99 window."""
        with self._lock:
            self._latencies.append(elapsed_ms)
            if len(self._latencies) > self._window:
                del self._latencies[: -self._window]

    def window_p99(self) -> float:
        """The recent-window p99, cached for ``p99_refresh_s``."""
        now = time.monotonic()
        with self._lock:
            if now - self._p99_stamp >= self.p99_refresh_s:
                if self._latencies:
                    ordered = sorted(self._latencies)
                    index = min(
                        len(ordered) - 1, int(0.99 * (len(ordered) - 1) + 0.5)
                    )
                    self._cached_p99 = ordered[index]
                else:
                    self._cached_p99 = 0.0
                self._p99_stamp = now
            return self._cached_p99

    # -- the decision --------------------------------------------------------

    def decide(self, band: Optional[str] = None) -> Optional[str]:
        """Admit (None) or shed (the reason string) one search request.

        *band* is the query plan's |S1| frequency band when known;
        ``None`` (unplannable/unknown) is treated as expensive — an
        unknown cost must not slip past a saturation watermark.
        """
        with self._lock:
            depth = self._inflight
        if depth > self.hard_limit:
            return self._shed("hard_limit", band)
        expensive = band is None or band in EXPENSIVE_BANDS
        if depth > self.soft_limit and expensive:
            return self._shed("soft_limit", band)
        if (
            self.p99_watermark_ms is not None
            and expensive
            and self.window_p99() > self.p99_watermark_ms
        ):
            return self._shed("p99_watermark", band)
        with self._lock:
            self.admitted += 1
        return None

    def _shed(self, reason: str, band: Optional[str]) -> str:
        with self._lock:
            self.shed += 1
        _log.warning("request_shed", reason=reason, band=band or "unknown")
        if instrumentation_enabled():
            get_registry().counter(
                "xks_admission_shed_total",
                "Search requests shed by the admission gate, by watermark.",
                labelnames=("reason",),
            ).labels(reason=reason).inc()
        return reason

    # -- observability -------------------------------------------------------

    def stats_dict(self) -> dict:
        with self._lock:
            return {
                "inflight": self._inflight,
                "soft_limit": self.soft_limit,
                "hard_limit": self.hard_limit,
                "p99_watermark_ms": self.p99_watermark_ms,
                "window_p99_ms": round(self._cached_p99, 3),
                "admitted": self.admitted,
                "shed": self.shed,
            }
