"""End-to-end request deadlines with cooperative checkpoints.

A :class:`Deadline` is an absolute point on the monotonic clock.  The
serving layer derives one per request (``X-Deadline-Ms`` header,
``?timeout_ms=`` parameter, or ``serve --default-timeout-ms``), binds it
to the handling thread with :func:`bind_deadline`, and everything
downstream — the engine, the algorithm loops, the worker-pool dispatch —
observes it through :func:`current_deadline` without any parameter
threading.

The hot loops (IL/Scan Eager's per-``S1``-entry iteration, the stack
merges) call :func:`checkpoint` once per iteration.  The common case —
no deadline bound — is a single contextvar read; with a deadline bound,
the clock is only consulted every :data:`CHECK_STRIDE` calls, so the
steady-state cost is amortized to a counter increment (this is what
keeps the ``robustness_overhead`` bench phase ≤ 3%).  On expiry the
checkpoint raises :class:`~repro.errors.DeadlineExceeded` carrying the
phase name, which the server turns into a structured 504.

Cross-process propagation: a monotonic clock is process-local, so the
task envelope carries the deadline as an **absolute wall-clock** expiry
(:meth:`Deadline.wall_expiry`); the worker reconstructs the remaining
budget against its own clocks (:meth:`Deadline.from_wall_expiry`).  The
two machines' wall clocks are the same machine here (fork), so the only
skew is the pipe latency the deadline is meant to cover anyway.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.errors import DeadlineExceeded

#: checkpoint() consults the clock once per this many calls.
CHECK_STRIDE = 256

_current: "ContextVar[Optional[Deadline]]" = ContextVar(
    "xks_deadline", default=None
)


class Deadline:
    """An absolute expiry on the monotonic clock, with amortized checks."""

    __slots__ = ("expires_at", "budget_ms", "_ticks")

    def __init__(self, expires_at: float, budget_ms: Optional[float] = None):
        self.expires_at = expires_at
        self.budget_ms = budget_ms
        self._ticks = 0

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        """A deadline *budget_ms* from now."""
        return cls(time.monotonic() + budget_ms / 1000.0, budget_ms=budget_ms)

    @classmethod
    def from_wall_expiry(cls, wall_expiry: float) -> "Deadline":
        """Rebuild a deadline in another process from its wall-clock expiry."""
        remaining = wall_expiry - time.time()
        return cls(time.monotonic() + remaining, budget_ms=remaining * 1000.0)

    def wall_expiry(self) -> float:
        """The expiry as wall-clock epoch seconds (for task envelopes)."""
        return time.time() + self.remaining_s()

    def remaining_s(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def remaining_ms(self) -> float:
        return self.remaining_s() * 1000.0

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, phase: str = "execute") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired():
            raise DeadlineExceeded(
                f"deadline exceeded in {phase} "
                f"(budget {self.budget_ms:.0f} ms)" if self.budget_ms is not None
                else f"deadline exceeded in {phase}",
                phase=phase,
            )

    def tick(self, phase: str) -> None:
        """Amortized check: consult the clock every CHECK_STRIDE calls."""
        self._ticks += 1
        if self._ticks >= CHECK_STRIDE:
            self._ticks = 0
            self.check(phase)

    def __repr__(self) -> str:
        return f"Deadline(remaining_ms={self.remaining_ms():.1f})"


def current_deadline() -> Optional[Deadline]:
    """The deadline bound to this execution context, if any."""
    return _current.get()


@contextmanager
def bind_deadline(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Bind *deadline* for the duration of the block (None = unbind)."""
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


def checkpoint(phase: str = "execute") -> None:
    """Cooperative cancellation point for hot loops.

    A no-op (one contextvar read) when no deadline is bound; with one
    bound, an amortized clock check that raises
    :class:`~repro.errors.DeadlineExceeded` once the budget is gone.
    """
    deadline = _current.get()
    if deadline is not None:
        deadline.tick(phase)
