"""Circuit breaker over the worker pool.

Before this existed, pool failure handling was purely reactive: every
dispatch paid the full discovery cost (checkout, possibly a task
timeout) before falling back in-thread, and once the respawn budget was
exhausted the pool silently degraded to a permanent per-request failure
loop.  The breaker makes the degraded state explicit and cheap:

* **closed** — dispatches flow; consecutive failures are counted
  (any success resets the streak);
* **open** — after ``failure_threshold`` consecutive failures the
  breaker opens for ``cooldown_s``: dispatches are refused up front
  (the engine executes in-thread immediately, reason
  ``breaker_open``), so a dead pool costs nothing per request;
* **half-open** — after the cooldown, exactly one probe dispatch is
  allowed through; success closes the breaker, failure re-opens it for
  another cooldown.

State is exported as ``xks_breaker_state`` (0=closed, 1=half-open,
2=open) and every transition counts ``xks_breaker_transitions_total{to}``.
"""

from __future__ import annotations

import threading
import time

from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry, instrumentation_enabled

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

#: Consecutive failures that open the breaker.
DEFAULT_FAILURE_THRESHOLD = 5

#: Seconds the breaker stays open before allowing a probe.
DEFAULT_COOLDOWN_S = 10.0

_log = get_logger("breaker")


class CircuitBreaker:
    """Three-state breaker; thread-safe, monotonic-clock based."""

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        name: str = "pool",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.name = name
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.transitions = 0
        self._publish(CLOSED)

    # -- decisions -----------------------------------------------------------

    def allow(self) -> bool:
        """May a dispatch go to the pool right now?

        In the open state this flips to half-open (and admits the single
        probe) once the cooldown has elapsed.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if time.monotonic() - self._opened_at < self.cooldown_s:
                    return False
                self._transition(HALF_OPEN)
                self._probe_in_flight = True
                return True
            # half-open: exactly one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probe_in_flight = False
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            if self._state == HALF_OPEN:
                # The probe failed: back to a full cooldown.
                self._opened_at = time.monotonic()
                self._transition(OPEN)
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._opened_at = time.monotonic()
                self._transition(OPEN)

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def stats_dict(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "transitions": self.transitions,
            }

    def _transition(self, to: str) -> None:
        """Move to *to* (caller holds the lock)."""
        if to == self._state:
            return
        _log.warning(
            "breaker_transition", name=self.name, from_=self._state, to=to,
            failures=self._failures,
        )
        self._state = to
        self.transitions += 1
        self._publish(to)
        if instrumentation_enabled():
            get_registry().counter(
                "xks_breaker_transitions_total",
                "Circuit-breaker state transitions, by target state.",
                labelnames=("breaker", "to"),
            ).labels(breaker=self.name, to=to).inc()

    def _publish(self, state: str) -> None:
        if instrumentation_enabled():
            get_registry().gauge(
                "xks_breaker_state",
                "Circuit-breaker state (0=closed, 1=half-open, 2=open).",
                labelnames=("breaker",),
            ).labels(breaker=self.name).set(_STATE_VALUES[state])
