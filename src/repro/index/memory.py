"""In-memory keyword index.

The disk-free counterpart of :class:`~repro.index.inverted.DiskKeywordIndex`
with the same query-facing surface: keyword lists held as sorted arrays,
matches by binary search or cursor.  This is what library users get when
they search a parsed tree directly without building an index directory, and
what the main-memory complexity experiments (Table 1's first column) run
against.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.counters import OpCounters
from repro.core.sources import CursorListSource, SortedListSource
from repro.index.frequency import FrequencyTable
from repro.xmltree.dewey import DeweyTuple
from repro.xmltree.tree import XMLTree


class MemoryKeywordIndex:
    """Keyword lists in memory behind the index interface.

    Accepts plain Dewey lists, or ``(dewey, context-tag)`` posting lists
    (what :meth:`from_tree` builds); with tags present, tag-qualified
    lookups (``keyword_list(kw, tag=...)``) become available.
    """

    def __init__(self, keyword_lists: Dict[str, Sequence]):
        self._lists: Dict[str, List[DeweyTuple]] = {}
        self._tags: Dict[str, List[str]] = {}
        for kw, lst in keyword_lists.items():
            key = kw.lower()
            deweys: List[DeweyTuple] = []
            tags: List[str] = []
            tagged = False
            for item in lst:
                if item and isinstance(item[0], tuple):
                    dewey, tag = item
                    tagged = True
                else:
                    dewey, tag = item, ""
                deweys.append(dewey)
                tags.append(tag.lower())
            self._lists[key] = deweys
            if tagged:
                self._tags[key] = tags
        for kw, lst in self._lists.items():
            if any(lst[i] >= lst[i + 1] for i in range(len(lst) - 1)):
                raise ValueError(f"keyword list for {kw!r} is not strictly sorted")
        self.frequency_table = FrequencyTable.from_lists(self._lists)

    @classmethod
    def from_tree(cls, tree: XMLTree) -> "MemoryKeywordIndex":
        return cls(tree.keyword_postings())

    # -- catalogue ------------------------------------------------------------

    def generation(self) -> int:
        """In-memory indexes are immutable: one generation, forever valid."""
        return 0

    def frequency(self, keyword: str) -> int:
        return self.frequency_table.frequency(keyword)

    def keywords(self) -> List[str]:
        return sorted(self._lists)

    def __contains__(self, keyword: str) -> bool:
        return keyword.lower() in self._lists

    def __len__(self) -> int:
        return len(self._lists)

    # -- access primitives -------------------------------------------------------

    def keyword_list(
        self, keyword: str, tag: Optional[str] = None
    ) -> List[DeweyTuple]:
        """Keyword list, optionally restricted to a context tag."""
        key = keyword.lower()
        deweys = self._lists.get(key, [])
        if tag is None:
            return list(deweys)
        tags = self._tags.get(key)
        if tags is None:
            return []  # untagged index: a tag filter can never match
        wanted = tag.lower()
        return [d for d, t in zip(deweys, tags) if t == wanted]

    def scan(self, keyword: str) -> Iterator[DeweyTuple]:
        return iter(self._lists.get(keyword.lower(), []))

    def sources_for(
        self,
        keywords: Sequence[str],
        mode: str = "indexed",
        counters: Optional[OpCounters] = None,
    ) -> List:
        """Match sources for a query (indexed = bisect, scan = cursor)."""
        counters = counters if counters is not None else OpCounters()
        sources: List = []
        for keyword in keywords:
            lst = self._lists.get(keyword.lower(), [])
            if mode == "indexed":
                sources.append(SortedListSource(lst, counters))
            elif mode == "scan":
                sources.append(CursorListSource(lst, counters))
            else:
                raise ValueError(f"unknown source mode {mode!r}")
        return sources
