"""Index layer: builders, the frequency table, disk and memory indexes."""

from repro.index.builder import (
    CODECS,
    IndexBuildReport,
    build_index,
    load_manifest,
    make_codec,
)
from repro.index.frequency import FrequencyTable
from repro.index.inverted import DiskIndexedSource, DiskKeywordIndex
from repro.index.memory import MemoryKeywordIndex
from repro.index.segments import PackedListSource, SegmentReader, write_segments
from repro.index.updates import IndexUpdater
from repro.index.verify import VerifyReport, verify_index

__all__ = [
    "CODECS",
    "DiskIndexedSource",
    "DiskKeywordIndex",
    "FrequencyTable",
    "IndexBuildReport",
    "IndexUpdater",
    "MemoryKeywordIndex",
    "PackedListSource",
    "SegmentReader",
    "VerifyReport",
    "build_index",
    "load_manifest",
    "make_codec",
    "verify_index",
    "write_segments",
]
