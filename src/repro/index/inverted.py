"""Disk-backed keyword index and its match sources.

:class:`DiskKeywordIndex` opens an index directory produced by
:func:`repro.index.builder.build_index` and exposes the paper's access
primitives over the B+trees:

* ``lm`` / ``rm`` — descend the ``il`` tree (keyword ⊕ dewey composite
  keys) with ``floor_entry`` / ``ceiling_entry`` clamped to the keyword's
  key range;
* ``scan`` — stream a keyword's Dewey numbers from the ``scan`` tree's
  packed blocks (sequential leaf I/O);
* a **segment fast path** — when the packed posting segments
  (:mod:`repro.index.segments`) are present and current, ``lm``/``rm``
  are answered by skip-table bisect + in-block galloping over the
  mmap'd segment file and ``scan`` streams decoded blocks, skipping the
  B+trees entirely; a generation mismatch (an updater ran) falls back
  to the trees with byte-identical results;
* cache-temperature control — ``make_cold()`` empties the buffer pool so
  the next query pays physical reads; by default the B+trees' internal
  pages are pinned, realizing the "non-leaf nodes are cached" assumption of
  the paper's disk-access analysis (Table 1).

``sources_for`` wires keyword lists into the algorithm layer: indexed
sources for IL, lazy cursor sources for Scan Eager, plain scans for Stack.

Concurrency: the read path is thread-safe — every page access is
serialized by the buffer pool's lock, and the remaining per-query state
(sources, cursors, codecs) is private to each call — so one
:class:`DiskKeywordIndex` may serve any number of query threads (this is
what the threaded demo server relies on).  Writes are not concurrent:
:class:`~repro.index.updates.IndexUpdater` must run with no in-flight
queries on the same directory; afterwards, open handles observe the bumped
index *generation* (see :mod:`repro.xksearch.cache`) and transparently
reload their on-disk state.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.counters import OpCounters
from repro.core.sources import LazyCursorSource
from repro.errors import IndexFormatError, IndexNotFoundError
from repro.index.builder import (
    DOCUMENT_NAME,
    FREQUENCY_NAME,
    INDEX_FILE_NAME,
    LEVEL_TABLE_NAME,
    MANIFEST_NAME,
    TAGS_NAME,
    load_manifest,
    make_codec,
)
from repro.index.frequency import FrequencyTable
from repro.index.segments import PackedListSource, SegmentReader, segments_path
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry, instrumentation_enabled
from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.storage.records import keyword_range, posting_key, unpack_tagged_block
from repro.xmltree.dewey import DeweyTuple
from repro.xmltree.level_table import LevelTable

_log = get_logger("index")


class DiskIndexedSource:
    """IL's disk match source: B+tree lookups within one keyword's range.

    IL probes each list with ``lm(x)`` then ``rm(x)`` at the same value
    (``slca_candidate``), so both answers are fetched in **one** tree
    descent (:meth:`~repro.storage.bptree.BPlusTree.neighbors`) and the
    second call at the same probe is answered from memory — halving
    descents per candidate while still counting one ``lm_op`` and one
    ``rm_op``, exactly the paper's cost model.
    """

    def __init__(self, index: "DiskKeywordIndex", keyword: str, counters: OpCounters):
        self._index = index
        self._keyword = keyword
        self._lo, self._hi = keyword_range(keyword)
        self._length = index.frequency(keyword)
        self._last_probe: Optional[
            Tuple[DeweyTuple, Optional[DeweyTuple], Optional[DeweyTuple]]
        ] = None
        self.counters = counters

    def _neighbors(self, v: DeweyTuple) -> Tuple[Optional[DeweyTuple], Optional[DeweyTuple]]:
        last = self._last_probe
        if last is not None and last[0] == v:
            return last[1], last[2]
        probe = posting_key(self._keyword, self._index.codec.encode(v))
        floor, ceiling = self._index.il_tree.neighbors(probe)
        prefix_len = len(self._lo)
        left = (
            None
            if floor is None or floor[0] < self._lo
            else self._index.codec.decode(floor[0][prefix_len:])
        )
        right = (
            None
            if ceiling is None or ceiling[0] >= self._hi
            else self._index.codec.decode(ceiling[0][prefix_len:])
        )
        self._last_probe = (v, left, right)
        return left, right

    def lm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        self.counters.lm_ops += 1
        return self._neighbors(v)[0]

    def rm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        self.counters.rm_ops += 1
        return self._neighbors(v)[1]

    def scan(self) -> Iterator[DeweyTuple]:
        decode = self._index.codec.decode
        prefix_len = len(self._lo)
        for key, _ in self._index.il_tree.scan(self._lo, self._hi):
            yield decode(key[prefix_len:])

    def __len__(self) -> int:
        return self._length


class DiskKeywordIndex:
    """An opened XKSearch index directory.

    ``mmap_mode=True`` opens the page file readonly through a shared
    memory mapping (see :class:`~repro.storage.pager.Pager`): page reads
    come from the OS page cache — one physical copy shared by every
    process mapping the index — and the handle carries no file-offset
    state, making it the read mode for forked worker processes
    (:mod:`repro.xksearch.parallel`).  The API is identical; only writes
    (which this class never performs) are forbidden underneath.

    ``use_segments`` (default on) reads ``lm``/``rm``/``scan`` through
    the packed posting segments (:mod:`repro.index.segments`) whenever
    the segment file exists and its generation matches the live one;
    otherwise — no file, a stale file after an updater bump, or
    ``use_segments=False`` — every read transparently falls back to the
    B+trees with byte-identical results.  ``xks_segment_sources_total{tier}``
    counts which tier served each source.
    """

    def __init__(
        self,
        index_dir: Union[str, os.PathLike],
        pool_capacity: int = 4096,
        pin_internal: bool = True,
        mmap_mode: bool = False,
        use_segments: bool = True,
        verify_checksums: bool = False,
    ):
        # Imported lazily: repro.xksearch imports this module at package
        # init, so a top-level import here would be circular.
        from repro.xksearch.cache import seed_generation

        self.index_dir = os.fspath(index_dir)
        self.manifest = load_manifest(self.index_dir)
        self.mmap_mode = mmap_mode
        self._pin_internal = pin_internal
        self._refresh_lock = threading.RLock()
        self._manifest_path = os.path.join(self.index_dir, MANIFEST_NAME)
        self._manifest_mtime_ns = self._stat_manifest()
        self._seen_generation = seed_generation(
            self.index_dir, self.manifest.get("generation", 0)
        )
        level_path = os.path.join(self.index_dir, LEVEL_TABLE_NAME)
        if not os.path.exists(level_path):
            raise IndexNotFoundError(f"missing level table at {level_path}")
        with open(level_path, "r", encoding="utf-8") as fh:
            self.level_table = LevelTable.from_json(fh.read())
        self.codec = make_codec(self.manifest["codec"], self.level_table)
        self._load_metadata()
        index_file = os.path.join(self.index_dir, INDEX_FILE_NAME)
        if not os.path.exists(index_file):
            # The pager would silently create an empty file, turning a
            # damaged installation into silently-empty search results.
            raise IndexNotFoundError(f"missing index file at {index_file}")
        self.verify_checksums = verify_checksums
        self.pager = Pager(
            index_file, readonly=mmap_mode, verify_checksums=verify_checksums
        )
        self.pool = BufferPool(self.pager, capacity=pool_capacity, direct=mmap_mode)
        self._open_trees()
        self.use_segments = use_segments
        self._segments: Optional[SegmentReader] = None
        self._posting_cache = None
        self._open_segments()

    def _load_metadata(self) -> None:
        """(Re)load the frequency table and tag dictionary from disk."""
        self.frequency_table = FrequencyTable.load(
            os.path.join(self.index_dir, FREQUENCY_NAME)
        )
        tags_path = os.path.join(self.index_dir, TAGS_NAME)
        if os.path.exists(tags_path):
            with open(tags_path, "r", encoding="utf-8") as fh:
                self.tags: List[str] = json.load(fh)
        else:
            self.tags = [""]
        self._tag_ids = {tag: i for i, tag in enumerate(self.tags)}

    def _open_trees(self) -> None:
        """(Re)open the B+trees over the pool, honoring the pin policy."""
        self.il_tree = BPlusTree(self.pool, "il")
        self.scan_tree = BPlusTree(self.pool, "scan")
        if self._pin_internal:
            self.pool.pin_many(self.il_tree.internal_page_ids())
            self.pool.pin_many(self.scan_tree.internal_page_ids())
            self.pager.stats.reset()

    def _open_segments(self) -> None:
        """(Re)open the packed posting segments, if enabled and present.

        Any failure here downgrades to the B+tree tier rather than
        failing the open: the segments are an acceleration sidecar, the
        trees are ground truth.
        """
        if self._segments is not None:
            self._segments.close()
            self._segments = None
        if not self.use_segments:
            return
        path = segments_path(self.index_dir)
        if not os.path.exists(path):
            return
        try:
            self._segments = SegmentReader(
                path,
                posting_cache=self._posting_cache,
                verify_checksums=self.verify_checksums,
            )
        except (OSError, IndexFormatError) as exc:
            _log.warning(
                "segments_unavailable", index_dir=self.index_dir, error=repr(exc)
            )

    def attach_posting_cache(self, cache) -> None:
        """Attach a cross-process :class:`~repro.xksearch.shared_cache.PostingBlockCache`
        for decoded segment blocks (create it before forking workers)."""
        self._posting_cache = cache
        if self._segments is not None:
            self._segments.posting_cache = cache

    def segments_active(self) -> bool:
        """Whether reads are currently served from the packed segments.

        True only while the segment file's stamped generation matches the
        live one; an updater bump flips this to False instantly (in every
        process observing the bump) until the segments are rebuilt.
        """
        segments = self._segments
        if segments is None or segments.quarantined:
            return False
        from repro.xksearch.cache import current_generation

        return segments.generation == current_generation(self.index_dir)

    def posting_tier(self) -> str:
        """``"segment"`` or ``"bptree"`` — the tier the next read uses."""
        return "segment" if self.segments_active() else "bptree"

    @staticmethod
    def _note_tier(tier: str, count: int = 1) -> None:
        if count and instrumentation_enabled():
            get_registry().counter(
                "xks_segment_sources_total",
                "Match sources built per posting tier (segment fast path "
                "vs B+tree fallback).",
                labelnames=("tier",),
            ).labels(tier=tier).inc(count)

    # -- generations ---------------------------------------------------------

    def _stat_manifest(self) -> Optional[int]:
        try:
            return os.stat(self._manifest_path).st_mtime_ns
        except OSError:
            return None

    def generation(self) -> int:
        """Current mutation generation of this index directory.

        Query caches stamp entries with this value (see
        :mod:`repro.xksearch.cache`): an :class:`IndexUpdater` mutation
        bumps it, instantly staling every cached result.  If the counter
        has advanced since this handle last looked, the handle reloads its
        on-disk state first so subsequent reads see the new contents.
        """
        from repro.xksearch.cache import current_generation, seed_generation

        # An updater in this process bumps the registry directly; one in
        # *another* process only persists its bump to the manifest on
        # close.  One stat per query detects that cheaply.
        mtime = self._stat_manifest()
        if mtime != self._manifest_mtime_ns:
            with self._refresh_lock:
                if mtime != self._manifest_mtime_ns:
                    self._manifest_mtime_ns = mtime
                    seed_generation(
                        self.index_dir,
                        load_manifest(self.index_dir).get("generation", 0),
                    )
        generation = current_generation(self.index_dir)
        if generation != self._seen_generation:
            with self._refresh_lock:
                if generation != self._seen_generation:
                    self.refresh()
                    self._seen_generation = generation
        return generation

    def refresh(self) -> None:
        """Reload header, trees and metadata after an out-of-band update.

        Must not race in-flight queries on this handle: an updater rewrote
        pages under us, so cached pages (including pinned internals) and
        tree root pointers are re-read from disk.
        """
        with self._refresh_lock:
            self.manifest = load_manifest(self.index_dir)
            self._manifest_mtime_ns = self._stat_manifest()
            self.pager.reload_header()
            self.pool.clear(keep_pinned=False)
            self._load_metadata()
            self._open_trees()
            self._open_segments()
        _log.info(
            "index_refreshed",
            index_dir=self.index_dir,
            generation=self.manifest.get("generation", 0),
            keywords=self.manifest.get("keywords"),
        )

    # -- catalogue -----------------------------------------------------------

    def frequency(self, keyword: str) -> int:
        return self.frequency_table.frequency(keyword)

    def keywords(self) -> List[str]:
        return sorted(self.frequency_table.keywords())

    def __contains__(self, keyword: str) -> bool:
        return keyword.lower() in self.frequency_table

    # -- access primitives ------------------------------------------------------

    def lm(self, keyword: str, v: DeweyTuple) -> Optional[DeweyTuple]:
        """One-off left match (prefer sources for repeated use)."""
        return DiskIndexedSource(self, keyword.lower(), OpCounters()).lm(v)

    def rm(self, keyword: str, v: DeweyTuple) -> Optional[DeweyTuple]:
        """One-off right match."""
        return DiskIndexedSource(self, keyword.lower(), OpCounters()).rm(v)

    def scan(self, keyword: str) -> Iterator[DeweyTuple]:
        """All Dewey numbers of *keyword*, in document order.

        Streams from the packed segments when they are current (decoded
        blocks come through the posting caches), else from the block
        (scan) tree — identical output either way.
        """
        kw = keyword.lower()
        segments = self._segments
        if segments is not None and kw in segments and self.segments_active():
            self._note_tier("segment")
            return segments.scan(kw)
        self._note_tier("bptree")
        return (dewey for dewey, _ in self.scan_tagged(kw))

    def scan_tagged(self, keyword: str) -> Iterator[Tuple[DeweyTuple, str]]:
        """(Dewey, context tag) pairs of *keyword*, in document order."""
        lo, hi = keyword_range(keyword.lower())
        tags = self.tags
        for _, value in self.scan_tree.scan(lo, hi):
            for encoded, tag_id in unpack_tagged_block(value):
                tag = tags[tag_id] if tag_id < len(tags) else ""
                yield self.codec.decode(encoded), tag

    def keyword_list(
        self, keyword: str, tag: Optional[str] = None
    ) -> List[DeweyTuple]:
        """Materialized keyword list, optionally restricted to occurrences
        whose context element is *tag* (the ``tag:word`` query atom).

        The keyword is normalized exactly once at entry; both branches
        below receive it already lowercased (the tagged branch used to
        rely on ``scan_tagged`` normalizing internally).
        """
        kw = keyword.lower()
        if tag is None:
            return list(self.scan(kw))
        wanted = tag.lower()
        return [
            dewey
            for dewey, context in self.scan_tagged(kw)
            if context == wanted
        ]

    def sources_for(
        self,
        keywords: Sequence[str],
        mode: str = "indexed",
        counters: Optional[OpCounters] = None,
    ) -> List:
        """Match sources for a query, one per keyword.

        ``mode="indexed"`` returns point-lookup sources (IL): packed
        segment sources when the segments are current
        (:class:`~repro.index.segments.PackedListSource`), else B+tree
        sources — byte-identical answers either way.  ``"scan"`` returns
        lazy cursor sources over sequential reads (Scan Eager); the
        stream underneath comes from whichever tier :meth:`scan` picks.
        For IL, the *head* list (first keyword) is also read through the
        scan path — IL only ever iterates ``S1``, never probes it — so
        mixed mode is handled by the engine, not here.
        """
        counters = counters if counters is not None else OpCounters()
        segments = (
            self._segments
            if mode == "indexed" and self._segments is not None and self.segments_active()
            else None
        )
        sources: List = []
        segment_count = 0
        bptree_count = 0
        for keyword in keywords:
            kw = keyword.lower()
            if mode == "indexed":
                if segments is not None and kw in segments:
                    sources.append(PackedListSource(segments, kw, counters))
                    segment_count += 1
                else:
                    sources.append(DiskIndexedSource(self, kw, counters))
                    bptree_count += 1
            elif mode == "scan":
                # scan() notes its own tier choice per keyword.
                sources.append(
                    LazyCursorSource(self.scan(kw), self.frequency(kw), counters)
                )
            else:
                raise ValueError(f"unknown source mode {mode!r}")
        self._note_tier("segment", segment_count)
        self._note_tier("bptree", bptree_count)
        return sources

    # -- cache temperature ---------------------------------------------------------

    def make_cold(self) -> None:
        """Empty the buffer pool (pinned internal pages survive) and reset
        the physical-read sequence, so the next query runs cold."""
        self.pool.clear()

    def make_fully_cold(self) -> None:
        """Cold including internal pages (for the unpinned ablation)."""
        self.pool.clear(keep_pinned=False)
        self.pool.unpin_all()

    def io_snapshot(self):
        return self.pager.stats.snapshot()

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Storage-layer stats: buffer pool, pager I/O, B+tree node touches.

        This is what the serving layer folds into ``/statz`` and mirrors at
        ``GET /metrics`` — the paper's disk-access cost dimension, live.
        """
        return {
            "buffer_pool": self.pool.stats.as_dict(),
            "pager": self.pager.stats.as_dict(),
            "bptree": {
                "il_node_reads": self.il_tree.node_reads,
                "scan_node_reads": self.scan_tree.node_reads,
            },
            "mmap_mode": self.mmap_mode,
            "posting_tier": self.posting_tier(),
            "segments": (
                self._segments.stats_dict() if self._segments is not None else None
            ),
            "posting_cache": (
                self._posting_cache.stats_dict()
                if self._posting_cache is not None
                else None
            ),
        }

    # -- documents -----------------------------------------------------------------

    def document_path(self) -> Optional[str]:
        path = os.path.join(self.index_dir, DOCUMENT_NAME)
        return path if os.path.exists(path) else None

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        if self._segments is not None:
            self._segments.close()
            self._segments = None
        self.pager.close()

    def __enter__(self) -> "DiskKeywordIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
