"""Disk-backed keyword index and its match sources.

:class:`DiskKeywordIndex` opens an index directory produced by
:func:`repro.index.builder.build_index` and exposes the paper's access
primitives over the B+trees:

* ``lm`` / ``rm`` — descend the ``il`` tree (keyword ⊕ dewey composite
  keys) with ``floor_entry`` / ``ceiling_entry`` clamped to the keyword's
  key range;
* ``scan`` — stream a keyword's Dewey numbers from the ``scan`` tree's
  packed blocks (sequential leaf I/O);
* cache-temperature control — ``make_cold()`` empties the buffer pool so
  the next query pays physical reads; by default the B+trees' internal
  pages are pinned, realizing the "non-leaf nodes are cached" assumption of
  the paper's disk-access analysis (Table 1).

``sources_for`` wires keyword lists into the algorithm layer: indexed
sources for IL, lazy cursor sources for Scan Eager, plain scans for Stack.

Concurrency: the read path is thread-safe — every page access is
serialized by the buffer pool's lock, and the remaining per-query state
(sources, cursors, codecs) is private to each call — so one
:class:`DiskKeywordIndex` may serve any number of query threads (this is
what the threaded demo server relies on).  Writes are not concurrent:
:class:`~repro.index.updates.IndexUpdater` must run with no in-flight
queries on the same directory; afterwards, open handles observe the bumped
index *generation* (see :mod:`repro.xksearch.cache`) and transparently
reload their on-disk state.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.counters import OpCounters
from repro.core.sources import LazyCursorSource
from repro.errors import IndexNotFoundError
from repro.index.builder import (
    DOCUMENT_NAME,
    FREQUENCY_NAME,
    INDEX_FILE_NAME,
    LEVEL_TABLE_NAME,
    MANIFEST_NAME,
    TAGS_NAME,
    load_manifest,
    make_codec,
)
from repro.index.frequency import FrequencyTable
from repro.obs.logging import get_logger
from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.storage.records import keyword_range, posting_key, unpack_tagged_block
from repro.xmltree.dewey import DeweyTuple
from repro.xmltree.level_table import LevelTable

_log = get_logger("index")


class DiskIndexedSource:
    """IL's disk match source: B+tree lookups within one keyword's range."""

    def __init__(self, index: "DiskKeywordIndex", keyword: str, counters: OpCounters):
        self._index = index
        self._keyword = keyword
        self._lo, self._hi = keyword_range(keyword)
        self._length = index.frequency(keyword)
        self.counters = counters

    def lm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        self.counters.lm_ops += 1
        probe = posting_key(self._keyword, self._index.codec.encode(v))
        entry = self._index.il_tree.floor_entry(probe)
        if entry is None or entry[0] < self._lo:
            return None
        return self._index.codec.decode(entry[0][len(self._lo):])

    def rm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        self.counters.rm_ops += 1
        probe = posting_key(self._keyword, self._index.codec.encode(v))
        entry = self._index.il_tree.ceiling_entry(probe)
        if entry is None or entry[0] >= self._hi:
            return None
        return self._index.codec.decode(entry[0][len(self._lo):])

    def scan(self) -> Iterator[DeweyTuple]:
        decode = self._index.codec.decode
        prefix_len = len(self._lo)
        for key, _ in self._index.il_tree.scan(self._lo, self._hi):
            yield decode(key[prefix_len:])

    def __len__(self) -> int:
        return self._length


class DiskKeywordIndex:
    """An opened XKSearch index directory.

    ``mmap_mode=True`` opens the page file readonly through a shared
    memory mapping (see :class:`~repro.storage.pager.Pager`): page reads
    come from the OS page cache — one physical copy shared by every
    process mapping the index — and the handle carries no file-offset
    state, making it the read mode for forked worker processes
    (:mod:`repro.xksearch.parallel`).  The API is identical; only writes
    (which this class never performs) are forbidden underneath.
    """

    def __init__(
        self,
        index_dir: Union[str, os.PathLike],
        pool_capacity: int = 4096,
        pin_internal: bool = True,
        mmap_mode: bool = False,
    ):
        # Imported lazily: repro.xksearch imports this module at package
        # init, so a top-level import here would be circular.
        from repro.xksearch.cache import seed_generation

        self.index_dir = os.fspath(index_dir)
        self.manifest = load_manifest(self.index_dir)
        self.mmap_mode = mmap_mode
        self._pin_internal = pin_internal
        self._refresh_lock = threading.RLock()
        self._manifest_path = os.path.join(self.index_dir, MANIFEST_NAME)
        self._manifest_mtime_ns = self._stat_manifest()
        self._seen_generation = seed_generation(
            self.index_dir, self.manifest.get("generation", 0)
        )
        level_path = os.path.join(self.index_dir, LEVEL_TABLE_NAME)
        if not os.path.exists(level_path):
            raise IndexNotFoundError(f"missing level table at {level_path}")
        with open(level_path, "r", encoding="utf-8") as fh:
            self.level_table = LevelTable.from_json(fh.read())
        self.codec = make_codec(self.manifest["codec"], self.level_table)
        self._load_metadata()
        index_file = os.path.join(self.index_dir, INDEX_FILE_NAME)
        if not os.path.exists(index_file):
            # The pager would silently create an empty file, turning a
            # damaged installation into silently-empty search results.
            raise IndexNotFoundError(f"missing index file at {index_file}")
        self.pager = Pager(index_file, readonly=mmap_mode)
        self.pool = BufferPool(self.pager, capacity=pool_capacity, direct=mmap_mode)
        self._open_trees()

    def _load_metadata(self) -> None:
        """(Re)load the frequency table and tag dictionary from disk."""
        self.frequency_table = FrequencyTable.load(
            os.path.join(self.index_dir, FREQUENCY_NAME)
        )
        tags_path = os.path.join(self.index_dir, TAGS_NAME)
        if os.path.exists(tags_path):
            with open(tags_path, "r", encoding="utf-8") as fh:
                self.tags: List[str] = json.load(fh)
        else:
            self.tags = [""]
        self._tag_ids = {tag: i for i, tag in enumerate(self.tags)}

    def _open_trees(self) -> None:
        """(Re)open the B+trees over the pool, honoring the pin policy."""
        self.il_tree = BPlusTree(self.pool, "il")
        self.scan_tree = BPlusTree(self.pool, "scan")
        if self._pin_internal:
            self.pool.pin_many(self.il_tree.internal_page_ids())
            self.pool.pin_many(self.scan_tree.internal_page_ids())
            self.pager.stats.reset()

    # -- generations ---------------------------------------------------------

    def _stat_manifest(self) -> Optional[int]:
        try:
            return os.stat(self._manifest_path).st_mtime_ns
        except OSError:
            return None

    def generation(self) -> int:
        """Current mutation generation of this index directory.

        Query caches stamp entries with this value (see
        :mod:`repro.xksearch.cache`): an :class:`IndexUpdater` mutation
        bumps it, instantly staling every cached result.  If the counter
        has advanced since this handle last looked, the handle reloads its
        on-disk state first so subsequent reads see the new contents.
        """
        from repro.xksearch.cache import current_generation, seed_generation

        # An updater in this process bumps the registry directly; one in
        # *another* process only persists its bump to the manifest on
        # close.  One stat per query detects that cheaply.
        mtime = self._stat_manifest()
        if mtime != self._manifest_mtime_ns:
            with self._refresh_lock:
                if mtime != self._manifest_mtime_ns:
                    self._manifest_mtime_ns = mtime
                    seed_generation(
                        self.index_dir,
                        load_manifest(self.index_dir).get("generation", 0),
                    )
        generation = current_generation(self.index_dir)
        if generation != self._seen_generation:
            with self._refresh_lock:
                if generation != self._seen_generation:
                    self.refresh()
                    self._seen_generation = generation
        return generation

    def refresh(self) -> None:
        """Reload header, trees and metadata after an out-of-band update.

        Must not race in-flight queries on this handle: an updater rewrote
        pages under us, so cached pages (including pinned internals) and
        tree root pointers are re-read from disk.
        """
        with self._refresh_lock:
            self.manifest = load_manifest(self.index_dir)
            self._manifest_mtime_ns = self._stat_manifest()
            self.pager.reload_header()
            self.pool.clear(keep_pinned=False)
            self._load_metadata()
            self._open_trees()
        _log.info(
            "index_refreshed",
            index_dir=self.index_dir,
            generation=self.manifest.get("generation", 0),
            keywords=self.manifest.get("keywords"),
        )

    # -- catalogue -----------------------------------------------------------

    def frequency(self, keyword: str) -> int:
        return self.frequency_table.frequency(keyword)

    def keywords(self) -> List[str]:
        return sorted(self.frequency_table.keywords())

    def __contains__(self, keyword: str) -> bool:
        return keyword.lower() in self.frequency_table

    # -- access primitives ------------------------------------------------------

    def lm(self, keyword: str, v: DeweyTuple) -> Optional[DeweyTuple]:
        """One-off left match (prefer sources for repeated use)."""
        return DiskIndexedSource(self, keyword.lower(), OpCounters()).lm(v)

    def rm(self, keyword: str, v: DeweyTuple) -> Optional[DeweyTuple]:
        """One-off right match."""
        return DiskIndexedSource(self, keyword.lower(), OpCounters()).rm(v)

    def scan(self, keyword: str) -> Iterator[DeweyTuple]:
        """All Dewey numbers of *keyword* via the block (scan) tree."""
        for dewey, _ in self.scan_tagged(keyword):
            yield dewey

    def scan_tagged(self, keyword: str) -> Iterator[Tuple[DeweyTuple, str]]:
        """(Dewey, context tag) pairs of *keyword*, in document order."""
        lo, hi = keyword_range(keyword.lower())
        tags = self.tags
        for _, value in self.scan_tree.scan(lo, hi):
            for encoded, tag_id in unpack_tagged_block(value):
                tag = tags[tag_id] if tag_id < len(tags) else ""
                yield self.codec.decode(encoded), tag

    def keyword_list(
        self, keyword: str, tag: Optional[str] = None
    ) -> List[DeweyTuple]:
        """Materialized keyword list, optionally restricted to occurrences
        whose context element is *tag* (the ``tag:word`` query atom)."""
        if tag is None:
            return list(self.scan(keyword.lower()))
        wanted = tag.lower()
        return [
            dewey
            for dewey, context in self.scan_tagged(keyword)
            if context == wanted
        ]

    def sources_for(
        self,
        keywords: Sequence[str],
        mode: str = "indexed",
        counters: Optional[OpCounters] = None,
    ) -> List:
        """Match sources for a query, one per keyword.

        ``mode="indexed"`` returns B+tree lookup sources (IL); ``"scan"``
        returns lazy cursor sources over sequential block reads (Scan
        Eager).  For IL, the *head* list (first keyword) is also read
        through the scan tree — IL only ever iterates ``S1``, never probes
        it — so mixed mode is handled by the engine, not here.
        """
        counters = counters if counters is not None else OpCounters()
        sources: List = []
        for keyword in keywords:
            kw = keyword.lower()
            if mode == "indexed":
                sources.append(DiskIndexedSource(self, kw, counters))
            elif mode == "scan":
                sources.append(
                    LazyCursorSource(self.scan(kw), self.frequency(kw), counters)
                )
            else:
                raise ValueError(f"unknown source mode {mode!r}")
        return sources

    # -- cache temperature ---------------------------------------------------------

    def make_cold(self) -> None:
        """Empty the buffer pool (pinned internal pages survive) and reset
        the physical-read sequence, so the next query runs cold."""
        self.pool.clear()

    def make_fully_cold(self) -> None:
        """Cold including internal pages (for the unpinned ablation)."""
        self.pool.clear(keep_pinned=False)
        self.pool.unpin_all()

    def io_snapshot(self):
        return self.pager.stats.snapshot()

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Storage-layer stats: buffer pool, pager I/O, B+tree node touches.

        This is what the serving layer folds into ``/statz`` and mirrors at
        ``GET /metrics`` — the paper's disk-access cost dimension, live.
        """
        return {
            "buffer_pool": self.pool.stats.as_dict(),
            "pager": self.pager.stats.as_dict(),
            "bptree": {
                "il_node_reads": self.il_tree.node_reads,
                "scan_node_reads": self.scan_tree.node_reads,
            },
            "mmap_mode": self.mmap_mode,
        }

    # -- documents -----------------------------------------------------------------

    def document_path(self) -> Optional[str]:
        path = os.path.join(self.index_dir, DOCUMENT_NAME)
        return path if os.path.exists(path) else None

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        self.pager.close()

    def __enter__(self) -> "DiskKeywordIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
