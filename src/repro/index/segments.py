"""Packed posting segments: zero-copy compressed keyword lists.

The B+trees are the index's ground truth, but answering ``lm``/``rm``
through them costs a tree descent per probe and ``scan`` pays per-entry
leaf iteration.  This module adds a read-optimized sidecar — one
immutable **segment file** (``segments.dat``) per index directory — that
the hot path reads instead whenever it is current:

* each keyword's Dewey ids are **delta + varint encoded** into
  self-contained blocks of at most ``block_entries`` ids: the first id of
  a block is stored in full, every later id as (common-prefix length,
  suffix length, suffix components), each number a 7-bit LEB128 varint;
* a per-keyword **skip table** records every block's first id, byte span
  and entry count, so a probe bisects the skip table, decodes (at most)
  one block, and gallops inside it;
* the file is opened **zero-copy via mmap** (the readonly discipline of
  :func:`repro.storage.pager.open_readonly_mmap`): parent threads and
  forked pool workers share one physical copy in the OS page cache;
* the header carries the index **generation** the segments were built
  from.  Readers use segments only while that matches the live
  generation (:mod:`repro.xksearch.cache`); after an
  :class:`~repro.index.updates.IndexUpdater` bump they fall back to the
  B+trees transparently — results are byte-identical either way — until
  the updater's ``close()`` rebuilds the file.

File layout (all integers big-endian)::

    header   magic "XKSG" | version u16 | flags u16 | generation u64
             | dir_offset u64 | dir_count u32 | block_entries u32
    segment  block_count u32 | skip_bytes u32
             | skip entries: (rel_off u32 | count u32 | crc u32
               | first_len u16 | first id as varint tuple) x block_count
             | block data (rel_off is relative to its start)
    ...      one segment per keyword, back to back
    dir      (klen u16 | keyword utf-8 | seg_off u64 | count u32)
             x dir_count, at dir_offset

Version 2 added the per-block ``crc`` skip-table field — a 32-bit
checksum of the block's encoded bytes, computed at write time; header
flags bit 0 records the polynomial (:mod:`repro.robustness.checksum`).
Version 1 files (no crc) are still readable, just unverifiable.  When a
reader opened with ``verify_checksums`` sees a mismatch — or any reader
hits a decode error — the whole file is **quarantined**: the reader
raises :class:`~repro.errors.CorruptionError`, counts
``xks_corruption_detected_total{tier="segment"}``, and flags itself so
:meth:`~repro.index.inverted.DiskKeywordIndex.segments_active` routes
every later query to the B+trees (the ground truth; answers are
byte-identical).

Decoded blocks are cached per process (a small LRU on the reader) and,
when a :class:`~repro.xksearch.shared_cache.PostingBlockCache` is
attached, across processes — hot keywords are decoded once per machine,
not once per worker per query.

:class:`PackedListSource` is the :class:`~repro.core.sources.MatchSource`
over one keyword's segment; its ``lm``/``rm`` counter accounting is
identical to the B+tree source's (one op per probe), so the paper's
Table 1 cost profiles are preserved on the fast path.
"""

from __future__ import annotations

import os
import struct
import time
from bisect import bisect_right
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.counters import OpCounters
from repro.core.sources import gallop_leftmost_ge, gallop_rightmost_le
from repro.errors import CorruptionError, IndexFormatError
from repro.robustness import faultinject
from repro.robustness.checksum import (
    ALGORITHM,
    algorithm_flag,
    algorithm_from_flag,
    checksum,
    count_corruption,
)
from repro.storage.pager import open_readonly_mmap
from repro.xmltree.dewey import DeweyTuple, common_prefix_len

SEGMENTS_NAME = "segments.dat"

#: Ids per block: large enough that skip tables stay tiny, small enough
#: that a point probe never decodes more than ~one cache line of tuples.
DEFAULT_BLOCK_ENTRIES = 128

_MAGIC = b"XKSG"
_VERSION = 2
_HEADER = struct.Struct(">4sHHQQII")
_SKIP_ENTRY_V1 = struct.Struct(">IIH")
_SKIP_ENTRY = struct.Struct(">IIIH")
_DIR_ENTRY_HEAD = struct.Struct(">H")
_DIR_ENTRY_TAIL = struct.Struct(">QI")


# -- varint / delta codec -----------------------------------------------------


def _write_varint(out: bytearray, value: int) -> None:
    """Append *value* as a 7-bit little-endian-group (LEB128) varint."""
    if value < 0:
        raise IndexFormatError("varints encode non-negative integers only")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(buf, pos: int) -> Tuple[int, int]:
    """``(value, next_pos)`` of the varint at *pos*."""
    result = 0
    shift = 0
    while True:
        try:
            byte = buf[pos]
        except IndexError:
            raise IndexFormatError("truncated varint in segment data") from None
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def encode_tuple(dewey: DeweyTuple) -> bytes:
    """One Dewey id in full: varint component count, then components."""
    out = bytearray()
    _write_varint(out, len(dewey))
    for component in dewey:
        _write_varint(out, component)
    return bytes(out)


def decode_tuple(buf, pos: int = 0) -> Tuple[DeweyTuple, int]:
    count, pos = _read_varint(buf, pos)
    components = []
    for _ in range(count):
        component, pos = _read_varint(buf, pos)
        components.append(component)
    return tuple(components), pos


def encode_block(entries: Sequence[DeweyTuple]) -> bytes:
    """Delta-encode one block of ascending Dewey ids.

    Every entry is (common-prefix-with-previous, suffix length, suffix
    components); the first entry's previous is the empty tuple, so it is
    stored in full and the block is self-contained.
    """
    out = bytearray()
    previous: DeweyTuple = ()
    for dewey in entries:
        cpl = common_prefix_len(previous, dewey)
        _write_varint(out, cpl)
        _write_varint(out, len(dewey) - cpl)
        for component in dewey[cpl:]:
            _write_varint(out, component)
        previous = dewey
    return bytes(out)


def decode_block(buf, start: int, end: int, count: int) -> Tuple[DeweyTuple, ...]:
    """Decode *count* delta-encoded ids from ``buf[start:end]``."""
    pos = start
    previous: DeweyTuple = ()
    out: List[DeweyTuple] = []
    for _ in range(count):
        cpl, pos = _read_varint(buf, pos)
        suffix_len, pos = _read_varint(buf, pos)
        components = list(previous[:cpl])
        for _ in range(suffix_len):
            component, pos = _read_varint(buf, pos)
            components.append(component)
        previous = tuple(components)
        out.append(previous)
    if pos != end:
        raise IndexFormatError(
            f"segment block decoded to {pos - start} bytes, expected {end - start}"
        )
    return tuple(out)


# -- writer -------------------------------------------------------------------


def segments_path(index_dir: os.PathLike) -> str:
    return os.path.join(os.fspath(index_dir), SEGMENTS_NAME)


def write_segments(
    path: str,
    keyword_lists: Iterable[Tuple[str, Sequence[DeweyTuple]]],
    generation: int,
    block_entries: int = DEFAULT_BLOCK_ENTRIES,
) -> int:
    """Write a segment file; returns the number of keywords written.

    ``keyword_lists`` yields ``(keyword, ascending Dewey ids)``; empty
    lists are skipped.  The file is written to a temporary sibling and
    atomically renamed into place, so live readers keep their mapping of
    the old inode and the swap is crash-safe.
    """
    if block_entries < 1:
        raise ValueError("block_entries must be at least 1")
    tmp_path = path + ".tmp"
    directory: List[Tuple[bytes, int, int]] = []
    offset = _HEADER.size
    with open(tmp_path, "wb") as fh:
        fh.write(b"\x00" * _HEADER.size)
        for keyword, nodes in keyword_lists:
            nodes = list(nodes)
            if not nodes:
                continue
            skip = bytearray()
            data_parts: List[bytes] = []
            rel = 0
            for start in range(0, len(nodes), block_entries):
                chunk = nodes[start:start + block_entries]
                data = encode_block(chunk)
                first = encode_tuple(chunk[0])
                skip += _SKIP_ENTRY.pack(rel, len(chunk), checksum(data), len(first))
                skip += first
                data_parts.append(data)
                rel += len(data)
            fh.write(struct.pack(">II", len(data_parts), len(skip)))
            fh.write(skip)
            for data in data_parts:
                fh.write(data)
            directory.append((keyword.encode("utf-8"), offset, len(nodes)))
            offset += 8 + len(skip) + rel
        for kw_bytes, seg_off, count in directory:
            fh.write(_DIR_ENTRY_HEAD.pack(len(kw_bytes)))
            fh.write(kw_bytes)
            fh.write(_DIR_ENTRY_TAIL.pack(seg_off, count))
        fh.seek(0)
        fh.write(
            _HEADER.pack(
                _MAGIC, _VERSION, algorithm_flag(ALGORITHM), generation,
                offset, len(directory), block_entries,
            )
        )
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    return len(directory)


# -- reader -------------------------------------------------------------------


class _SkipTable:
    """One keyword's decoded skip table: block bounds, first ids, crcs."""

    __slots__ = ("first_ids", "starts", "ends", "counts", "crcs")

    def __init__(
        self,
        first_ids: List[DeweyTuple],
        starts: List[int],
        ends: List[int],
        counts: List[int],
        crcs: List[Optional[int]],
    ):
        self.first_ids = first_ids
        self.starts = starts
        self.ends = ends
        self.counts = counts
        self.crcs = crcs

    def __len__(self) -> int:
        return len(self.first_ids)


class SegmentStats:
    """Per-process reader effectiveness counters (the mmap is shared;
    these are not — each process counts what it observed)."""

    def __init__(self) -> None:
        self.local_hits = 0
        self.shared_hits = 0
        self.decodes = 0
        self.decode_ms = 0.0

    def as_dict(self) -> dict:
        return {
            "local_hits": self.local_hits,
            "shared_hits": self.shared_hits,
            "decodes": self.decodes,
            "decode_ms": round(self.decode_ms, 3),
        }


class SegmentReader:
    """A segment file opened zero-copy for reading.

    Thread-safe in the same sense as the rest of the read path: the mmap
    is immutable, and the per-process block LRU / skip-table dict are
    plain dict operations under the GIL (a lost cache insert under a
    race costs a redundant decode, never a wrong answer).
    """

    def __init__(
        self,
        path: str,
        posting_cache=None,
        local_cache_blocks: int = 256,
        verify_checksums: bool = False,
    ):
        self.path = path
        self._map = open_readonly_mmap(path)
        try:
            magic, version, flags, generation, dir_offset, dir_count, block_entries = (
                _HEADER.unpack_from(self._map, 0)
            )
        except struct.error:
            self._map.close()
            raise IndexFormatError(f"segment file {path} is truncated") from None
        if magic != _MAGIC:
            self._map.close()
            raise IndexFormatError(f"segment file {path} has bad magic {magic!r}")
        if version not in (1, _VERSION):
            self._map.close()
            raise IndexFormatError(
                f"segment format version {version} is not supported"
            )
        self.version = version
        self.checksum_algorithm = (
            algorithm_from_flag(flags & 1) if version >= 2 else None
        )
        # v1 files carry no checksums, so there is nothing to verify.
        self.verify_checksums = verify_checksums and version >= 2
        self.quarantined = False
        self.generation = generation
        self.block_entries = block_entries
        self.posting_cache = posting_cache
        self.stats = SegmentStats()
        self._directory: Dict[str, Tuple[int, int]] = {}
        self._skip_tables: Dict[str, _SkipTable] = {}
        self._local: "OrderedDict[Tuple[str, int], Tuple[DeweyTuple, ...]]" = (
            OrderedDict()
        )
        self._local_cap = max(1, local_cache_blocks)
        pos = dir_offset
        try:
            for _ in range(dir_count):
                (klen,) = _DIR_ENTRY_HEAD.unpack_from(self._map, pos)
                pos += _DIR_ENTRY_HEAD.size
                keyword = bytes(self._map[pos:pos + klen]).decode("utf-8")
                pos += klen
                seg_off, count = _DIR_ENTRY_TAIL.unpack_from(self._map, pos)
                pos += _DIR_ENTRY_TAIL.size
                self._directory[keyword] = (seg_off, count)
        except (struct.error, IndexError, UnicodeDecodeError):
            self._map.close()
            raise IndexFormatError(f"segment directory of {path} is corrupt") from None

    # -- catalogue -----------------------------------------------------------

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._directory

    def count(self, keyword: str) -> int:
        entry = self._directory.get(keyword)
        return entry[1] if entry is not None else 0

    def keywords(self) -> List[str]:
        return sorted(self._directory)

    # -- block access --------------------------------------------------------

    def skip_table(self, keyword: str) -> _SkipTable:
        table = self._skip_tables.get(keyword)
        if table is not None:
            return table
        try:
            seg_off, _count = self._directory[keyword]
        except KeyError:
            raise KeyError(f"keyword {keyword!r} has no segment") from None
        block_count, skip_bytes = struct.unpack_from(">II", self._map, seg_off)
        data_base = seg_off + 8 + skip_bytes
        pos = seg_off + 8
        first_ids: List[DeweyTuple] = []
        starts: List[int] = []
        counts: List[int] = []
        crcs: List[Optional[int]] = []
        for _ in range(block_count):
            if self.version >= 2:
                rel_off, count, crc, first_len = _SKIP_ENTRY.unpack_from(
                    self._map, pos
                )
                pos += _SKIP_ENTRY.size
            else:
                rel_off, count, first_len = _SKIP_ENTRY_V1.unpack_from(
                    self._map, pos
                )
                pos += _SKIP_ENTRY_V1.size
                crc = None
            first, _ = decode_tuple(self._map, pos)
            pos += first_len
            first_ids.append(first)
            starts.append(data_base + rel_off)
            counts.append(count)
            crcs.append(crc)
        # Blocks are laid out contiguously, so each block ends where the
        # next begins; the last ends where the next segment (or the
        # directory) starts.
        ends = starts[1:] + ([self._segment_end(seg_off)] if block_count else [])
        table = _SkipTable(first_ids, starts, ends, counts, crcs)
        self._skip_tables[keyword] = table
        return table

    def _segment_end(self, seg_off: int) -> int:
        """First byte past the segment starting at *seg_off*."""
        candidates = [
            other_off for other_off, _ in self._directory.values() if other_off > seg_off
        ]
        if candidates:
            return min(candidates)
        (_, _, _, _, dir_offset, _, _) = _HEADER.unpack_from(self._map, 0)
        return dir_offset

    def block(self, keyword: str, index: int) -> Tuple[DeweyTuple, ...]:
        """One decoded block, through the local then shared caches."""
        key = (keyword, index)
        local = self._local
        nodes = local.get(key)
        if nodes is not None:
            local.move_to_end(key)
            self.stats.local_hits += 1
            return nodes
        cache = self.posting_cache
        if cache is not None:
            hit, value = cache.lookup(("pblk",) + key, self.generation)
            if hit:
                self.stats.shared_hits += 1
                self._local_put(key, value)
                return value
        table = self.skip_table(keyword)
        start, end = table.starts[index], table.ends[index]
        faultinject.maybe_delay("delay-io")
        # The zero-copy path decodes straight from the mmap; a copy is
        # made only when a corruption fault rewrites the bytes.
        buf, pos, limit = self._map, start, end
        if faultinject.fire("corrupt-block") is not None:
            buf = faultinject.corrupt_bytes(bytes(self._map[start:end]))
            pos, limit = 0, len(buf)
        if self.verify_checksums:
            expected = table.crcs[index]
            if expected is not None and (
                checksum(buf[pos:limit], self.checksum_algorithm) != expected
            ):
                raise self._quarantine(keyword, index, "checksum mismatch")
        started = time.perf_counter()
        try:
            nodes = decode_block(buf, pos, limit, table.counts[index])
        except IndexFormatError as exc:
            raise self._quarantine(keyword, index, str(exc)) from exc
        cost_ms = (time.perf_counter() - started) * 1000
        self.stats.decodes += 1
        self.stats.decode_ms += cost_ms
        if cache is not None:
            cache.store(("pblk",) + key, self.generation, nodes, cost_ms)
        self._local_put(key, nodes)
        return nodes

    def _quarantine(self, keyword: str, index: int, reason: str) -> CorruptionError:
        """Flag the whole file unusable and build the error to raise.

        One bad block condemns the file: the writer produced it in a
        single pass, so damage is evidence about the medium, not the
        block.  ``segments_active`` routes all later queries to the
        B+trees; the current query's engine retries against them too.
        """
        self.quarantined = True
        count_corruption("segment")
        return CorruptionError(
            f"segment block {keyword!r}#{index} of {self.path}: {reason}",
            tier="segment",
        )

    def _local_put(self, key, nodes) -> None:
        local = self._local
        local[key] = nodes
        local.move_to_end(key)
        while len(local) > self._local_cap:
            local.popitem(last=False)

    def scan(self, keyword: str) -> Iterator[DeweyTuple]:
        """All of a keyword's ids in ascending order (streaming decode)."""
        table = self.skip_table(keyword)
        for index in range(len(table)):
            yield from self.block(keyword, index)

    # -- observability -------------------------------------------------------

    def stats_dict(self) -> dict:
        out = self.stats.as_dict()
        out["keywords"] = len(self._directory)
        out["generation"] = self.generation
        out["block_entries"] = self.block_entries
        out["local_cached_blocks"] = len(self._local)
        out["shared_cache"] = self.posting_cache is not None
        out["version"] = self.version
        out["verify_checksums"] = self.verify_checksums
        out["quarantined"] = self.quarantined
        return out

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._map.close()

    def __enter__(self) -> "SegmentReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- match source -------------------------------------------------------------


class PackedListSource:
    """The segment-backed :class:`~repro.core.sources.MatchSource`.

    ``lm``/``rm`` bisect the skip table's first ids to the one candidate
    block, then gallop inside the decoded block from the previous probe's
    position — IL's probes into each list arrive in near-ascending order,
    so the gallop usually settles in a couple of comparisons.  Two
    structural shortcuts avoid decodes entirely: an ``rm`` that falls off
    the end of a block answers with the next block's first id straight
    from the skip table, and an ``rm`` below the whole list answers with
    the first id of block 0.

    Counter accounting matches :class:`~repro.index.inverted.DiskIndexedSource`
    exactly — one ``lm_op``/``rm_op`` per probe — so cost-model
    comparisons against the paper remain valid on the fast path.
    """

    def __init__(
        self,
        reader: SegmentReader,
        keyword: str,
        counters: Optional[OpCounters] = None,
    ):
        self._reader = reader
        self._keyword = keyword
        table = reader.skip_table(keyword)
        self._first_ids = table.first_ids
        self._nblocks = len(table)
        self._length = reader.count(keyword)
        self._hint_block = 0
        self._hint_pos = 0
        self.counters = counters if counters is not None else OpCounters()

    def lm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        self.counters.lm_ops += 1
        block_index = bisect_right(self._first_ids, v) - 1
        if block_index < 0:
            return None
        nodes = self._reader.block(self._keyword, block_index)
        hint = self._hint_pos if block_index == self._hint_block else 0
        i = gallop_rightmost_le(nodes, v, hint)
        # i >= 0 always: the block's first id is <= v by skip-table choice.
        self._hint_block, self._hint_pos = block_index, i
        return nodes[i]

    def rm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        self.counters.rm_ops += 1
        if not self._nblocks:
            return None
        block_index = bisect_right(self._first_ids, v) - 1
        if block_index < 0:
            return self._first_ids[0]
        nodes = self._reader.block(self._keyword, block_index)
        hint = self._hint_pos if block_index == self._hint_block else 0
        i = gallop_leftmost_ge(nodes, v, hint)
        if i < len(nodes):
            self._hint_block, self._hint_pos = block_index, i
            return nodes[i]
        if block_index + 1 < self._nblocks:
            self._hint_block, self._hint_pos = block_index + 1, 0
            return self._first_ids[block_index + 1]
        return None

    def scan(self) -> Iterator[DeweyTuple]:
        return self._reader.scan(self._keyword)

    def __len__(self) -> int:
        return self._length
