"""Index integrity verification — ``xksearch verify`` / ``xksearch fsck``.

Walks an index directory end to end and cross-checks every redundant
structure against the others:

* both B+trees satisfy their structural invariants (key order, subtree
  bounds, leaf-chain consistency);
* every IL posting parses — valid composite key, decodable Dewey number
  that fits the level table, in-range tag id — and keys ascend globally;
* the scan tree's blocks, decoded, reproduce *exactly* the IL tree's
  postings per keyword (same Dewey numbers, same tags, same order);
* the frequency table matches the actual list lengths, with no phantom or
  missing keywords.

Returns a :class:`VerifyReport`; a non-empty ``errors`` list means the
index should be rebuilt from the source document.

``fsck_index`` (``xksearch fsck``) runs all of the above **plus** the
stored-checksum sweeps from docs/ROBUSTNESS.md: every B+tree page is
re-checksummed against the pager's ``.crc`` sidecar and every packed
posting block against its per-block CRC in the v2 segment skip tables —
the offline counterpart of ``serve --verify-checksums``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.errors import ReproError
from repro.index.builder import load_manifest
from repro.index.inverted import DiskKeywordIndex
from repro.storage.records import split_posting_key
from repro.xmltree.dewey import DeweyTuple


@dataclass
class VerifyReport:
    """Outcome of one verification run."""

    checks: int = 0
    postings: int = 0
    keywords: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def _fail(self, message: str) -> None:
        if len(self.errors) < 50:  # cap noise on badly damaged indexes
            self.errors.append(message)

    def summary(self) -> str:
        status = "OK" if self.ok else f"FAILED ({len(self.errors)} error(s))"
        lines = [
            f"verification {status}: {self.checks} checks over "
            f"{self.postings} postings / {self.keywords} keywords"
        ]
        lines.extend(f"  - {error}" for error in self.errors)
        return "\n".join(lines)


def verify_index(index_dir: Union[str, os.PathLike]) -> VerifyReport:
    """Run all integrity checks over an index directory."""
    report = VerifyReport()
    try:
        load_manifest(index_dir)
    except ReproError as exc:
        report._fail(f"manifest: {exc}")
        return report
    try:
        index = DiskKeywordIndex(index_dir)
    except ReproError as exc:
        report._fail(f"open: {exc}")
        return report
    with index:
        _check_btree_structure(index, report)
        il_postings = _check_il_postings(index, report)
        _check_scan_blocks(index, report, il_postings)
        _check_frequencies(index, report, il_postings)
    return report


def fsck_index(index_dir: Union[str, os.PathLike]) -> VerifyReport:
    """``verify_index`` plus the stored-checksum sweeps (``xksearch fsck``)."""
    report = verify_index(index_dir)
    _check_page_checksums(index_dir, report)
    _check_segment_checksums(index_dir, report)
    return report


def _check_page_checksums(
    index_dir: Union[str, os.PathLike], report: VerifyReport
) -> None:
    """Re-checksum every B+tree page against the ``.crc`` sidecar."""
    from repro.errors import CorruptionError
    from repro.index.builder import INDEX_FILE_NAME
    from repro.storage.pager import Pager, crc_sidecar_path

    index_file = os.path.join(os.fspath(index_dir), INDEX_FILE_NAME)
    if not os.path.exists(crc_sidecar_path(index_file)):
        report._fail(
            f"no page-checksum sidecar at {crc_sidecar_path(index_file)} "
            "(index predates checksummed storage; rebuild to create one)"
        )
        return
    try:
        pager = Pager(index_file, readonly=True, verify_checksums=True)
    except ReproError as exc:
        report._fail(f"pager open for checksum sweep: {exc}")
        return
    with pager:
        covered = len(getattr(pager, "_page_crcs", {}))
        if covered == 0:
            report._fail("page-checksum sidecar holds no checksums")
        # Page 0 is the header (parsed and validated at open); data pages
        # start at 1.
        for pid in range(1, pager.num_pages):
            try:
                pager.read_page(pid)
            except CorruptionError as exc:
                report._fail(f"page {pid}: {exc}")
            except ReproError as exc:
                report._fail(f"page {pid} unreadable: {exc}")
    report.checks += 1


def _check_segment_checksums(
    index_dir: Union[str, os.PathLike], report: VerifyReport
) -> None:
    """Re-decode every packed posting block under checksum verification."""
    from repro.errors import CorruptionError
    from repro.index.segments import SegmentReader, segments_path

    path = segments_path(index_dir)
    if not os.path.exists(path):
        return  # segments are optional; nothing to sweep
    try:
        reader = SegmentReader(path, verify_checksums=True)
    except ReproError as exc:
        report._fail(f"segments open for checksum sweep: {exc}")
        return
    with reader:
        if reader.version < 2:
            report._fail(
                f"segments file is v{reader.version} (no per-block "
                "checksums); rebuild to upgrade"
            )
            return
        for keyword in reader.keywords():
            try:
                table = reader.skip_table(keyword)
                for block_index in range(len(table)):
                    reader.block(keyword, block_index)
            except CorruptionError as exc:
                report._fail(f"segment block for {keyword!r}: {exc}")
            except ReproError as exc:
                report._fail(f"segment list for {keyword!r} unreadable: {exc}")
    report.checks += 1


def _check_btree_structure(index: DiskKeywordIndex, report: VerifyReport) -> None:
    for name, tree in (("il", index.il_tree), ("scan", index.scan_tree)):
        try:
            problems = tree.check_invariants()
        except ReproError as exc:
            report._fail(f"{name} tree unreadable: {exc}")
            continue
        report.checks += 1
        for problem in problems:
            report._fail(f"{name} tree: {problem}")


def _check_il_postings(
    index: DiskKeywordIndex, report: VerifyReport
) -> Dict[str, List[Tuple[DeweyTuple, int]]]:
    """Validate and collect every IL posting, grouped by keyword."""
    postings: Dict[str, List[Tuple[DeweyTuple, int]]] = {}
    previous_key = None
    try:
        for key, value in index.il_tree.scan():
            report.postings += 1
            if previous_key is not None and key <= previous_key:
                report._fail(f"il tree: keys not strictly ascending at {key!r}")
            previous_key = key
            try:
                keyword, encoded = split_posting_key(key)
                dewey = index.codec.decode(encoded)
                index.level_table.check_fits(dewey)
            except ReproError as exc:
                report._fail(f"il posting {key!r}: {exc}")
                continue
            if len(value) != 2:
                report._fail(f"il posting {keyword}/{dewey}: bad tag payload")
                continue
            tag_id = int.from_bytes(value, "big")
            if tag_id >= len(index.tags):
                report._fail(
                    f"il posting {keyword}/{dewey}: tag id {tag_id} out of range"
                )
            postings.setdefault(keyword, []).append((dewey, tag_id))
    except ReproError as exc:
        report._fail(f"il tree scan aborted: {exc}")
    report.checks += 1
    report.keywords = len(postings)
    return postings


def _check_scan_blocks(
    index: DiskKeywordIndex,
    report: VerifyReport,
    il_postings: Dict[str, List[Tuple[DeweyTuple, int]]],
) -> None:
    """The scan tree must reproduce the IL tree's contents exactly."""
    seen_keywords = set()
    for keyword in il_postings:
        seen_keywords.add(keyword)
        try:
            scanned = [
                (dewey, index._tag_ids.get(tag, -1))
                for dewey, tag in index.scan_tagged(keyword)
            ]
        except ReproError as exc:
            report._fail(f"scan blocks for {keyword!r} unreadable: {exc}")
            continue
        report.checks += 1
        if scanned != il_postings[keyword]:
            report._fail(
                f"scan/il divergence for {keyword!r}: "
                f"{len(scanned)} vs {len(il_postings[keyword])} postings"
            )
        deweys = [dewey for dewey, _ in scanned]
        if deweys != sorted(set(deweys)):
            report._fail(f"scan blocks for {keyword!r} not strictly sorted")


def _check_frequencies(
    index: DiskKeywordIndex,
    report: VerifyReport,
    il_postings: Dict[str, List[Tuple[DeweyTuple, int]]],
) -> None:
    table = dict(index.frequency_table.items())
    report.checks += 1
    for keyword, plist in il_postings.items():
        recorded = table.pop(keyword, None)
        if recorded != len(plist):
            report._fail(
                f"frequency table says {recorded} for {keyword!r}, "
                f"index holds {len(plist)}"
            )
    for keyword, recorded in table.items():
        report._fail(f"frequency table lists absent keyword {keyword!r} ({recorded})")
