"""Incremental maintenance of an on-disk XKSearch index.

The paper's system builds its index once; real deployments need to add and
remove content.  :class:`IndexUpdater` applies posting-level changes to an
existing index directory:

* the ``il`` tree takes point inserts/deletes (the B+tree handles splits;
  deletion may leave underfull leaves, which scans and matches tolerate);
* the ``scan`` tree is maintained per keyword: all of a changed keyword's
  blocks are read, merged with the change set, re-chunked and rewritten —
  O(|S_kw|) per touched keyword, the right trade for an index whose reads
  vastly outnumber its writes;
* the frequency table and tag dictionary are updated and persisted on
  ``close()``;
* the packed posting segments (:mod:`repro.index.segments`), when the
  index carries them, are **rebuilt on** ``close()`` from the
  authoritative IL tree and stamped with the final generation.  Between
  the first mutation (which bumps the generation, instantly staling the
  old segment file in every reader) and the rebuild, readers serve from
  the B+trees — correct, just not on the fast path.

Two constraints are enforced rather than silently broken:

* new Dewey numbers must fit the existing level table — widening a level
  would change every packed encoding on disk, so the updater raises and
  the caller must rebuild (``build_index``) instead;
* a stored ``document.xml`` no longer matches an updated index, so the
  updater deletes it and flags the manifest, unless the caller provides
  the new document text.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.errors import DeweyError, IndexFormatError
from repro.index.builder import (
    DOCUMENT_NAME,
    FREQUENCY_NAME,
    INDEX_FILE_NAME,
    MANIFEST_NAME,
    TAGS_NAME,
    _default_block_budget,
    load_manifest,
    make_codec,
)
from repro.index.frequency import FrequencyTable
from repro.obs.logging import get_logger
from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.storage.records import (
    block_key,
    keyword_range,
    pack_tagged_block,
    posting_key,
)
from repro.xksearch.cache import bump_generation, current_generation, seed_generation
from repro.xmltree.dewey import DeweyTuple
from repro.xmltree.level_table import LevelTable
from repro.xmltree.tree import Node, TEXT_TAG

#: A change set: keyword → postings, each (dewey, context tag).
TaggedPostings = Mapping[str, Sequence[Tuple[DeweyTuple, str]]]

_log = get_logger("index")


class IndexUpdater:
    """Applies posting changes to an index directory.

    Use as a context manager; metadata (frequency table, tag dictionary,
    manifest) is persisted on exit::

        with IndexUpdater(index_dir) as updater:
            updater.add_postings({"smith": [((0, 5, 1, 0, 0), "author")]})
            updater.remove_postings({"jones": [(0, 2, 1, 1, 0)]})
    """

    def __init__(self, index_dir: Union[str, os.PathLike]):
        self.index_dir = os.fspath(index_dir)
        self.manifest = load_manifest(self.index_dir)
        with open(os.path.join(self.index_dir, "level_table.json"), encoding="utf-8") as fh:
            self.level_table = LevelTable.from_json(fh.read())
        self.codec = make_codec(self.manifest["codec"], self.level_table)
        self.frequency = FrequencyTable.load(os.path.join(self.index_dir, FREQUENCY_NAME))
        tags_path = os.path.join(self.index_dir, TAGS_NAME)
        if os.path.exists(tags_path):
            with open(tags_path, encoding="utf-8") as fh:
                self._tags: List[str] = json.load(fh)
        else:
            self._tags = [""]
        self._tag_ids = {tag: i for i, tag in enumerate(self._tags)}
        index_file = os.path.join(self.index_dir, INDEX_FILE_NAME)
        if not os.path.exists(index_file):
            raise IndexFormatError(f"missing index file at {index_file}")
        self._pager = Pager(index_file)
        self._pool = BufferPool(self._pager, capacity=4096)
        self._il = BPlusTree(self._pool, "il")
        self._scan = BPlusTree(self._pool, "scan")
        self._budget = _default_block_budget(self.manifest["page_size"])
        self._closed = False
        self._postings_delta = 0
        # Join the process-wide generation domain for this index directory,
        # starting from whatever the manifest last persisted.
        seed_generation(self.index_dir, self.manifest.get("generation", 0))

    # -- change application ------------------------------------------------------

    def add_postings(self, changes: TaggedPostings) -> int:
        """Insert postings; returns the number actually added.

        Re-adding an existing (keyword, dewey) posting updates its tag
        rather than duplicating.  Raises :class:`DeweyError` if a Dewey
        number does not fit the index's level table (rebuild instead).
        """
        added = 0
        for keyword, postings in changes.items():
            kw = keyword.lower()
            merged: Dict[DeweyTuple, int] = {}
            for dewey, tag in postings:
                self.level_table.check_fits(dewey)
                merged[dewey] = self._tag_id(tag)
            for dewey, tag_id in merged.items():
                key = posting_key(kw, self.codec.encode(dewey))
                existed = self._il.search(key) is not None
                self._il.insert(key, tag_id.to_bytes(2, "big"))
                if not existed:
                    added += 1
            self._rewrite_scan_blocks(kw)
            self._refresh_frequency(kw)
        self._postings_delta += added
        if added:
            # Stale every cached query result computed against the old
            # contents (see repro.xksearch.cache).
            generation = bump_generation(self.index_dir)
            _log.info(
                "postings_added",
                added=added,
                keywords=len(changes),
                generation=generation,
            )
        return added

    def remove_postings(
        self, changes: Mapping[str, Sequence[DeweyTuple]]
    ) -> int:
        """Delete postings; returns the number actually removed."""
        removed = 0
        for keyword, deweys in changes.items():
            kw = keyword.lower()
            for dewey in deweys:
                try:
                    encoded = self.codec.encode(dewey)
                except DeweyError:
                    continue  # cannot be in the index at all
                if self._il.delete(posting_key(kw, encoded)):
                    removed += 1
            self._rewrite_scan_blocks(kw)
            self._refresh_frequency(kw)
        self._postings_delta -= removed
        if removed:
            generation = bump_generation(self.index_dir)
            _log.info(
                "postings_removed",
                removed=removed,
                keywords=len(changes),
                generation=generation,
            )
        return removed

    def add_subtree(self, node: Node) -> int:
        """Index every keyword occurrence in a (Dewey-numbered) subtree.

        The subtree must already carry its final Dewey numbers (e.g. a new
        document grafted under a collection root via ``renumber_subtree``).
        """
        changes: Dict[str, List[Tuple[DeweyTuple, str]]] = {}
        for descendant in node.iter_subtree():
            if descendant.is_text:
                parent = descendant.parent
                context = parent.tag.lower() if parent is not None else TEXT_TAG
            else:
                context = descendant.tag.lower()
            seen_here = set()
            for word in descendant.keywords():
                if word in seen_here:
                    continue
                seen_here.add(word)
                changes.setdefault(word, []).append((descendant.dewey, context))
        return self.add_postings(changes)

    def remove_subtree(self, node: Node) -> int:
        """Remove every posting contributed by a (Dewey-numbered) subtree."""
        changes: Dict[str, List[DeweyTuple]] = {}
        for descendant in node.iter_subtree():
            seen_here = set()
            for word in descendant.keywords():
                if word in seen_here:
                    continue
                seen_here.add(word)
                changes.setdefault(word, []).append(descendant.dewey)
        return self.remove_postings(changes)

    # -- internals -----------------------------------------------------------------

    def _tag_id(self, tag: str) -> int:
        tag = (tag or "").lower()
        if tag not in self._tag_ids:
            self._tag_ids[tag] = len(self._tags)
            self._tags.append(tag)
        return self._tag_ids[tag]

    def _il_postings(self, keyword: str) -> Iterable[Tuple[bytes, int]]:
        """(dewey encoding, tag id) for one keyword, from the IL tree."""
        lo, hi = keyword_range(keyword)
        for key, value in self._il.scan(lo, hi):
            yield key[len(lo):], int.from_bytes(value, "big")

    def _rewrite_scan_blocks(self, keyword: str) -> None:
        """Re-chunk one keyword's scan-tree run from the (authoritative)
        IL tree contents."""
        lo, hi = keyword_range(keyword)
        old_block_keys = [key for key, _ in self._scan.scan(lo, hi)]
        seq = 0
        block: List[Tuple[bytes, int]] = []
        block_bytes = 0

        def flush() -> None:
            nonlocal seq, block, block_bytes
            self._scan.insert(block_key(keyword, seq), pack_tagged_block(block))
            seq += 1
            block = []
            block_bytes = 0

        for encoded, tag_id in self._il_postings(keyword):
            entry_bytes = len(encoded) + 3
            if block and block_bytes + entry_bytes > self._budget:
                flush()
            block.append((encoded, tag_id))
            block_bytes += entry_bytes
        if block:
            flush()
        for stale in old_block_keys:
            if stale >= block_key(keyword, seq):
                self._scan.delete(stale)

    def _refresh_frequency(self, keyword: str) -> None:
        count = sum(1 for _ in self._il_postings(keyword))
        counts = dict(self.frequency.items())
        if count:
            counts[keyword] = count
        else:
            counts.pop(keyword, None)
        self.frequency = FrequencyTable(counts)

    # -- lifecycle -----------------------------------------------------------------

    def _rebuild_segments(self, generation: int) -> None:
        """Rewrite the packed posting segments from the IL tree.

        Written to a temporary sibling and atomically renamed: live
        readers keep their mapping of the old (now stale-stamped) file
        and pick up the new one on their next generation-driven refresh.
        """
        from repro.index.segments import segments_path, write_segments

        spec = self.manifest.get("segments") or {}
        block_entries = spec.get("block_entries") or None
        decode = self.codec.decode

        def lists():
            for keyword in sorted(
                self.frequency.keywords(), key=lambda kw: kw.encode("utf-8")
            ):
                yield keyword, [
                    decode(encoded) for encoded, _ in self._il_postings(keyword)
                ]

        kwargs = {"block_entries": block_entries} if block_entries else {}
        write_segments(segments_path(self.index_dir), lists(), generation, **kwargs)
        spec = dict(spec)
        spec.setdefault("version", 1)
        spec["generation"] = generation
        if block_entries:
            spec["block_entries"] = block_entries
        self.manifest["segments"] = spec

    def close(self) -> None:
        """Persist metadata and release the index file."""
        if self._closed:
            return
        self.frequency.save(os.path.join(self.index_dir, FREQUENCY_NAME))
        with open(os.path.join(self.index_dir, TAGS_NAME), "w", encoding="utf-8") as fh:
            json.dump(self._tags, fh)
        self.manifest["keywords"] = len(self.frequency)
        self.manifest["postings"] = self.manifest.get("postings", 0) + self._postings_delta
        self.manifest["generation"] = current_generation(self.index_dir)
        if "segments" in self.manifest or os.path.exists(
            os.path.join(self.index_dir, "segments.dat")
        ):
            self._rebuild_segments(self.manifest["generation"])
        document_path = os.path.join(self.index_dir, DOCUMENT_NAME)
        if self._postings_delta != 0 and os.path.exists(document_path):
            # The stored document no longer matches the index contents.
            os.remove(document_path)
            self.manifest["has_document"] = False
        with open(os.path.join(self.index_dir, MANIFEST_NAME), "w", encoding="utf-8") as fh:
            json.dump(self.manifest, fh)
        self._pager.sync()
        self._pager.close()
        self._closed = True
        _log.info(
            "updater_closed",
            index_dir=self.index_dir,
            postings_delta=self._postings_delta,
            generation=self.manifest["generation"],
        )

    def __enter__(self) -> "IndexUpdater":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
