"""Keyword frequency table.

The paper's index builder "generates a frequency table, which records the
frequencies of keywords, is read into memory by the initializer, and is
stored as a hash table.  The query engine ... uses the frequency hash table
to locate the smallest keyword list."  This module is exactly that: a dict
with JSON persistence and the query-planning helper.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Sequence, Tuple, Union


class FrequencyTable:
    """keyword → number of nodes whose label contains the keyword."""

    def __init__(self, counts: Dict[str, int] = None):
        self._counts: Dict[str, int] = dict(counts or {})

    @classmethod
    def from_lists(cls, keyword_lists: Dict[str, Sequence]) -> "FrequencyTable":
        return cls({kw: len(lst) for kw, lst in keyword_lists.items()})

    def frequency(self, keyword: str) -> int:
        """List length for *keyword* (0 when absent from the document)."""
        return self._counts.get(keyword.lower(), 0)

    def __contains__(self, keyword: str) -> bool:
        return keyword.lower() in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def keywords(self) -> Iterable[str]:
        return self._counts.keys()

    def order_by_frequency(self, keywords: Sequence[str]) -> List[str]:
        """Query keywords sorted rarest first.

        The paper always takes the smallest list as ``S1``: the complexity of
        the Eager algorithms is driven by ``|S1|``, so the rarest keyword
        leads.  Ties keep query order (stable sort).  Keywords absent from
        the document sort first with frequency 0, letting the engine
        short-circuit to an empty result.
        """
        return sorted(keywords, key=lambda kw: self.frequency(kw))

    # -- persistence ---------------------------------------------------------

    def save(self, path: Union[str, os.PathLike]) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self._counts, handle)

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "FrequencyTable":
        with open(path, "r", encoding="utf-8") as handle:
            return cls(json.load(handle))

    def items(self) -> Iterable[Tuple[str, int]]:
        return self._counts.items()
