"""Index builder: document → on-disk XKSearch index.

Mirrors the architecture of Figure 6 in the paper: the *LevelTableBuilder*
derives the level table from the document, the *inverted index builder*
emits one keyword list per keyword into the B+tree structures, and a
*frequency table* records list sizes for query planning.

Two B+trees are bulk-loaded into one pager file:

* ``il`` — one entry per posting, keyed ``keyword ⊕ packed-dewey``
  (Figure 5); this is what Indexed Lookup Eager's match lookups descend;
* ``scan`` — per-keyword runs of *blocks*, each block one B+tree value
  packing many compressed Dewey numbers (Figure 4); this is what Scan
  Eager and Stack read sequentially.

The builder accepts either a parsed :class:`XMLTree` or raw keyword lists
(the virtual workloads of the experiment harness build lists directly,
skipping tree materialization at the 100 000-posting scale).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import IndexFormatError
from repro.index.frequency import FrequencyTable
from repro.obs.logging import get_logger
from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import DEFAULT_PAGE_SIZE, Pager
from repro.storage.records import block_key, pack_tagged_block, posting_key
from repro.xmltree.codec import DeweyCodec, PackedDeweyCodec, VarintDeweyCodec
from repro.xmltree.dewey import DeweyTuple
from repro.xmltree.level_table import LevelTable
from repro.xmltree.serialize import serialize
from repro.xmltree.tree import XMLTree

MANIFEST_NAME = "manifest.json"
LEVEL_TABLE_NAME = "level_table.json"
FREQUENCY_NAME = "frequency.json"
TAGS_NAME = "tags.json"
INDEX_FILE_NAME = "index.db"
DOCUMENT_NAME = "document.xml"
FORMAT_VERSION = 1

_log = get_logger("index")

#: Tag id reserved for postings without a known context tag (e.g. indexes
#: built from raw keyword lists).
UNTAGGED = 0

CODECS = ("packed", "varint")


def make_codec(name: str, level_table: LevelTable) -> DeweyCodec:
    """Instantiate the Dewey codec recorded in a manifest."""
    if name == "packed":
        return PackedDeweyCodec(level_table)
    if name == "varint":
        return VarintDeweyCodec()
    raise IndexFormatError(f"unknown Dewey codec {name!r}; expected one of {CODECS}")


@dataclass
class IndexBuildReport:
    """Summary statistics returned by :func:`build_index`."""

    keywords: int
    postings: int
    pages: int
    page_size: int
    il_height: int
    scan_height: int
    codec: str

    @property
    def bytes_on_disk(self) -> int:
        return self.pages * self.page_size


def build_index(
    source: Union[XMLTree, Mapping[str, Sequence[DeweyTuple]]],
    index_dir: Union[str, os.PathLike],
    page_size: int = DEFAULT_PAGE_SIZE,
    codec: str = "packed",
    level_table: Optional[LevelTable] = None,
    keep_document: bool = True,
    scan_block_budget: Optional[int] = None,
    segments: bool = True,
    segment_block_entries: Optional[int] = None,
) -> IndexBuildReport:
    """Build a complete XKSearch index directory.

    ``source`` is a parsed document or a keyword-list mapping.  The level
    table is derived from the document (or from the Dewey numbers
    themselves) unless given explicitly.  With ``keep_document`` and a tree
    source, the document text is stored alongside the index so search
    results can be rendered as XML snippets.

    With ``segments`` (the default) the builder additionally emits the
    packed posting-segment sidecar (:mod:`repro.index.segments`) — the
    zero-copy fast path for ``lm``/``rm``/``scan`` — stamped with the
    directory's current generation; the B+trees remain ground truth.
    """
    index_dir = os.fspath(index_dir)
    os.makedirs(index_dir, exist_ok=True)

    # Normalize the source into tagged postings: kw -> [(dewey, tag id)],
    # plus the tag dictionary (id 0 = untagged).
    tag_ids: Dict[str, int] = {"": UNTAGGED}
    tagged: Dict[str, List[Tuple[DeweyTuple, int]]] = {}
    if isinstance(source, XMLTree):
        for keyword, plist in source.keyword_postings().items():
            tagged[keyword] = [
                (dewey, tag_ids.setdefault(tag, len(tag_ids))) for dewey, tag in plist
            ]
        if level_table is None:
            level_table = LevelTable.from_tree(source)
        document_text: Optional[str] = serialize(source.root) if keep_document else None
    else:
        for keyword, lst in source.items():
            tagged[keyword] = [(dewey, UNTAGGED) for dewey in lst]
        if level_table is None:
            level_table = LevelTable.from_deweys(
                dewey for plist in tagged.values() for dewey, _ in plist
            )
        document_text = None

    dewey_codec = make_codec(codec, level_table)
    frequency = FrequencyTable.from_lists(tagged)

    index_path = os.path.join(index_dir, INDEX_FILE_NAME)
    with Pager(index_path, page_size=page_size, create=True) as pager:
        pool = BufferPool(pager, capacity=4096)
        il_tree = BPlusTree(pool, "il")
        postings = il_tree.bulk_load(_iter_posting_entries(tagged, dewey_codec))
        scan_tree = BPlusTree(pool, "scan")
        budget = scan_block_budget or _default_block_budget(page_size)
        scan_tree.bulk_load(_iter_block_entries(tagged, dewey_codec, budget))
        report = IndexBuildReport(
            keywords=len(frequency),
            postings=postings,
            pages=pager.num_pages,
            page_size=page_size,
            il_height=il_tree.height,
            scan_height=scan_tree.height,
            codec=codec,
        )
        pager.sync()

    with open(os.path.join(index_dir, LEVEL_TABLE_NAME), "w", encoding="utf-8") as fh:
        fh.write(level_table.to_json())
    frequency.save(os.path.join(index_dir, FREQUENCY_NAME))
    tag_list = [tag for tag, _ in sorted(tag_ids.items(), key=lambda kv: kv[1])]
    with open(os.path.join(index_dir, TAGS_NAME), "w", encoding="utf-8") as fh:
        json.dump(tag_list, fh)
    manifest = {
        "version": FORMAT_VERSION,
        "codec": codec,
        "page_size": page_size,
        "keywords": report.keywords,
        "postings": report.postings,
        "has_document": document_text is not None,
    }
    if segments:
        # Imported lazily — repro.xksearch imports this module at package
        # init, so a top-level import would be circular.
        from repro.index.segments import (
            DEFAULT_BLOCK_ENTRIES,
            segments_path,
            write_segments,
        )
        from repro.xksearch.cache import seed_generation

        generation = seed_generation(index_dir, 0)
        block_entries = segment_block_entries or DEFAULT_BLOCK_ENTRIES
        write_segments(
            segments_path(index_dir),
            (
                (keyword, [dewey for dewey, _ in tagged[keyword]])
                for keyword in sorted(tagged, key=lambda kw: kw.encode("utf-8"))
            ),
            generation,
            block_entries=block_entries,
        )
        manifest["generation"] = generation
        manifest["segments"] = {
            "version": 1,
            "generation": generation,
            "block_entries": block_entries,
        }
    with open(os.path.join(index_dir, MANIFEST_NAME), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh)
    if document_text is not None:
        with open(os.path.join(index_dir, DOCUMENT_NAME), "w", encoding="utf-8") as fh:
            fh.write(document_text)
    _log.info(
        "index_built",
        index_dir=os.fspath(index_dir),
        keywords=report.keywords,
        postings=report.postings,
        pages=report.pages,
        codec=report.codec,
    )
    return report


def _default_block_budget(page_size: int) -> int:
    """Byte budget for one scan block: most of a page, leaving room for the
    leaf header, the composite key and the entry framing."""
    return max(64, page_size - 160)


def _iter_posting_entries(
    tagged: Mapping[str, Sequence[Tuple[DeweyTuple, int]]],
    codec: DeweyCodec,
) -> Iterator[Tuple[bytes, bytes]]:
    for keyword in sorted(tagged, key=lambda kw: kw.encode("utf-8")):
        previous: Optional[DeweyTuple] = None
        for dewey, tag_id in tagged[keyword]:
            if previous is not None and dewey <= previous:
                raise IndexFormatError(
                    f"keyword list for {keyword!r} is not strictly sorted"
                )
            previous = dewey
            yield posting_key(keyword, codec.encode(dewey)), tag_id.to_bytes(2, "big")


def _iter_block_entries(
    tagged: Mapping[str, Sequence[Tuple[DeweyTuple, int]]],
    codec: DeweyCodec,
    budget: int,
) -> Iterator[Tuple[bytes, bytes]]:
    for keyword in sorted(tagged, key=lambda kw: kw.encode("utf-8")):
        seq = 0
        block: List[Tuple[bytes, int]] = []
        block_bytes = 0
        for dewey, tag_id in tagged[keyword]:
            encoded = codec.encode(dewey)
            entry_bytes = len(encoded) + 3  # length prefix + 2 tag bytes
            if block and block_bytes + entry_bytes > budget:
                yield block_key(keyword, seq), pack_tagged_block(block)
                seq += 1
                block = []
                block_bytes = 0
            block.append((encoded, tag_id))
            block_bytes += entry_bytes
        if block:
            yield block_key(keyword, seq), pack_tagged_block(block)


def load_manifest(index_dir: Union[str, os.PathLike]) -> Dict:
    """Read and validate an index directory's manifest."""
    path = os.path.join(os.fspath(index_dir), MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        from repro.errors import IndexNotFoundError

        raise IndexNotFoundError(f"no index manifest at {path}") from None
    if manifest.get("version") != FORMAT_VERSION:
        raise IndexFormatError(
            f"index format version {manifest.get('version')} is not supported"
        )
    return manifest
