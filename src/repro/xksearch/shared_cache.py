"""Cross-process shared result cache with cost-aware admission.

The per-process :class:`~repro.xksearch.cache.QueryCache` stops paying off
the moment query execution moves to a pool of worker processes: each
process would warm its own private cache over the same skewed workload.
This module keeps one result store in **anonymous shared memory**
(``mmap.mmap(-1, size)``), created before the pool forks so parent and
every worker address the same physical pages, guarded by one
``multiprocessing.Lock``.

Layout — a fixed-size open-addressing hash table:

* a 64-byte header (magic, slot geometry);
* a *request sketch*: ``sketch_slots`` saturating ``u32`` counters keyed
  by key hash.  Every lookup bumps its key's counter, so by store time
  the cache knows how often a key has been *asked for* — the
  ``expected_reuse`` signal;
* ``slot_count`` fixed-size slots, each ``key_hash u64 | generation u64 |
  cost_ms f64 | score f64 | hits u32 | length u32 | payload``.  Payloads
  are pickled ``(key, value)`` pairs; the key rides along so a 64-bit
  hash collision can never serve a wrong answer.

**Admission is cost-aware, not recency-based.**  Plain LRU admits every
miss, so one scan over a long tail of one-off queries evicts the
expensive popular entries the cache exists for.  Here an entry's worth is
``score = cost_ms x max(1, expected_reuse)`` — what it cost to compute
times how often it has been requested — recomputed as ``cost_ms x (1 +
hits)`` as real hits accrue.  A new result lands in an empty probe slot
(``admit``), beats the cheapest incumbent in its probe window
(``evict``), or is turned away (``reject``); results too large for a slot
are ``oversize``.  Each decision increments
``xks_cache_admission_total{decision}`` in the process-local registry.

Generation stamps work exactly like the in-process cache's: a lookup
under a newer index generation is a miss, drops the stale entry, and
counts an invalidation — in *whichever process* observes it first, which
is what keeps invalidation coherent across the pool.
"""

from __future__ import annotations

import hashlib
import mmap
import multiprocessing
import pickle
import struct
from typing import Any, Hashable, Optional, Tuple

from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry, instrumentation_enabled

#: Default slot geometry: 1024 slots x 4 KiB = 4 MiB of shared results.
DEFAULT_SLOT_COUNT = 1024
DEFAULT_SLOT_SIZE = 4096
DEFAULT_SKETCH_SLOTS = 8192

_MAGIC = b"XKSC"
_HEADER = struct.Struct(">4sHxxIII")          # magic, version, slots, slot_size, sketch
_HEADER_SIZE = 64
_SLOT_HEADER = struct.Struct(">QQddII")       # hash, generation, cost_ms, score, hits, length
_SLOT_HEADER_SIZE = _SLOT_HEADER.size
_SKETCH_ENTRY = struct.Struct(">I")
_VERSION = 1
_PROBES = 8
_U32_MAX = 0xFFFFFFFF

ADMISSION_DECISIONS = ("admit", "evict", "reject", "oversize")

_log = get_logger("shared_cache")


def _key_hash(key_bytes: bytes) -> int:
    value = int.from_bytes(
        hashlib.blake2b(key_bytes, digest_size=8).digest(), "big"
    )
    return value or 1  # 0 marks an empty slot


class SharedCacheStats:
    """Per-process view of shared-cache effectiveness.

    The segment itself is shared; these counters are not (each process
    counts what *it* observed).  The serving layer exposes the parent's
    view, which covers every request the server handled.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.stores = 0
        self.admissions = {decision: 0 for decision in ADMISSION_DECISIONS}

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
            "admissions": dict(self.admissions),
        }


class SharedResultCache:
    """A result cache living in anonymous shared memory.

    Create it **before** forking the worker pool; the mapping and its
    lock are inherited, so every process reads and writes the same slots.
    Values must be picklable and are treated as immutable (lookups return
    a fresh unpickled copy per call, so cross-process mutation cannot
    occur by construction).

    Subclasses reuse the store for other payload kinds by overriding the
    admission-metric identity (see :class:`PostingBlockCache`).
    """

    ADMISSION_METRIC = "xks_cache_admission_total"
    ADMISSION_HELP = "Shared-cache admission decisions (cost-aware policy)."
    LOG_EVENT = "shared_cache_admission"

    def __init__(
        self,
        slot_count: int = DEFAULT_SLOT_COUNT,
        slot_size: int = DEFAULT_SLOT_SIZE,
        sketch_slots: int = DEFAULT_SKETCH_SLOTS,
        lock: Optional[Any] = None,
    ):
        if slot_count < 1:
            raise ValueError("slot_count must be at least 1")
        if slot_size <= _SLOT_HEADER_SIZE:
            raise ValueError(f"slot_size must exceed {_SLOT_HEADER_SIZE}")
        self.slot_count = slot_count
        self.slot_size = slot_size
        self.sketch_slots = sketch_slots
        self._sketch_base = _HEADER_SIZE
        self._slots_base = _HEADER_SIZE + sketch_slots * _SKETCH_ENTRY.size
        total = self._slots_base + slot_count * slot_size
        self._map = mmap.mmap(-1, total)
        self._lock = lock if lock is not None else multiprocessing.Lock()
        self.stats = SharedCacheStats()
        _HEADER.pack_into(
            self._map, 0, _MAGIC, _VERSION, slot_count, slot_size, sketch_slots
        )

    # -- layout helpers ------------------------------------------------------

    def _slot_offset(self, index: int) -> int:
        return self._slots_base + index * self.slot_size

    def _probe_indices(self, key_hash: int):
        for i in range(_PROBES):
            yield (key_hash + (i * (i + 1)) // 2) % self.slot_count

    def _read_slot_header(self, offset: int):
        return _SLOT_HEADER.unpack_from(self._map, offset)

    def _payload_capacity(self) -> int:
        return self.slot_size - _SLOT_HEADER_SIZE

    def _clear_slot(self, offset: int) -> None:
        _SLOT_HEADER.pack_into(self._map, offset, 0, 0, 0.0, 0.0, 0, 0)

    # -- request sketch ------------------------------------------------------

    def _sketch_offset(self, key_hash: int) -> int:
        return self._sketch_base + (key_hash % self.sketch_slots) * _SKETCH_ENTRY.size

    def _sketch_bump(self, key_hash: int) -> int:
        offset = self._sketch_offset(key_hash)
        (count,) = _SKETCH_ENTRY.unpack_from(self._map, offset)
        if count < _U32_MAX:
            count += 1
            _SKETCH_ENTRY.pack_into(self._map, offset, count)
        return count

    def _sketch_count(self, key_hash: int) -> int:
        (count,) = _SKETCH_ENTRY.unpack_from(self._map, self._sketch_offset(key_hash))
        return count

    # -- public API ----------------------------------------------------------

    @staticmethod
    def _key_bytes(key: Hashable) -> bytes:
        return repr(key).encode("utf-8")

    def lookup(self, key: Hashable, generation: int) -> Tuple[bool, Any]:
        """``(hit, value)``; bumps the key's request count either way."""
        key_bytes = self._key_bytes(key)
        key_hash = _key_hash(key_bytes)
        with self._lock:
            self._sketch_bump(key_hash)
            for index in self._probe_indices(key_hash):
                offset = self._slot_offset(index)
                slot_hash, slot_gen, cost_ms, _score, hits, length = (
                    self._read_slot_header(offset)
                )
                if slot_hash != key_hash:
                    continue
                if slot_gen != generation:
                    self._clear_slot(offset)
                    self.stats.invalidations += 1
                    break
                start = offset + _SLOT_HEADER_SIZE
                try:
                    stored_key, value = pickle.loads(self._map[start:start + length])
                except Exception:  # a torn or corrupt slot is just a miss
                    self._clear_slot(offset)
                    break
                if stored_key != key:  # 64-bit hash collision
                    continue
                hits += 1
                _SLOT_HEADER.pack_into(
                    self._map, offset, slot_hash, slot_gen, cost_ms,
                    cost_ms * (1 + hits), hits, length,
                )
                self.stats.hits += 1
                return True, value
            self.stats.misses += 1
            return False, None

    def store(self, key: Hashable, generation: int, value: Any, exec_ms: float) -> str:
        """Admit ``key -> value`` if its cost x expected-reuse score earns a
        slot; returns the admission decision (see module docstring)."""
        key_bytes = self._key_bytes(key)
        key_hash = _key_hash(key_bytes)
        payload = pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > self._payload_capacity():
            return self._admitted("oversize", key_hash, exec_ms)
        with self._lock:
            expected_reuse = max(1, self._sketch_count(key_hash))
            score = max(exec_ms, 0.001) * expected_reuse
            victim_offset = None
            victim_score = None
            target = None
            for index in self._probe_indices(key_hash):
                offset = self._slot_offset(index)
                slot_hash, _gen, _cost, slot_score, _hits, _length = (
                    self._read_slot_header(offset)
                )
                if slot_hash == key_hash or slot_hash == 0:
                    target = offset  # refresh in place, or take the free slot
                    break
                if victim_score is None or slot_score < victim_score:
                    victim_score = slot_score
                    victim_offset = offset
            if target is not None:
                decision = "admit"
            elif victim_score is not None and score > victim_score:
                target = victim_offset
                decision = "evict"
            else:
                return self._admitted("reject", key_hash, exec_ms)
            _SLOT_HEADER.pack_into(
                self._map, target, key_hash, generation,
                max(exec_ms, 0.001), score, 0, len(payload),
            )
            start = target + _SLOT_HEADER_SIZE
            self._map[start:start + len(payload)] = payload
            self.stats.stores += 1
        return self._admitted(decision, key_hash, exec_ms)

    def _admitted(self, decision: str, key_hash: int, exec_ms: float) -> str:
        self.stats.admissions[decision] += 1
        if instrumentation_enabled():
            get_registry().counter(
                self.ADMISSION_METRIC,
                self.ADMISSION_HELP,
                labelnames=("decision",),
            ).labels(decision=decision).inc()
        if decision != "admit" and _log.enabled_for("debug"):
            _log.debug(
                self.LOG_EVENT,
                decision=decision,
                exec_ms=round(exec_ms, 3),
            )
        return decision

    def clear(self) -> None:
        with self._lock:
            for index in range(self.slot_count):
                self._clear_slot(self._slot_offset(index))

    def __len__(self) -> int:
        """Live entries (a linear scan; stats/debug use only)."""
        with self._lock:
            return sum(
                1
                for index in range(self.slot_count)
                if self._read_slot_header(self._slot_offset(index))[0] != 0
            )

    def stats_dict(self) -> dict:
        out = self.stats.as_dict()
        out["slots"] = self.slot_count
        out["slot_size"] = self.slot_size
        return out

    def close(self) -> None:
        self._map.close()

    def __enter__(self) -> "SharedResultCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Posting-block geometry: 512 slots x 16 KiB = 8 MiB of decoded blocks.
#: A decoded 128-id block pickles to a few KiB; 16 KiB slots keep even
#: deep-Dewey blocks admissible.
POSTING_SLOT_COUNT = 512
POSTING_SLOT_SIZE = 16384


class PostingBlockCache(SharedResultCache):
    """Cross-process cache of **decoded posting blocks** (the layer below
    the result cache).

    Same machinery as :class:`SharedResultCache` — anonymous shared
    memory, frequency x recency admission (``decode cost x expected
    reuse``), generation-stamped entries — but keyed by ``("pblk",
    keyword, block index)`` and stamped with the *segment* generation
    (:mod:`repro.index.segments`), so an :class:`~repro.index.updates.IndexUpdater`
    bump instantly stales every process's view of the old blocks.  A
    result-cache hit short-circuits above this layer; this one pays off
    on cache-miss queries, where every pool worker would otherwise decode
    the same hot blocks privately.  Admission decisions count toward
    ``xks_posting_cache_admission_total{decision}``.
    """

    ADMISSION_METRIC = "xks_posting_cache_admission_total"
    ADMISSION_HELP = "Posting-block cache admission decisions (cost-aware policy)."
    LOG_EVENT = "posting_cache_admission"

    def __init__(
        self,
        slot_count: int = POSTING_SLOT_COUNT,
        slot_size: int = POSTING_SLOT_SIZE,
        sketch_slots: int = DEFAULT_SKETCH_SLOTS,
        lock: Optional[Any] = None,
    ):
        super().__init__(
            slot_count=slot_count,
            slot_size=slot_size,
            sketch_slots=sketch_slots,
            lock=lock,
        )
