"""Query engine: planning and execution.

The paper's engine "accepts a keyword search, uses the frequency hash table
to locate the smallest keyword list, executes the Indexed Lookup Eager,
Scan Eager [or] Stack algorithms and returns all SLCAs."  Planning decides

* the list order — smallest list first (it becomes ``S1``; all complexity
  bounds are driven by ``|S1|``), and
* the algorithm — under ``"auto"``, Indexed Lookup Eager when the largest
  and smallest list sizes differ by at least ``skew_threshold`` (the regime
  where the paper shows IL winning by orders of magnitude), Scan Eager when
  the frequencies are similar (where scanning beats ``log``-factor
  lookups).  The Stack baseline is available on request.

Any keyword absent from the document short-circuits to an empty result, as
an empty keyword list admits no answer subtree.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.core import eager_slca, find_all_lcas, stack_elca, stack_slca
from repro.core.counters import OpCounters
from repro.errors import CorruptionError, PoolError, QueryError
from repro.index.inverted import DiskKeywordIndex
from repro.index.memory import MemoryKeywordIndex
from repro.obs.logging import current_trace_id, get_logger
from repro.obs.metrics import exponential_buckets, get_registry, instrumentation_enabled
from repro.obs.profile import QueryProfile, maybe_phase
from repro.robustness.breaker import CircuitBreaker
from repro.robustness.deadline import current_deadline
from repro.xksearch.cache import QueryCache, normalize_key
from repro.xksearch.shared_cache import SharedResultCache
from repro.xmltree.dewey import DeweyTuple
from repro.xmltree.tree import extract_keywords

AnyIndex = Union[DiskKeywordIndex, MemoryKeywordIndex]

ALGORITHMS = ("auto", "il", "scan", "stack")

#: Default largest/smallest frequency ratio above which auto planning
#: prefers Indexed Lookup Eager.
DEFAULT_SKEW_THRESHOLD = 10.0

#: Engine execution-time histogram buckets: 0.01 ms … ~5 s, factor 2.
_EXEC_BUCKETS_MS = exponential_buckets(0.01, 2.0, 20)

#: Log-spaced |S1| bands, matching the paper's 10/100/1000 frequency axis
#: (Figures 8-13 sweep the smallest-list size in decades).  Every executed
#: query is attributed to one band via its plan's smallest keyword list.
FREQUENCY_BANDS = ("0", "1-9", "10-99", "100-999", "1000+")

_log = get_logger("engine")


def frequency_band(frequency: int) -> str:
    """The log-spaced band a smallest-list frequency falls into.

    All the paper's complexity bounds are driven by ``|S1|``, so latency
    attribution by this band separates "slow because the query is large"
    from "slow because the system regressed".
    """
    if frequency <= 0:
        return FREQUENCY_BANDS[0]
    if frequency < 10:
        return FREQUENCY_BANDS[1]
    if frequency < 100:
        return FREQUENCY_BANDS[2]
    if frequency < 1000:
        return FREQUENCY_BANDS[3]
    return FREQUENCY_BANDS[4]


@dataclass(frozen=True)
class QueryAtom:
    """One query term: a keyword, optionally restricted to a context tag.

    ``title:query`` matches the word ``query`` only at nodes whose context
    element (the node itself, or a text node's parent) is ``<title>``.
    """

    keyword: str
    tag: Optional[str] = None

    @property
    def display(self) -> str:
        return f"{self.tag}:{self.keyword}" if self.tag else self.keyword

    def __str__(self) -> str:
        return self.display


def parse_query(query: Union[str, Sequence[str]]) -> List[QueryAtom]:
    """Query text or token sequence → query atoms.

    Plain words become unqualified atoms; ``tag:word`` tokens become
    tag-qualified atoms.  Words are lowercased/tokenized exactly like
    document labels; duplicate atoms collapse.
    """
    raw_tokens = query.split() if isinstance(query, str) else list(query)
    atoms: List[QueryAtom] = []
    for raw in raw_tokens:
        tag: Optional[str] = None
        body = raw
        if ":" in raw:
            tag_part, body = raw.split(":", 1)
            tag_words = extract_keywords(tag_part)
            if len(tag_words) == 1:
                tag = tag_words[0]
            else:
                body = raw  # not a clean qualifier; treat whole token as words
        for word in extract_keywords(body):
            atom = QueryAtom(word, tag)
            if atom not in atoms:
                atoms.append(atom)
    if not atoms:
        raise QueryError("query contains no searchable keywords")
    return atoms


def normalize_query(query: Union[str, Sequence[str]]) -> List[str]:
    """Query → unique keyword/atom display strings (see :func:`parse_query`)."""
    return [atom.display for atom in parse_query(query)]


@dataclass
class QueryPlan:
    """The engine's decision for one query."""

    keywords: List[str]          # atom displays, rarest first
    algorithm: str               # resolved: "il", "scan" or "stack"
    frequencies: List[int]       # aligned with `keywords`
    empty: bool                  # some keyword does not occur at all
    atoms: List[QueryAtom] = field(default_factory=list)
    # Tag-filtered lists materialized at planning time, keyed by atom —
    # execution reuses them instead of rescanning.
    filtered: Dict[QueryAtom, List[DeweyTuple]] = field(default_factory=dict)

    @property
    def skew(self) -> float:
        """Largest/smallest frequency ratio (inf when a list is empty)."""
        if not self.frequencies or min(self.frequencies) == 0:
            return float("inf")
        return max(self.frequencies) / min(self.frequencies)

    @property
    def band(self) -> str:
        """Frequency band of the smallest keyword list (``|S1|``)."""
        return frequency_band(min(self.frequencies) if self.frequencies else 0)

    def summary(self) -> dict:
        """JSON-friendly plan description (EXPLAIN output, trace attrs)."""
        skew = self.skew
        return {
            "keywords": list(self.keywords),
            "frequencies": list(self.frequencies),
            "algorithm": self.algorithm,
            "empty": self.empty,
            "band": self.band,
            "skew": None if math.isinf(skew) else round(skew, 2),
        }


@dataclass
class ExecutionStats:
    """What one execution cost.

    The ``cache_*`` fields are only populated when the engine runs with a
    :class:`~repro.xksearch.cache.QueryCache`: ``cache_hits`` /
    ``cache_misses`` count this call's result-cache lookups (a plain
    ``execute`` makes exactly one; ``execute_many`` makes one per distinct
    query in the batch), ``cache_evictions`` counts entries this call's
    stores pushed out, and ``result_from_cache`` is true when the answer
    was served without touching the index at all.
    """

    counters: OpCounters = field(default_factory=OpCounters)
    page_reads: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    result_from_cache: bool = False
    #: Hits against the cross-process shared result cache, whether the
    #: lookup happened in this process or inside a pool worker.
    shared_hits: int = 0
    #: Admission decision of this call's shared-cache store, if one
    #: happened ("admit"/"evict"/"reject"/"oversize").
    shared_admission: Optional[str] = None
    #: EXPLAIN breakdown, set by ``execute(..., profile=True)``.
    profile: Optional[QueryProfile] = None
    #: Worker-side span trees (plain dicts) returned by pooled executions —
    #: the serving layer grafts them under the request's trace so traces
    #: show where the work actually ran.
    worker_spans: List[dict] = field(default_factory=list)

    @property
    def cache_hit(self) -> bool:
        """Whether the answer came from the result cache.

        Cache hits are stamped with the cached entry's *original* execution
        counters (merged into :attr:`counters`), so a hit is distinguishable
        from a genuinely free query rather than returning zeroed counters.
        """
        return self.result_from_cache


class QueryEngine:
    """Plans and executes keyword queries against an index.

    With a :class:`~repro.xksearch.cache.QueryCache` attached, plans and
    result tuples are memoized under a key that is insensitive to keyword
    order, and entries are stamped with the index's mutation *generation*
    so an :class:`~repro.index.updates.IndexUpdater` run invalidates them.
    Caching is opt-in: benchmarks measuring raw algorithm cost construct
    engines without one.

    Two optional cross-process layers compose with the local cache:

    * a :class:`~repro.xksearch.shared_cache.SharedResultCache` is
      consulted after a local miss and fed after every execution, so a
      result computed anywhere (this process or any pool worker) is a
      hit everywhere, under the same generation stamps;
    * a :class:`~repro.xksearch.parallel.WorkerPool` (attached via
      :meth:`attach_pool`) moves cache-miss execution into worker
      processes.  Answers are byte-identical to in-thread execution —
      workers run the same planner over the same index — and any
      dispatch failure falls back to executing in-thread (counted by
      ``xks_pool_fallback_total``), never failing the request.  The
      EXPLAIN path (``profile=True``) always runs in-thread so its
      phase timings and I/O attribution describe *this* process.
    """

    def __init__(
        self,
        index: AnyIndex,
        skew_threshold: float = DEFAULT_SKEW_THRESHOLD,
        cache: Optional[QueryCache] = None,
        shared_cache: Optional[SharedResultCache] = None,
    ):
        self.index = index
        self.skew_threshold = skew_threshold
        self.cache = cache
        self.shared = shared_cache
        self.pool = None
        # Trips after consecutive dispatch failures so a dead pool costs
        # one up-front check per request instead of a discovery timeout;
        # recovery is probed automatically (docs/ROBUSTNESS.md).
        self.breaker = CircuitBreaker()
        # Debug-only latency injection (ms), added to every in-thread
        # execution *inside* the timed window so it shows up in
        # xks_query_exec_ms — how the SLO alerting path is exercised
        # end-to-end (`serve --debug-latency-ms`, ci_obs_smoke).
        self.debug_latency_ms = 0.0
        # Per-algorithm OpCounters aggregates over this engine's lifetime
        # (the /statz "counters" section); registry metrics mirror them.
        self._totals: Dict[str, OpCounters] = {}
        self._totals_lock = threading.Lock()

    def attach_pool(self, pool) -> None:
        """Route cache-miss execution through a worker pool.

        ``pool`` needs the :class:`~repro.xksearch.parallel.WorkerPool`
        interface (``execute(semantics, tokens, algorithm, generation)``
        and ``size``); it should have been created against the same index
        directory, before any server threads started.
        """
        self.pool = pool

    def detach_pool(self) -> None:
        self.pool = None

    # -- observability -------------------------------------------------------

    def counter_totals(self) -> Dict[str, dict]:
        """Accumulated :class:`OpCounters` per executed algorithm."""
        with self._totals_lock:
            totals = {alg: c.snapshot() for alg, c in self._totals.items()}
        merged = OpCounters()
        for counters in totals.values():
            merged.add(counters)
        out = {alg: counters.as_dict() for alg, counters in sorted(totals.items())}
        out["_total"] = merged.as_dict()
        return out

    def _note_query(
        self,
        semantics: str,
        cache_state: str,
        algorithm: str,
        delta: Optional[OpCounters],
        exec_ms: Optional[float],
        band: Optional[str] = None,
    ) -> None:
        """Record one query against the engine totals and the registry.

        ``cache_state`` is ``hit`` (local cache), ``shared`` (cross-process
        cache, possibly observed inside a pool worker), ``miss`` or ``off``;
        ``delta``, ``exec_ms`` and ``band`` (the plan's smallest-list
        frequency band) are only present when an actual execution happened.
        """
        if not instrumentation_enabled():
            return
        registry = get_registry()
        registry.counter(
            "xks_queries_total",
            "Queries executed or answered from cache.",
            labelnames=("semantics", "algorithm", "cache"),
        ).labels(semantics=semantics, algorithm=algorithm, cache=cache_state).inc()
        if delta is not None:
            with self._totals_lock:
                totals = self._totals.get(algorithm)
                if totals is None:
                    totals = self._totals[algorithm] = OpCounters()
                totals.add(delta)
            ops = registry.counter(
                "xks_algo_ops_total",
                "Algorithm-level operation counts (the paper's cost model).",
                labelnames=("algorithm", "op"),
            )
            for op, value in delta.as_dict().items():
                if value:
                    ops.labels(algorithm=algorithm, op=op).inc(value)
        if exec_ms is not None:
            registry.histogram(
                "xks_query_exec_ms",
                "Engine execution time of non-cached queries (ms), by "
                "smallest-list frequency band and algorithm.",
                buckets=_EXEC_BUCKETS_MS,
                labelnames=("band", "algorithm"),
            ).labels(band=band or "0", algorithm=algorithm).observe(
                exec_ms, trace_id=current_trace_id()
            )
            if _log.enabled_for("debug"):
                _log.debug(
                    "query_executed",
                    semantics=semantics,
                    algorithm=algorithm,
                    band=band or "0",
                    cache=cache_state,
                    exec_ms=round(exec_ms, 3),
                )

    def _accounted(
        self,
        iterator: Iterator[DeweyTuple],
        stats: ExecutionStats,
        semantics: str,
        algorithm: str,
        band: Optional[str] = None,
    ) -> Iterator[DeweyTuple]:
        """Wrap a lazy execution so counters flush once it is consumed."""
        before = stats.counters.snapshot()
        started = time.perf_counter()
        try:
            self._debug_sleep()
            yield from iterator
        finally:
            exec_ms = (time.perf_counter() - started) * 1000
            self._note_query(
                semantics, "off", algorithm, stats.counters.delta(before), exec_ms,
                band=band,
            )

    def _debug_sleep(self) -> None:
        delay = self.debug_latency_ms
        if delay > 0:
            time.sleep(delay / 1000.0)

    # -- corruption recovery -------------------------------------------------

    def _run_with_retry(
        self,
        plan: QueryPlan,
        stats: ExecutionStats,
        runner: Callable[[QueryPlan, ExecutionStats], Iterator[DeweyTuple]],
    ) -> tuple:
        """Materialize one execution, re-running once on segment corruption.

        A :class:`~repro.errors.CorruptionError` from the segment tier has
        already quarantined the reader (``segments_active`` is now False),
        so the retry rebuilds its sources from the B+trees — the ground
        truth — and the answer is byte-identical to what the segments
        would have produced.  B+tree corruption is not retried: there is
        nothing more authoritative to fall back to.
        """
        try:
            return tuple(runner(plan, stats))
        except CorruptionError as exc:
            if exc.tier != "segment":
                raise
            _log.warning("segment_corruption_retry", error=str(exc))
            return tuple(runner(plan, stats))

    def _retryable(
        self,
        plan: QueryPlan,
        stats: ExecutionStats,
        runner: Callable[[QueryPlan, ExecutionStats], Iterator[DeweyTuple]],
    ) -> Iterator[DeweyTuple]:
        """Streaming variant of :meth:`_run_with_retry`.

        Answers are in document order and byte-identical across tiers, so
        after a mid-stream corruption the re-execution skips the prefix
        already handed to the consumer and resumes exactly where the
        stream broke.
        """
        yielded = 0
        try:
            for item in runner(plan, stats):
                yielded += 1
                yield item
            return
        except CorruptionError as exc:
            if exc.tier != "segment":
                raise
            _log.warning("segment_corruption_retry", error=str(exc))
        for index, item in enumerate(runner(plan, stats)):
            if index < yielded:
                continue
            yield item

    def generation(self) -> int:
        """The index's current mutation generation (0 for static indexes)."""
        generation = getattr(self.index, "generation", None)
        return generation() if callable(generation) else 0

    def _plan_summary(self, plan: QueryPlan) -> dict:
        """Plan summary for EXPLAIN, annotated with the posting tier.

        ``posting_tier`` says which physical layer keyword lookups hit:
        ``"segment"`` (packed posting segments, zero-copy mmap) or
        ``"bptree"`` (B+tree descents); in-memory indexes report neither.
        """
        summary = plan.summary()
        tier = getattr(self.index, "posting_tier", None)
        if callable(tier):
            summary["posting_tier"] = tier()
        return summary

    def plan(
        self,
        query: Union[str, Sequence[str]],
        algorithm: str = "auto",
    ) -> QueryPlan:
        """Resolve keyword order and algorithm without executing.

        With a cache attached the plan may come from the plan cache; a
        cached plan's keyword order can differ from a freshly computed one
        only between atoms of equal frequency (the cache key is
        order-insensitive), which never changes the result set.
        """
        if algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        return self._plan_atoms(parse_query(query), algorithm)

    def _plan_atoms(self, atoms: List[QueryAtom], algorithm: str) -> QueryPlan:
        if self.cache is not None:
            key = normalize_key(
                (a.display for a in atoms), algorithm, semantics="plan"
            )
            generation = self.generation()
            hit, plan = self.cache.lookup_plan(key, generation)
            if hit:
                return plan
            plan = self._build_plan(atoms, algorithm)
            self.cache.store_plan(key, generation, plan)
            return plan
        return self._build_plan(atoms, algorithm)

    def _build_plan(self, atoms: List[QueryAtom], algorithm: str) -> QueryPlan:
        filtered: Dict[QueryAtom, List[DeweyTuple]] = {}
        frequencies_by_atom: Dict[QueryAtom, int] = {}
        for atom in atoms:
            if atom.tag is None:
                frequencies_by_atom[atom] = self.index.frequency(atom.keyword)
            else:
                # Tag filters need the actual postings; materialize once and
                # carry the list into execution.
                lst = self.index.keyword_list(atom.keyword, atom.tag)
                filtered[atom] = lst
                frequencies_by_atom[atom] = len(lst)
        ordered = sorted(atoms, key=lambda a: frequencies_by_atom[a])
        frequencies = [frequencies_by_atom[a] for a in ordered]
        empty = any(f == 0 for f in frequencies)
        if algorithm == "auto":
            skew = (
                max(frequencies) / min(frequencies)
                if frequencies and min(frequencies) > 0
                else float("inf")
            )
            algorithm = "il" if skew >= self.skew_threshold else "scan"
        return QueryPlan(
            [a.display for a in ordered],
            algorithm,
            frequencies,
            empty,
            atoms=ordered,
            filtered=filtered,
        )

    def execute(
        self,
        query: Union[str, Sequence[str]],
        algorithm: str = "auto",
        stats: Optional[ExecutionStats] = None,
        profile: bool = False,
    ) -> Iterator[DeweyTuple]:
        """SLCAs of the query, streamed in document order.

        With a cache attached, repeats of a query (in any keyword order)
        are answered from memory; the result is then an iterator over the
        memoized tuple rather than a pipelined computation.

        With ``profile=True`` the execution is materialized and a
        :class:`~repro.obs.profile.QueryProfile` (per-phase timings,
        op-count deltas, I/O attribution) is attached to ``stats.profile``.
        The answer is byte-identical to the non-profiled path.
        """
        if algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        stats = stats if stats is not None else ExecutionStats()
        if not profile:
            return self._execute_cached(
                parse_query(query), algorithm, "slca", stats, self.execute_plan
            )
        query_text = query if isinstance(query, str) else " ".join(query)
        prof = QueryProfile(query_text, algorithm, "slca")
        stats.profile = prof
        started = time.perf_counter()
        counters_before = stats.counters.snapshot()
        io_before = self._io_state()
        with maybe_phase(prof, "parse"):
            atoms = parse_query(query)
        result = self._execute_cached(
            atoms, algorithm, "slca", stats, self.execute_plan, prof=prof
        )
        prof.total_ms = (time.perf_counter() - started) * 1000
        prof.counters = stats.counters.delta(counters_before).as_dict()
        prof.io = self._io_delta(io_before)
        return result

    def _io_state(self) -> Optional[dict]:
        """Snapshot of pager/pool counters (None for in-memory indexes)."""
        pager = getattr(self.index, "pager", None)
        pool = getattr(self.index, "pool", None)
        if pager is None or pool is None:
            return None
        return {"pager": pager.stats.as_dict(), "pool": pool.stats.as_dict()}

    def _io_delta(self, before: Optional[dict]) -> Optional[dict]:
        """Pager/pool counter movement since :meth:`_io_state`.

        Per-index counters, so concurrent queries' I/O folds in; exact in
        single-query contexts (CLI ``--explain``, benchmarks).
        """
        after = self._io_state()
        if before is None or after is None:
            return None
        return {
            "page_reads": after["pager"]["reads"] - before["pager"]["reads"],
            "sequential_reads": after["pager"]["sequential_reads"]
            - before["pager"]["sequential_reads"],
            "random_reads": after["pager"]["random_reads"]
            - before["pager"]["random_reads"],
            "pool_hits": after["pool"]["hits"] - before["pool"]["hits"],
            "pool_misses": after["pool"]["misses"] - before["pool"]["misses"],
        }

    # -- cross-process layers ------------------------------------------------

    def _pool_execute(self, semantics, plan, algorithm, generation, stats=None):
        """Try to run one planned query in a pool worker.

        Returns ``(ids, delta, exec_ms, shared_hit)`` on success, or
        ``None`` when the pool is absent, the plan is trivially empty, or
        the dispatch failed — the caller then executes in-thread.  The
        worker re-plans from the same atom displays and the *requested*
        algorithm, so its planning (and its shared-cache key) matches this
        process exactly.

        The task envelope carries this request's trace id
        (:func:`current_trace_id`), and the worker's reply carries its
        captured metric updates and span tree: the events are replayed
        into this process's registry here (so ``/metrics`` stays
        fleet-accurate — the worker already counted the query, the ops
        and the latency, exemplar trace id included), and the spans land
        on ``stats.worker_spans`` for the serving layer to graft.  The
        caller must therefore NOT call :meth:`_note_query` for a pooled
        execution; :meth:`_merge_totals` keeps the engine-local totals
        honest instead.
        """
        pool = self.pool
        if pool is None or plan.empty:
            return None
        if not self.breaker.allow():
            self._note_fallback(None, reason="breaker_open")
            return None
        deadline = current_deadline()
        tokens = [a.display for a in plan.atoms]
        try:
            task = pool.execute(
                semantics,
                tokens,
                algorithm,
                generation,
                trace_id=current_trace_id(),
                want_spans=True,
                deadline_epoch=(
                    deadline.wall_expiry() if deadline is not None else None
                ),
            )
        except PoolError as exc:
            # DeadlineExceeded deliberately propagates instead: an expired
            # request must 504, never re-execute in-thread.
            self.breaker.record_failure()
            self._note_fallback(exc)
            return None
        self.breaker.record_success()
        delta = OpCounters(**task.counters)
        self._replay_worker_events(task)
        if stats is not None and task.spans is not None:
            stats.worker_spans.append(task.spans)
        return tuple(task.ids), delta, task.exec_ms, bool(task.shared_hit)

    def _replay_worker_events(self, task) -> None:
        """Replay one worker's captured metric updates into this registry.

        The worker counted everything in its own (private) registry —
        ``xks_queries_total``, ``xks_algo_ops_total``, the
        ``xks_query_exec_ms`` observation with the request's exemplar
        trace id, shared-cache admissions, segment/pager counters.  The
        only label that lies from the parent's perspective is
        ``xks_queries_total{cache=...}``: the worker has no local result
        cache, so it says ``off`` where this process experienced a local
        ``miss`` — rewritten before replay.
        """
        if not task.events or not instrumentation_enabled():
            return
        events = task.events
        if self.cache is not None:
            events = [self._rewrite_cache_label(event) for event in events]
        applied = get_registry().replay_events(events)
        if applied:
            get_registry().counter(
                "xks_worker_events_replayed_total",
                "Worker-side metric updates replayed into this registry.",
                labelnames=("worker",),
            ).labels(worker=str(task.worker)).inc(applied)

    @staticmethod
    def _rewrite_cache_label(event: tuple) -> tuple:
        if event[0] != "c" or event[1] != "xks_queries_total":
            return event
        labelnames, labelvalues = event[2], event[3]
        try:
            index = tuple(labelnames).index("cache")
        except ValueError:
            return event
        values = list(labelvalues)
        if values[index] != "off":
            return event
        values[index] = "miss"
        return (event[0], event[1], event[2], tuple(values)) + tuple(event[4:])

    def _merge_totals(self, algorithm: str, delta: OpCounters) -> None:
        """Fold a pooled execution's op counters into the engine totals
        (the ``/statz`` counters section) — the registry side already
        arrived via event replay."""
        with self._totals_lock:
            totals = self._totals.get(algorithm)
            if totals is None:
                totals = self._totals[algorithm] = OpCounters()
            totals.add(delta)

    def _note_fallback(
        self, exc: Optional[PoolError], reason: Optional[str] = None
    ) -> None:
        reason = reason or (type(exc).__name__ if exc is not None else "unknown")
        _log.warning("pool_fallback", error=repr(exc), reason=reason)
        if instrumentation_enabled():
            get_registry().counter(
                "xks_pool_fallback_total",
                "Queries executed in-thread after a pool dispatch failure "
                "or while the pool breaker is open.",
                labelnames=("reason",),
            ).labels(reason=reason).inc()

    def _shared_lookup(self, key, generation, semantics, algorithm, stats):
        """Consult the shared cache; on a hit, stamp stats, warm the local
        cache, and return the ids tuple (``None`` on a miss)."""
        hit, entry = self.shared.lookup(key, generation)
        if not hit:
            return None
        ids, counters_dict = entry
        ids = tuple(ids)
        delta = OpCounters(**counters_dict) if counters_dict else None
        stats.shared_hits += 1
        stats.result_from_cache = True
        if delta is not None:
            stats.counters.add(delta)
        if self.cache is not None:
            self.cache.store_result(key, generation, (ids, delta))
        self._note_query(semantics, "shared", algorithm, None, None)
        return ids

    def _execute_cached(
        self,
        atoms: List[QueryAtom],
        algorithm: str,
        semantics: str,
        stats: ExecutionStats,
        runner: Callable[[QueryPlan, ExecutionStats], Iterator[DeweyTuple]],
        prof: Optional[QueryProfile] = None,
    ) -> Iterator[DeweyTuple]:
        """Run (or recall) one query under one result semantics.

        Cache entries are ``(ids, counters)`` pairs — the SLCA tuple plus
        the operation counters of the execution that computed it — so a
        cache hit can stamp :class:`ExecutionStats` with the original cost
        instead of returning indistinguishable zeroes.

        Lookup order is local cache → shared cache → execute, and the
        execution goes to the worker pool when one is attached (falling
        back in-thread on any :class:`~repro.errors.PoolError`).  Profiled
        (EXPLAIN) calls bypass the shared cache and the pool entirely so
        the profile describes an execution in this process.
        """
        # The cross-process layers are bypassed under EXPLAIN (see above).
        shared = self.shared if prof is None else None
        pooled_ok = prof is None and self.pool is not None
        if self.cache is None and shared is None:
            with maybe_phase(prof, "plan") as phase:
                plan = self._plan_atoms(atoms, algorithm)
            if prof is None:
                if pooled_ok:
                    pooled = self._pool_execute(
                        semantics, plan, algorithm, self.generation(), stats=stats
                    )
                    if pooled is not None:
                        # The worker already counted this query (event
                        # replay in _pool_execute) — only the engine-local
                        # totals need merging here.
                        ids, delta, exec_ms, shared_hit = pooled
                        stats.counters.add(delta)
                        if shared_hit:
                            stats.shared_hits += 1
                            stats.result_from_cache = True
                        else:
                            self._merge_totals(plan.algorithm, delta)
                        return iter(ids)
                return self._accounted(
                    self._retryable(plan, stats, runner), stats, semantics,
                    plan.algorithm, band=plan.band,
                )
            prof.algorithm = plan.algorithm
            prof.plan = self._plan_summary(plan)
            if phase is not None:
                phase.detail["algorithm"] = plan.algorithm
            return self._run_profiled(plan, semantics, "off", stats, runner, prof)
        key = normalize_key((a.display for a in atoms), algorithm, semantics)
        generation = self.generation()
        if self.cache is not None:
            with maybe_phase(prof, "cache_lookup"):
                hit, entry = self.cache.lookup_result(key, generation)
            if hit:
                ids, cached_counters = entry
                stats.cache_hits += 1
                stats.result_from_cache = True
                if cached_counters is not None:
                    stats.counters.add(cached_counters)
                self._note_query(semantics, "hit", algorithm, None, None)
                if prof is not None:
                    prof.cache_hit = True
                    prof.result_count = len(ids)
                    # Plans are cheap; re-derive one so EXPLAIN on a hit still
                    # shows what an execution would have run.
                    with maybe_phase(prof, "plan"):
                        plan = self._plan_atoms(atoms, algorithm)
                    prof.algorithm = plan.algorithm
                    prof.plan = self._plan_summary(plan)
                return iter(ids)
            stats.cache_misses += 1
        if shared is not None:
            ids = self._shared_lookup(key, generation, semantics, algorithm, stats)
            if ids is not None:
                return iter(ids)
        with maybe_phase(prof, "plan") as phase:
            plan = self._plan_atoms(atoms, algorithm)
        if prof is not None:
            prof.algorithm = plan.algorithm
            prof.plan = self._plan_summary(plan)
            if phase is not None:
                phase.detail["algorithm"] = plan.algorithm
        pooled = (
            self._pool_execute(semantics, plan, algorithm, generation, stats=stats)
            if pooled_ok
            else None
        )
        if pooled is not None:
            # Pooled executions are fully counted worker-side and replayed
            # (_pool_execute); only the engine-local totals merge here.
            value, delta, exec_ms, shared_hit = pooled
            stats.counters.add(delta)
            if shared_hit:
                stats.shared_hits += 1
                stats.result_from_cache = True
            else:
                self._merge_totals(plan.algorithm, delta)
        else:
            before = stats.counters.snapshot()
            exec_started = time.perf_counter()
            self._debug_sleep()
            with maybe_phase(prof, "execute", algorithm=plan.algorithm):
                value = self._run_with_retry(plan, stats, runner)
            exec_ms = (time.perf_counter() - exec_started) * 1000
            delta = stats.counters.delta(before)
            shared_hit = False
            if shared is not None:
                stats.shared_admission = shared.store(
                    key, generation, (value, delta.as_dict()), exec_ms
                )
            self._note_query(
                semantics,
                "miss" if self.cache is not None else "off",
                plan.algorithm,
                delta,
                exec_ms,
                band=plan.band,
            )
        if self.cache is not None:
            with maybe_phase(prof, "cache_store"):
                evictions_before = self.cache.results.stats.evictions
                self.cache.store_result(key, generation, (value, delta))
                stats.cache_evictions += (
                    self.cache.results.stats.evictions - evictions_before
                )
        if prof is not None:
            prof.result_count = len(value)
        return iter(value)

    def _run_profiled(
        self,
        plan: QueryPlan,
        semantics: str,
        cache_state: str,
        stats: ExecutionStats,
        runner: Callable[[QueryPlan, ExecutionStats], Iterator[DeweyTuple]],
        prof: QueryProfile,
    ) -> Iterator[DeweyTuple]:
        """Materialized, timed execution for the EXPLAIN path (no cache)."""
        before = stats.counters.snapshot()
        exec_started = time.perf_counter()
        self._debug_sleep()
        with maybe_phase(prof, "execute", algorithm=plan.algorithm):
            value = self._run_with_retry(plan, stats, runner)
        exec_ms = (time.perf_counter() - exec_started) * 1000
        self._note_query(
            semantics, cache_state, plan.algorithm, stats.counters.delta(before),
            exec_ms, band=plan.band,
        )
        prof.result_count = len(value)
        return iter(value)

    def execute_many(
        self,
        queries: Sequence[Union[str, Sequence[str]]],
        algorithm: str = "auto",
        stats: Optional[ExecutionStats] = None,
    ) -> List[List[DeweyTuple]]:
        """Execute a batch of queries; results align with the input order.

        The batch path plans everything first, then executes: queries that
        normalize to the same atom set (regardless of keyword order) are
        deduplicated and computed once, and — with a cache attached — only
        the cache-misses are executed at all.  Shared ``stats`` accumulate
        over the distinct executions.

        Every returned list is a **fresh, caller-owned copy**: two input
        queries that deduplicate to the same answer get independent lists,
        and cached entries stay immutable tuples internally, so mutating
        one returned list can never corrupt another query's answer or a
        future cache hit.

        With a worker pool attached, the distinct misses fan out across
        the pool concurrently (one dispatching thread per worker) — this
        is the batch analogue of the server's parallel read path, and the
        only place a single call exploits more than one worker at once.
        """
        if algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        stats = stats if stats is not None else ExecutionStats()
        use_generation = (
            self.cache is not None or self.shared is not None or self.pool is not None
        )
        generation = self.generation() if use_generation else 0
        parsed = [parse_query(query) for query in queries]
        keys = [
            normalize_key((a.display for a in atoms), algorithm, "slca")
            for atoms in parsed
        ]
        # Phase 1 — resolve repeats and cached entries, plan the misses.
        resolved: Dict[tuple, tuple] = {}
        pending: List[tuple] = []
        pending_plans: Dict[tuple, QueryPlan] = {}
        for atoms, key in zip(parsed, keys):
            if key in resolved or key in pending_plans:
                continue
            if self.cache is not None:
                hit, entry = self.cache.lookup_result(key, generation)
                if hit:
                    ids, cached_counters = entry
                    stats.cache_hits += 1
                    if cached_counters is not None:
                        stats.counters.add(cached_counters)
                    self._note_query("slca", "hit", algorithm, None, None)
                    resolved[key] = ids
                    continue
                stats.cache_misses += 1
            if self.shared is not None:
                ids = self._shared_lookup(key, generation, "slca", algorithm, stats)
                if ids is not None:
                    resolved[key] = ids
                    continue
            pending.append(key)
            pending_plans[key] = self._plan_atoms(atoms, algorithm)

        # Phase 2 — execute each distinct miss once.  Each execution gets
        # its own ExecutionStats (OpCounters.add is not atomic) and the
        # deltas merge under this thread after the fan-out joins.
        def run_one(key: tuple):
            plan = pending_plans[key]
            pooled = (
                self._pool_execute("slca", plan, algorithm, generation, stats=stats)
                if self.pool is not None
                else None
            )
            if pooled is not None:
                # Counted worker-side and replayed; flag so the merge loop
                # below does not note it a second time.
                return key, pooled + (True,)
            local = ExecutionStats()
            exec_started = time.perf_counter()
            self._debug_sleep()
            value = self._run_with_retry(plan, local, self.execute_plan)
            exec_ms = (time.perf_counter() - exec_started) * 1000
            delta = local.counters
            if self.shared is not None:
                self.shared.store(key, generation, (value, delta.as_dict()), exec_ms)
            return key, (value, delta, exec_ms, False, False)

        if self.pool is not None and len(pending) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=min(len(pending), self.pool.size)
            ) as dispatchers:
                outcomes = list(dispatchers.map(run_one, pending))
        else:
            outcomes = [run_one(key) for key in pending]
        for key, (value, delta, exec_ms, shared_hit, was_pooled) in outcomes:
            plan = pending_plans[key]
            stats.counters.add(delta)
            if shared_hit:
                stats.shared_hits += 1
                if not was_pooled:
                    self._note_query("slca", "shared", algorithm, None, None)
            elif was_pooled:
                self._merge_totals(plan.algorithm, delta)
            else:
                self._note_query(
                    "slca",
                    "miss" if self.cache is not None else "off",
                    plan.algorithm,
                    delta,
                    exec_ms,
                    band=plan.band,
                )
            if self.cache is not None:
                evictions_before = self.cache.results.stats.evictions
                self.cache.store_result(key, generation, (value, delta))
                stats.cache_evictions += (
                    self.cache.results.stats.evictions - evictions_before
                )
            resolved[key] = value
        return [list(resolved[key]) for key in keys]

    def execute_plan(
        self,
        plan: QueryPlan,
        stats: Optional[ExecutionStats] = None,
    ) -> Iterator[DeweyTuple]:
        """Run a previously computed plan."""
        stats = stats if stats is not None else ExecutionStats()
        if plan.empty:
            return iter(())
        counters = stats.counters
        if plan.algorithm in ("il", "scan"):
            mode = "indexed" if plan.algorithm == "il" else "scan"
            sources = [self._atom_source(plan, atom, mode, counters) for atom in plan.atoms]
            return eager_slca(sources, counters)
        if plan.algorithm == "stack":
            lists = [self._atom_scan(plan, atom) for atom in plan.atoms]
            return stack_slca(lists, counters)
        raise QueryError(f"unknown algorithm {plan.algorithm!r}")

    def _atom_source(
        self, plan: QueryPlan, atom: QueryAtom, mode: str, counters: OpCounters
    ):
        """One match source per atom; tag-qualified atoms use their
        pre-filtered lists, plain atoms the index's native sources."""
        if atom.tag is None:
            return self.index.sources_for([atom.keyword], mode, counters)[0]
        from repro.core.sources import CursorListSource, SortedListSource

        lst = plan.filtered[atom]
        cls = SortedListSource if mode == "indexed" else CursorListSource
        return cls(lst, counters)

    def _atom_scan(self, plan: QueryPlan, atom: QueryAtom):
        if atom.tag is None:
            return self.index.scan(atom.keyword)
        return plan.filtered[atom]

    def execute_all_lca(
        self,
        query: Union[str, Sequence[str]],
        stats: Optional[ExecutionStats] = None,
    ) -> Iterator[DeweyTuple]:
        """All LCAs (Section 5), pipelined via Algorithm 3 over IL."""
        stats = stats if stats is not None else ExecutionStats()

        def run(plan: QueryPlan, stats: ExecutionStats) -> Iterator[DeweyTuple]:
            if plan.empty:
                return iter(())
            sources = [
                self._atom_source(plan, atom, "indexed", stats.counters)
                for atom in plan.atoms
            ]
            return find_all_lcas(sources, stats.counters)

        return self._execute_cached(parse_query(query), "il", "lca", stats, run)

    def execute_elca(
        self,
        query: Union[str, Sequence[str]],
        stats: Optional[ExecutionStats] = None,
    ) -> Iterator[DeweyTuple]:
        """Exclusive LCAs — XRANK's original semantics, via the sort-merge
        stack over sequential list scans.  SLCA ⊆ ELCA ⊆ LCA.  Yields in
        bottom-up pop order (sort for document order)."""
        stats = stats if stats is not None else ExecutionStats()

        def run(plan: QueryPlan, stats: ExecutionStats) -> Iterator[DeweyTuple]:
            if plan.empty:
                return iter(())
            lists = [self._atom_scan(plan, atom) for atom in plan.atoms]
            return stack_elca(lists, stats.counters)

        return self._execute_cached(parse_query(query), "stack", "elca", stats, run)
