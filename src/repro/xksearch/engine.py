"""Query engine: planning and execution.

The paper's engine "accepts a keyword search, uses the frequency hash table
to locate the smallest keyword list, executes the Indexed Lookup Eager,
Scan Eager [or] Stack algorithms and returns all SLCAs."  Planning decides

* the list order — smallest list first (it becomes ``S1``; all complexity
  bounds are driven by ``|S1|``), and
* the algorithm — under ``"auto"``, Indexed Lookup Eager when the largest
  and smallest list sizes differ by at least ``skew_threshold`` (the regime
  where the paper shows IL winning by orders of magnitude), Scan Eager when
  the frequencies are similar (where scanning beats ``log``-factor
  lookups).  The Stack baseline is available on request.

Any keyword absent from the document short-circuits to an empty result, as
an empty keyword list admits no answer subtree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.core import eager_slca, find_all_lcas, stack_elca, stack_slca
from repro.core.counters import OpCounters
from repro.errors import QueryError
from repro.index.inverted import DiskKeywordIndex
from repro.index.memory import MemoryKeywordIndex
from repro.xksearch.cache import QueryCache, normalize_key
from repro.xmltree.dewey import DeweyTuple
from repro.xmltree.tree import extract_keywords

AnyIndex = Union[DiskKeywordIndex, MemoryKeywordIndex]

ALGORITHMS = ("auto", "il", "scan", "stack")

#: Default largest/smallest frequency ratio above which auto planning
#: prefers Indexed Lookup Eager.
DEFAULT_SKEW_THRESHOLD = 10.0


@dataclass(frozen=True)
class QueryAtom:
    """One query term: a keyword, optionally restricted to a context tag.

    ``title:query`` matches the word ``query`` only at nodes whose context
    element (the node itself, or a text node's parent) is ``<title>``.
    """

    keyword: str
    tag: Optional[str] = None

    @property
    def display(self) -> str:
        return f"{self.tag}:{self.keyword}" if self.tag else self.keyword

    def __str__(self) -> str:
        return self.display


def parse_query(query: Union[str, Sequence[str]]) -> List[QueryAtom]:
    """Query text or token sequence → query atoms.

    Plain words become unqualified atoms; ``tag:word`` tokens become
    tag-qualified atoms.  Words are lowercased/tokenized exactly like
    document labels; duplicate atoms collapse.
    """
    raw_tokens = query.split() if isinstance(query, str) else list(query)
    atoms: List[QueryAtom] = []
    for raw in raw_tokens:
        tag: Optional[str] = None
        body = raw
        if ":" in raw:
            tag_part, body = raw.split(":", 1)
            tag_words = extract_keywords(tag_part)
            if len(tag_words) == 1:
                tag = tag_words[0]
            else:
                body = raw  # not a clean qualifier; treat whole token as words
        for word in extract_keywords(body):
            atom = QueryAtom(word, tag)
            if atom not in atoms:
                atoms.append(atom)
    if not atoms:
        raise QueryError("query contains no searchable keywords")
    return atoms


def normalize_query(query: Union[str, Sequence[str]]) -> List[str]:
    """Query → unique keyword/atom display strings (see :func:`parse_query`)."""
    return [atom.display for atom in parse_query(query)]


@dataclass
class QueryPlan:
    """The engine's decision for one query."""

    keywords: List[str]          # atom displays, rarest first
    algorithm: str               # resolved: "il", "scan" or "stack"
    frequencies: List[int]       # aligned with `keywords`
    empty: bool                  # some keyword does not occur at all
    atoms: List[QueryAtom] = field(default_factory=list)
    # Tag-filtered lists materialized at planning time, keyed by atom —
    # execution reuses them instead of rescanning.
    filtered: Dict[QueryAtom, List[DeweyTuple]] = field(default_factory=dict)

    @property
    def skew(self) -> float:
        """Largest/smallest frequency ratio (inf when a list is empty)."""
        if not self.frequencies or min(self.frequencies) == 0:
            return float("inf")
        return max(self.frequencies) / min(self.frequencies)


@dataclass
class ExecutionStats:
    """What one execution cost.

    The ``cache_*`` fields are only populated when the engine runs with a
    :class:`~repro.xksearch.cache.QueryCache`: ``cache_hits`` /
    ``cache_misses`` count this call's result-cache lookups (a plain
    ``execute`` makes exactly one; ``execute_many`` makes one per distinct
    query in the batch), ``cache_evictions`` counts entries this call's
    stores pushed out, and ``result_from_cache`` is true when the answer
    was served without touching the index at all.
    """

    counters: OpCounters = field(default_factory=OpCounters)
    page_reads: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    result_from_cache: bool = False


class QueryEngine:
    """Plans and executes keyword queries against an index.

    With a :class:`~repro.xksearch.cache.QueryCache` attached, plans and
    result tuples are memoized under a key that is insensitive to keyword
    order, and entries are stamped with the index's mutation *generation*
    so an :class:`~repro.index.updates.IndexUpdater` run invalidates them.
    Caching is opt-in: benchmarks measuring raw algorithm cost construct
    engines without one.
    """

    def __init__(
        self,
        index: AnyIndex,
        skew_threshold: float = DEFAULT_SKEW_THRESHOLD,
        cache: Optional[QueryCache] = None,
    ):
        self.index = index
        self.skew_threshold = skew_threshold
        self.cache = cache

    def generation(self) -> int:
        """The index's current mutation generation (0 for static indexes)."""
        generation = getattr(self.index, "generation", None)
        return generation() if callable(generation) else 0

    def plan(
        self,
        query: Union[str, Sequence[str]],
        algorithm: str = "auto",
    ) -> QueryPlan:
        """Resolve keyword order and algorithm without executing.

        With a cache attached the plan may come from the plan cache; a
        cached plan's keyword order can differ from a freshly computed one
        only between atoms of equal frequency (the cache key is
        order-insensitive), which never changes the result set.
        """
        if algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        return self._plan_atoms(parse_query(query), algorithm)

    def _plan_atoms(self, atoms: List[QueryAtom], algorithm: str) -> QueryPlan:
        if self.cache is not None:
            key = normalize_key(
                (a.display for a in atoms), algorithm, semantics="plan"
            )
            generation = self.generation()
            hit, plan = self.cache.lookup_plan(key, generation)
            if hit:
                return plan
            plan = self._build_plan(atoms, algorithm)
            self.cache.store_plan(key, generation, plan)
            return plan
        return self._build_plan(atoms, algorithm)

    def _build_plan(self, atoms: List[QueryAtom], algorithm: str) -> QueryPlan:
        filtered: Dict[QueryAtom, List[DeweyTuple]] = {}
        frequencies_by_atom: Dict[QueryAtom, int] = {}
        for atom in atoms:
            if atom.tag is None:
                frequencies_by_atom[atom] = self.index.frequency(atom.keyword)
            else:
                # Tag filters need the actual postings; materialize once and
                # carry the list into execution.
                lst = self.index.keyword_list(atom.keyword, atom.tag)
                filtered[atom] = lst
                frequencies_by_atom[atom] = len(lst)
        ordered = sorted(atoms, key=lambda a: frequencies_by_atom[a])
        frequencies = [frequencies_by_atom[a] for a in ordered]
        empty = any(f == 0 for f in frequencies)
        if algorithm == "auto":
            skew = (
                max(frequencies) / min(frequencies)
                if frequencies and min(frequencies) > 0
                else float("inf")
            )
            algorithm = "il" if skew >= self.skew_threshold else "scan"
        return QueryPlan(
            [a.display for a in ordered],
            algorithm,
            frequencies,
            empty,
            atoms=ordered,
            filtered=filtered,
        )

    def execute(
        self,
        query: Union[str, Sequence[str]],
        algorithm: str = "auto",
        stats: Optional[ExecutionStats] = None,
    ) -> Iterator[DeweyTuple]:
        """SLCAs of the query, streamed in document order.

        With a cache attached, repeats of a query (in any keyword order)
        are answered from memory; the result is then an iterator over the
        memoized tuple rather than a pipelined computation.
        """
        if algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        stats = stats if stats is not None else ExecutionStats()
        return self._execute_cached(
            parse_query(query), algorithm, "slca", stats, self.execute_plan
        )

    def _execute_cached(
        self,
        atoms: List[QueryAtom],
        algorithm: str,
        semantics: str,
        stats: ExecutionStats,
        runner: Callable[[QueryPlan, ExecutionStats], Iterator[DeweyTuple]],
    ) -> Iterator[DeweyTuple]:
        """Run (or recall) one query under one result semantics."""
        if self.cache is None:
            return runner(self._plan_atoms(atoms, algorithm), stats)
        key = normalize_key((a.display for a in atoms), algorithm, semantics)
        generation = self.generation()
        hit, value = self.cache.lookup_result(key, generation)
        if hit:
            stats.cache_hits += 1
            stats.result_from_cache = True
            return iter(value)
        stats.cache_misses += 1
        value = tuple(runner(self._plan_atoms(atoms, algorithm), stats))
        evictions_before = self.cache.results.stats.evictions
        self.cache.store_result(key, generation, value)
        stats.cache_evictions += self.cache.results.stats.evictions - evictions_before
        return iter(value)

    def execute_many(
        self,
        queries: Sequence[Union[str, Sequence[str]]],
        algorithm: str = "auto",
        stats: Optional[ExecutionStats] = None,
    ) -> List[List[DeweyTuple]]:
        """Execute a batch of queries; results align with the input order.

        The batch path plans everything first, then executes: queries that
        normalize to the same atom set (regardless of keyword order) are
        deduplicated and computed once, and — with a cache attached — only
        the cache-misses are executed at all.  Shared ``stats`` accumulate
        over the distinct executions.
        """
        if algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        stats = stats if stats is not None else ExecutionStats()
        generation = self.generation() if self.cache is not None else 0
        parsed = [parse_query(query) for query in queries]
        keys = [
            normalize_key((a.display for a in atoms), algorithm, "slca")
            for atoms in parsed
        ]
        # Phase 1 — resolve repeats and cached entries, plan the misses.
        resolved: Dict[tuple, tuple] = {}
        pending: List[tuple] = []
        pending_plans: Dict[tuple, QueryPlan] = {}
        for atoms, key in zip(parsed, keys):
            if key in resolved or key in pending_plans:
                continue
            if self.cache is not None:
                hit, value = self.cache.lookup_result(key, generation)
                if hit:
                    stats.cache_hits += 1
                    resolved[key] = value
                    continue
                stats.cache_misses += 1
            pending.append(key)
            pending_plans[key] = self._plan_atoms(atoms, algorithm)
        # Phase 2 — execute each distinct miss once.
        for key in pending:
            value = tuple(self.execute_plan(pending_plans[key], stats))
            if self.cache is not None:
                evictions_before = self.cache.results.stats.evictions
                self.cache.store_result(key, generation, value)
                stats.cache_evictions += (
                    self.cache.results.stats.evictions - evictions_before
                )
            resolved[key] = value
        return [list(resolved[key]) for key in keys]

    def execute_plan(
        self,
        plan: QueryPlan,
        stats: Optional[ExecutionStats] = None,
    ) -> Iterator[DeweyTuple]:
        """Run a previously computed plan."""
        stats = stats if stats is not None else ExecutionStats()
        if plan.empty:
            return iter(())
        counters = stats.counters
        if plan.algorithm in ("il", "scan"):
            mode = "indexed" if plan.algorithm == "il" else "scan"
            sources = [self._atom_source(plan, atom, mode, counters) for atom in plan.atoms]
            return eager_slca(sources, counters)
        if plan.algorithm == "stack":
            lists = [self._atom_scan(plan, atom) for atom in plan.atoms]
            return stack_slca(lists, counters)
        raise QueryError(f"unknown algorithm {plan.algorithm!r}")

    def _atom_source(
        self, plan: QueryPlan, atom: QueryAtom, mode: str, counters: OpCounters
    ):
        """One match source per atom; tag-qualified atoms use their
        pre-filtered lists, plain atoms the index's native sources."""
        if atom.tag is None:
            return self.index.sources_for([atom.keyword], mode, counters)[0]
        from repro.core.sources import CursorListSource, SortedListSource

        lst = plan.filtered[atom]
        cls = SortedListSource if mode == "indexed" else CursorListSource
        return cls(lst, counters)

    def _atom_scan(self, plan: QueryPlan, atom: QueryAtom):
        if atom.tag is None:
            return self.index.scan(atom.keyword)
        return plan.filtered[atom]

    def execute_all_lca(
        self,
        query: Union[str, Sequence[str]],
        stats: Optional[ExecutionStats] = None,
    ) -> Iterator[DeweyTuple]:
        """All LCAs (Section 5), pipelined via Algorithm 3 over IL."""
        stats = stats if stats is not None else ExecutionStats()

        def run(plan: QueryPlan, stats: ExecutionStats) -> Iterator[DeweyTuple]:
            if plan.empty:
                return iter(())
            sources = [
                self._atom_source(plan, atom, "indexed", stats.counters)
                for atom in plan.atoms
            ]
            return find_all_lcas(sources, stats.counters)

        return self._execute_cached(parse_query(query), "il", "lca", stats, run)

    def execute_elca(
        self,
        query: Union[str, Sequence[str]],
        stats: Optional[ExecutionStats] = None,
    ) -> Iterator[DeweyTuple]:
        """Exclusive LCAs — XRANK's original semantics, via the sort-merge
        stack over sequential list scans.  SLCA ⊆ ELCA ⊆ LCA.  Yields in
        bottom-up pop order (sort for document order)."""
        stats = stats if stats is not None else ExecutionStats()

        def run(plan: QueryPlan, stats: ExecutionStats) -> Iterator[DeweyTuple]:
            if plan.empty:
                return iter(())
            lists = [self._atom_scan(plan, atom) for atom in plan.atoms]
            return stack_elca(lists, stats.counters)

        return self._execute_cached(parse_query(query), "stack", "elca", stats, run)
