"""Keyword search over a *collection* of XML documents.

The paper (and its demo) search one document; real deployments hold many.
This extension models a collection as a forest grafted under a synthetic
``collection`` root: document ``i`` becomes child ``i`` of the root, every
Dewey number gains the document ordinal as its second component, and the
single-document machinery — index, algorithms, engine — runs unchanged.

Semantics: an SLCA that lands *on the collection root* would mean "the
keywords only co-occur across different documents"; such an answer is
meaningless to a user and is filtered out, so results always identify one
document plus the answer node inside it (with Dewey numbers translated
back to the document's own numbering).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import QueryError
from repro.xksearch.engine import ExecutionStats, QueryPlan
from repro.xksearch.results import SearchResult
from repro.xksearch.system import XKSearch
from repro.xmltree.dewey import DeweyTuple
from repro.xmltree.parser import parse_file
from repro.xmltree.tree import Node, XMLTree, copy_subtree, renumber_subtree

COLLECTION_TAG = "collection"


@dataclass
class CollectionResult:
    """One answer: the owning document plus the in-document result."""

    document: str
    result: SearchResult

    @property
    def dewey(self) -> DeweyTuple:
        """The answer's Dewey number *within its document*."""
        return self.result.dewey

    def __str__(self) -> str:
        return f"{self.document}: {self.result}"


class XMLCollection:
    """A searchable set of XML documents."""

    def __init__(self, documents: Mapping[str, XMLTree], copy_documents: bool = True):
        """Build the collection forest.

        Grafting re-roots every document at ``(0, i)``, which rewrites all
        Dewey numbers; by default each document is deep-copied first so the
        caller's trees stay valid.  Pass ``copy_documents=False`` to donate
        the trees (halves memory for large corpora — the originals must not
        be used afterwards).
        """
        if not documents:
            raise QueryError("a collection needs at least one document")
        self._names: List[str] = list(documents)
        root = Node(COLLECTION_TAG)
        root.dewey = (0,)
        for name, tree in documents.items():
            doc_root = copy_subtree(tree.root) if copy_documents else tree.root
            root.children.append(doc_root)
            doc_root.parent = root
            renumber_subtree(doc_root, (0, len(root.children) - 1))
        self.tree = XMLTree(root)
        self._system = XKSearch.from_tree(self.tree)

    @classmethod
    def from_files(
        cls, paths: Sequence[Union[str, os.PathLike]]
    ) -> "XMLCollection":
        """Parse each file; documents are named by their base filename."""
        documents: Dict[str, XMLTree] = {}
        for path in paths:
            name = os.path.basename(os.fspath(path))
            if name in documents:
                name = os.fspath(path)
            documents[name] = parse_file(path)
        return cls(documents)

    def __len__(self) -> int:
        return len(self._names)

    @property
    def documents(self) -> List[str]:
        return list(self._names)

    # -- dewey translation ------------------------------------------------------

    def _to_local(self, dewey: DeweyTuple) -> Optional[Tuple[str, DeweyTuple]]:
        """Global (collection) Dewey → (document name, document Dewey).

        Returns ``None`` for the collection root itself — a cross-document
        pseudo-answer.
        """
        if len(dewey) < 2:
            return None
        return self._names[dewey[1]], (0,) + dewey[2:]

    # -- queries ------------------------------------------------------------------

    def search(
        self,
        query: Union[str, Sequence[str]],
        algorithm: str = "auto",
        limit: Optional[int] = None,
    ) -> List[CollectionResult]:
        """SLCAs across the collection, each attributed to its document."""
        out: List[CollectionResult] = []
        for dewey in self.search_ids(query, algorithm=algorithm):
            located = self._to_local(dewey)
            if located is None:
                continue
            name, _ = located
            decorated = self._system._decorate(dewey, query)
            out.append(self._relocate(name, decorated))
            if limit is not None and len(out) >= limit:
                break
        return out

    def search_ids(
        self,
        query: Union[str, Sequence[str]],
        algorithm: str = "auto",
        stats: Optional[ExecutionStats] = None,
    ) -> Iterator[DeweyTuple]:
        """Raw global Dewey stream (cross-document root included)."""
        return self._system.search_ids(query, algorithm=algorithm, stats=stats)

    def _relocate(self, name: str, decorated: SearchResult) -> CollectionResult:
        """Rewrite a decorated result's Dewey numbers into document space."""
        located = self._to_local(decorated.dewey)
        assert located is not None
        _, local = located
        witnesses = {
            kw: [(0,) + w[2:] for w in nodes]
            for kw, nodes in decorated.witnesses.items()
        }
        path = decorated.path
        if path and path.startswith(COLLECTION_TAG + "/"):
            path = path[len(COLLECTION_TAG) + 1:]
        relocated = SearchResult(
            local, path=path, snippet=decorated.snippet, witnesses=witnesses
        )
        return CollectionResult(document=name, result=relocated)

    def explain(
        self, query: Union[str, Sequence[str]], algorithm: str = "auto"
    ) -> QueryPlan:
        return self._system.explain(query, algorithm=algorithm)

    def documents_matching(self, query: Union[str, Sequence[str]]) -> List[str]:
        """Names of the documents containing at least one answer."""
        seen: List[str] = []
        for result in self.search(query):
            if result.document not in seen:
                seen.append(result.document)
        return seen
