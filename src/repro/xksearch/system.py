"""The XKSearch facade — the system of Section 4, end to end.

Typical library use::

    from repro.xksearch import XKSearch

    system = XKSearch.build("school.xml", "school.index")   # build once
    system = XKSearch.open("school.index")                  # reopen later
    for result in system.search("John Ben"):
        print(result.id, result.path)
        print(result.snippet)

``search`` accepts free query text (tokenized exactly like document
labels), plans with the frequency table, runs one of the three algorithms
and returns decorated results.  ``search_in_tree`` is the no-disk variant
working over a parsed tree held in memory.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional, Sequence, Union

from repro.index.builder import build_index
from repro.index.inverted import DiskKeywordIndex
from repro.index.memory import MemoryKeywordIndex
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.xksearch.cache import QueryCache
from repro.xksearch.engine import ExecutionStats, QueryEngine, QueryPlan
from repro.xksearch.results import SearchResult, decorate_result
from repro.xmltree.dewey import DeweyTuple
from repro.xmltree.parser import parse_file
from repro.xmltree.tree import XMLTree


class XKSearch:
    """Keyword search for smallest LCAs over one XML document."""

    def __init__(
        self,
        index: Union[DiskKeywordIndex, MemoryKeywordIndex],
        tree: Optional[XMLTree] = None,
        skew_threshold: float = 10.0,
        cache: Optional[QueryCache] = None,
        shared_cache=None,
    ):
        self.index = index
        self.tree = tree
        self.engine = QueryEngine(
            index,
            skew_threshold=skew_threshold,
            cache=cache,
            shared_cache=shared_cache,
        )
        self._keyword_postings = (
            tree.keyword_postings() if tree is not None else None
        )

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        document: Union[str, os.PathLike, XMLTree],
        index_dir: Union[str, os.PathLike],
        page_size: int = DEFAULT_PAGE_SIZE,
        codec: str = "packed",
        keep_document: bool = True,
    ) -> "XKSearch":
        """Parse (if needed) and index a document, then open the system."""
        tree = document if isinstance(document, XMLTree) else parse_file(document)
        build_index(
            tree,
            index_dir,
            page_size=page_size,
            codec=codec,
            keep_document=keep_document,
        )
        return cls(DiskKeywordIndex(index_dir), tree=tree)

    @classmethod
    def open(
        cls,
        index_dir: Union[str, os.PathLike],
        load_document: bool = True,
        pool_capacity: int = 4096,
        cache: Optional[QueryCache] = None,
        mmap_mode: bool = False,
        shared_cache=None,
        use_segments: bool = True,
        verify_checksums: bool = False,
    ) -> "XKSearch":
        """Open an existing index directory.

        With ``load_document`` (and a stored document) results carry paths
        and snippets; otherwise they are bare Dewey numbers.  Pass a
        :class:`QueryCache` to memoize repeated queries (the serving path
        does; see docs/PERFORMANCE.md).  ``mmap_mode`` opens the index
        read-only over a shared memory map (what pool workers use);
        ``shared_cache`` attaches a cross-process
        :class:`~repro.xksearch.shared_cache.SharedResultCache`;
        ``use_segments=False`` forces every read onto the B+tree tier
        (byte-identical answers, used by A/B checks and benchmarks);
        ``verify_checksums`` re-checksums every page and posting block
        read (see docs/ROBUSTNESS.md).
        """
        index = DiskKeywordIndex(
            index_dir,
            pool_capacity=pool_capacity,
            mmap_mode=mmap_mode,
            use_segments=use_segments,
            verify_checksums=verify_checksums,
        )
        tree = None
        if load_document:
            path = index.document_path()
            if path is not None:
                tree = parse_file(path)
        return cls(index, tree=tree, cache=cache, shared_cache=shared_cache)

    @classmethod
    def from_tree(cls, tree: XMLTree) -> "XKSearch":
        """Disk-free system over a parsed tree (in-memory index)."""
        return cls(MemoryKeywordIndex.from_tree(tree), tree=tree)

    # -- queries ----------------------------------------------------------------

    def search(
        self,
        query: Union[str, Sequence[str]],
        algorithm: str = "auto",
        limit: Optional[int] = None,
    ) -> List[SearchResult]:
        """SLCAs of the query as decorated results (document order)."""
        results: List[SearchResult] = []
        for dewey in self.search_ids(query, algorithm=algorithm):
            results.append(self._decorate(dewey, query))
            if limit is not None and len(results) >= limit:
                break
        return results

    def search_ids(
        self,
        query: Union[str, Sequence[str]],
        algorithm: str = "auto",
        stats: Optional[ExecutionStats] = None,
        profile: bool = False,
    ) -> Iterator[DeweyTuple]:
        """SLCAs as raw Dewey tuples, streamed (the pipelined answer).

        With ``profile=True`` (EXPLAIN mode) the run is materialized and a
        per-phase breakdown lands on ``stats.profile``; the answer itself
        is byte-identical.
        """
        return self.engine.execute(
            query, algorithm=algorithm, stats=stats, profile=profile
        )

    def storage_stats(self) -> Optional[dict]:
        """Buffer-pool/pager/B+tree stats (None for in-memory indexes)."""
        stats = getattr(self.index, "stats", None)
        return stats() if callable(stats) else None

    def search_all_lcas(
        self,
        query: Union[str, Sequence[str]],
        stats: Optional[ExecutionStats] = None,
    ) -> List[SearchResult]:
        """Every LCA (Section 5), sorted in document order."""
        ids = sorted(self.engine.execute_all_lca(query, stats=stats))
        return [self._decorate(dewey, query) for dewey in ids]

    def search_ranked(
        self,
        query: Union[str, Sequence[str]],
        algorithm: str = "auto",
        limit: Optional[int] = None,
    ) -> List["RankedResult"]:
        """SLCAs ordered best-first by the specificity ranking.

        Requires the document to be loaded (witness features need it);
        falls back to depth-only ranking otherwise.
        """
        from repro.xksearch.ranking import rank_results

        results = self.search(query, algorithm=algorithm)
        ranked = rank_results(results)
        return ranked[:limit] if limit is not None else ranked

    def search_elcas(
        self,
        query: Union[str, Sequence[str]],
        stats: Optional[ExecutionStats] = None,
    ) -> List[SearchResult]:
        """Exclusive LCAs (XRANK semantics), sorted in document order.

        SLCA ⊆ ELCA ⊆ LCA: an ELCA additionally keeps ancestors that have
        their own keyword occurrences not swallowed by a satisfied
        descendant.
        """
        ids = sorted(self.engine.execute_elca(query, stats=stats))
        return [self._decorate(dewey, query) for dewey in ids]

    def explain(self, query: Union[str, Sequence[str]], algorithm: str = "auto") -> QueryPlan:
        """The engine's plan for a query, without executing it."""
        return self.engine.plan(query, algorithm=algorithm)

    def _decorate(self, dewey: DeweyTuple, query: Union[str, Sequence[str]]) -> SearchResult:
        from repro.xksearch.engine import parse_query

        atoms = parse_query(query)
        witness_lists = None
        if self._keyword_postings is not None:
            witness_lists = {}
            for atom in atoms:
                postings = self._keyword_postings.get(atom.keyword, [])
                witness_lists[atom.display] = [
                    d for d, tag in postings if atom.tag is None or tag == atom.tag
                ]
        return decorate_result(
            dewey,
            self.tree,
            keywords=[atom.display for atom in atoms],
            keyword_lists=witness_lists,
        )

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        if isinstance(self.index, DiskKeywordIndex):
            self.index.close()

    def __enter__(self) -> "XKSearch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
