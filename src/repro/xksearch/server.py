"""A small demo web server — the paper's servlet, in stdlib Python.

The original XKSearch demo ran as a Java Servlet under Tomcat; this is the
equivalent zero-dependency demo: ``xksearch serve <index_dir>`` starts an
HTTP server whose ``/search?q=…`` endpoint runs the engine and renders the
results page from :mod:`repro.xksearch.html`.

Endpoints:

* ``GET /`` — search form;
* ``GET /search?q=<keywords>[&algorithm=auto|il|scan|stack]`` — results;
* ``GET /healthz`` — liveness (plain text).

The server is single-purpose demo infrastructure: synchronous,
single-threaded handler (the underlying index is not thread-safe by
design), bound to localhost by default.
"""

from __future__ import annotations

import time
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError
from repro.xksearch.html import render_page
from repro.xksearch.system import XKSearch


class _Handler(BaseHTTPRequestHandler):
    system: XKSearch = None  # injected by make_server
    quiet: bool = True

    def log_message(self, fmt, *args):  # noqa: N802 (stdlib naming)
        if not self.quiet:
            super().log_message(fmt, *args)

    def do_GET(self):  # noqa: N802 (stdlib naming)
        url = urlparse(self.path)
        if url.path == "/healthz":
            self._send(200, "ok", content_type="text/plain; charset=utf-8")
            return
        if url.path == "/":
            self._send(200, render_page("", []))
            return
        if url.path == "/search":
            self._handle_search(url)
            return
        self._send(404, render_page("", []), status_only_body="not found")

    def _handle_search(self, url):
        params = parse_qs(url.query)
        query = (params.get("q") or [""])[0].strip()
        algorithm = (params.get("algorithm") or ["auto"])[0]
        if not query:
            self._send(200, render_page("", []))
            return
        try:
            plan = self.system.explain(query, algorithm=algorithm)
            started = time.perf_counter()
            results = self.system.search(query, algorithm=algorithm, limit=50)
            elapsed_ms = (time.perf_counter() - started) * 1000
        except ReproError as exc:
            self._send(400, render_page(query, [], title=f"error: {exc}"))
            return
        self._send(200, render_page(query, results, plan=plan, elapsed_ms=elapsed_ms))

    def _send(self, status: int, body: str, content_type: str = "text/html; charset=utf-8", status_only_body: Optional[str] = None):
        payload = (status_only_body or body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


def make_server(
    system: XKSearch,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> HTTPServer:
    """An HTTP server bound to *host:port* (port 0 = ephemeral), serving
    queries against *system*.  Caller owns the lifecycle
    (``serve_forever`` / ``shutdown`` / ``server_close``)."""
    handler = type("XKSearchHandler", (_Handler,), {"system": system, "quiet": quiet})
    return HTTPServer((host, port), handler)


def serve(index_dir: str, host: str = "127.0.0.1", port: int = 8080) -> None:
    """Blocking entry point used by ``xksearch serve``."""
    with XKSearch.open(index_dir) as system:
        server = make_server(system, host=host, port=port, quiet=False)
        actual_port = server.server_address[1]
        print(f"XKSearch demo at http://{host}:{actual_port}/  (Ctrl-C to stop)")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
