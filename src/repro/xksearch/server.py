"""The demo web server, grown into a small serving layer.

The original XKSearch demo ran as a Java Servlet under Tomcat; this is the
equivalent zero-dependency server: ``xksearch serve <index_dir>`` starts a
**threaded** HTTP server whose ``/search?q=…`` endpoint runs the engine and
renders the results page from :mod:`repro.xksearch.html`.

Serving-layer features (beyond the paper's demo):

* **concurrency** — requests are handled on worker threads
  (``ThreadingHTTPServer``); the number of concurrently *executing*
  requests is capped by a semaphore (``max_workers``).  The underlying
  index read path is thread-safe (the buffer pool serializes page
  access), so queries genuinely overlap;
* **caching** — the system is normally opened with a
  :class:`~repro.xksearch.cache.QueryCache`, so repeated queries are
  answered from memory (``xksearch serve --cache-size``);
* **observability** — every request is timed; ``/statz`` returns request
  counts, latency percentiles, cache stats and the index generation as
  JSON, and search responses carry an ``X-Response-Time-Ms`` header;
* **a JSON API** — ``GET /api/search?q=…`` returns bare Dewey ids plus
  plan/timing metadata, the endpoint load generators and programmatic
  clients (``benchmarks/bench_qps.py``) use.

Endpoints:

* ``GET /`` — search form;
* ``GET /search?q=<keywords>[&algorithm=auto|il|scan|stack]`` — HTML results;
* ``GET /api/search?q=<keywords>[&algorithm=…][&limit=N]`` — JSON results;
* ``GET /statz`` — serving metrics (JSON);
* ``GET /healthz`` — liveness (plain text).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError
from repro.xksearch.cache import QueryCache
from repro.xksearch.engine import ExecutionStats
from repro.xksearch.html import render_page
from repro.xksearch.system import XKSearch

#: Default cap on concurrently executing requests.
DEFAULT_MAX_WORKERS = 8

#: Per-request latencies kept for the /statz percentiles (ring buffer).
_LATENCY_WINDOW = 4096


class ServerMetrics:
    """Thread-safe request counters and latency percentiles."""

    def __init__(self, window: int = _LATENCY_WINDOW):
        self._lock = threading.Lock()
        self._window = window
        self._latencies_ms: List[float] = []
        self.requests = 0
        self.errors = 0

    def record(self, elapsed_ms: float, error: bool = False) -> None:
        with self._lock:
            self.requests += 1
            if error:
                self.errors += 1
            self._latencies_ms.append(elapsed_ms)
            if len(self._latencies_ms) > self._window:
                del self._latencies_ms[: -self._window]

    @staticmethod
    def _percentile(sorted_values: List[float], q: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
        return sorted_values[index]

    def summary(self) -> dict:
        with self._lock:
            latencies = sorted(self._latencies_ms)
            requests, errors = self.requests, self.errors
        return {
            "requests": requests,
            "errors": errors,
            "window": len(latencies),
            "latency_ms": {
                "p50": round(self._percentile(latencies, 0.50), 3),
                "p90": round(self._percentile(latencies, 0.90), 3),
                "p99": round(self._percentile(latencies, 0.99), 3),
                "mean": round(sum(latencies) / len(latencies), 3) if latencies else 0.0,
            },
        }


class _Handler(BaseHTTPRequestHandler):
    # Injected by make_server onto a per-server subclass:
    system: XKSearch = None
    metrics: ServerMetrics = None
    quiet: bool = True
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: N802 (stdlib naming)
        if not self.quiet:
            super().log_message(fmt, *args)

    def do_GET(self):  # noqa: N802 (stdlib naming)
        started = time.perf_counter()
        url = urlparse(self.path)
        error = False
        try:
            if url.path == "/healthz":
                self._send(200, "ok", content_type="text/plain; charset=utf-8")
            elif url.path == "/statz":
                self._send_json(200, self._statz())
            elif url.path == "/":
                self._send(200, render_page("", []))
            elif url.path == "/search":
                error = self._handle_search(url)
            elif url.path == "/api/search":
                error = self._handle_api_search(url)
            else:
                error = True
                self._send(404, render_page("", []), status_only_body="not found")
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1000
            if self.metrics is not None:
                self.metrics.record(elapsed_ms, error=error)

    # -- endpoints -----------------------------------------------------------

    def _handle_search(self, url) -> bool:
        """HTML results page; returns True when the request errored."""
        params = parse_qs(url.query)
        query = (params.get("q") or [""])[0].strip()
        algorithm = (params.get("algorithm") or ["auto"])[0]
        if not query:
            self._send(200, render_page("", []))
            return False
        try:
            plan = self.system.explain(query, algorithm=algorithm)
            started = time.perf_counter()
            results = self.system.search(query, algorithm=algorithm, limit=50)
            elapsed_ms = (time.perf_counter() - started) * 1000
        except ReproError as exc:
            self._send(400, render_page(query, [], title=f"error: {exc}"))
            return True
        self._send(
            200,
            render_page(query, results, plan=plan, elapsed_ms=elapsed_ms),
            elapsed_ms=elapsed_ms,
        )
        return False

    def _handle_api_search(self, url) -> bool:
        """JSON results; returns True when the request errored."""
        params = parse_qs(url.query)
        query = (params.get("q") or [""])[0].strip()
        algorithm = (params.get("algorithm") or ["auto"])[0]
        limit_raw = (params.get("limit") or [""])[0]
        if not query:
            self._send_json(400, {"error": "missing query parameter q"})
            return True
        try:
            limit = int(limit_raw) if limit_raw else None
        except ValueError:
            self._send_json(400, {"error": f"bad limit {limit_raw!r}"})
            return True
        stats = ExecutionStats()
        try:
            started = time.perf_counter()
            ids = list(self.system.search_ids(query, algorithm=algorithm, stats=stats))
            elapsed_ms = (time.perf_counter() - started) * 1000
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
            return True
        if limit is not None:
            ids = ids[:limit]
        payload = {
            "query": query,
            "algorithm": algorithm,
            "count": len(ids),
            "ids": [".".join(str(c) for c in dewey) for dewey in ids],
            "elapsed_ms": round(elapsed_ms, 3),
            "cached": stats.result_from_cache,
        }
        self._send_json(200, payload, elapsed_ms=elapsed_ms)
        return False

    def _statz(self) -> dict:
        engine = self.system.engine
        payload = {
            "server": self.metrics.summary() if self.metrics else {},
            "generation": engine.generation(),
            "cache": engine.cache.stats() if engine.cache is not None else None,
        }
        return payload

    # -- plumbing ------------------------------------------------------------

    def _send(
        self,
        status: int,
        body: str,
        content_type: str = "text/html; charset=utf-8",
        status_only_body: Optional[str] = None,
        elapsed_ms: Optional[float] = None,
    ):
        payload = (status_only_body or body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        if elapsed_ms is not None:
            self.send_header("X-Response-Time-Ms", f"{elapsed_ms:.3f}")
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, payload: dict, elapsed_ms: Optional[float] = None):
        self._send(
            status,
            json.dumps(payload),
            content_type="application/json; charset=utf-8",
            elapsed_ms=elapsed_ms,
        )


class XKSearchServer(ThreadingHTTPServer):
    """Threaded HTTP server with a cap on concurrently executing requests.

    ``ThreadingHTTPServer`` spawns one thread per connection; the semaphore
    bounds how many of them execute queries at once, so a traffic burst
    degrades into queueing rather than into unbounded thread contention.
    """

    daemon_threads = True

    def __init__(self, address, handler, max_workers: int = DEFAULT_MAX_WORKERS):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        super().__init__(address, handler)
        self.max_workers = max_workers
        self._slots = threading.BoundedSemaphore(max_workers)

    def process_request_thread(self, request, client_address):
        with self._slots:
            super().process_request_thread(request, client_address)


def make_server(
    system: XKSearch,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    max_workers: int = DEFAULT_MAX_WORKERS,
    metrics: Optional[ServerMetrics] = None,
) -> XKSearchServer:
    """A threaded HTTP server bound to *host:port* (port 0 = ephemeral),
    serving queries against *system*.  Caller owns the lifecycle
    (``serve_forever`` / ``shutdown`` / ``server_close``)."""
    handler = type(
        "XKSearchHandler",
        (_Handler,),
        {
            "system": system,
            "quiet": quiet,
            "metrics": metrics if metrics is not None else ServerMetrics(),
        },
    )
    return XKSearchServer((host, port), handler, max_workers=max_workers)


def serve(
    index_dir: str,
    host: str = "127.0.0.1",
    port: int = 8080,
    max_workers: int = DEFAULT_MAX_WORKERS,
    cache_size: int = 1024,
) -> None:
    """Blocking entry point used by ``xksearch serve``."""
    cache = QueryCache(result_capacity=cache_size) if cache_size > 0 else None
    with XKSearch.open(index_dir, cache=cache) as system:
        server = make_server(system, host=host, port=port, quiet=False, max_workers=max_workers)
        actual_port = server.server_address[1]
        print(
            f"XKSearch demo at http://{host}:{actual_port}/  "
            f"({max_workers} workers, cache={'off' if cache is None else cache_size}; "
            f"Ctrl-C to stop)"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
